//! The Section-2 attack: inferring a sensitive rule from two
//! differentially-private count answers.
//!
//! Reconstructs the paper's Example 1 end to end on the synthetic ADULT
//! table: issue `Q1` (the victim's public profile) and `Q2` (profile plus
//! the sensitive value) through the Laplace mechanism, divide the noisy
//! answers, and watch the confidence of the rule emerge once the noise
//! scale is small relative to the answers. Then the contrast the paper
//! draws: publish the same table under `(λ, δ)`-reconstruction privacy
//! through the `Publisher` builder and answer the same rule from a
//! `QueryEngine` — the aggregate estimate survives while the victim's
//! personal group is too small to reconstruct reliably.
//!
//! Run with: `cargo run --release -p rp-experiments --example dp_ratio_attack`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_dp::attack::RatioAttack;
use rp_dp::mechanism::{LaplaceMechanism, Sensitivity};
use rp_engine::{Publisher, QueryEngine};
use rp_experiments::table1::example1_query;

fn main() {
    let table = rp_datagen::adult::generate_default();
    println!("synthetic ADULT: {} records", table.rows());

    let attack = RatioAttack::new(example1_query(&table));
    let (x, y) = attack.true_answers(&table);
    println!(
        "rule {{Prof-school, Prof-specialty, White, Male}} -> >50K: \
         ans1 = {x}, ans2 = {y}, Conf = {:.4}\n",
        y as f64 / x as f64
    );

    let mut rng = StdRng::seed_from_u64(2015);
    println!(
        "{:<8}{:<8}{:<12}{:<12}{:<14}{:<14}",
        "eps", "b", "Conf'", "SE", "rel-err Q1", "2(b/x)^2"
    );
    for eps in [0.01, 0.05, 0.1, 0.5, 1.0] {
        let mech = LaplaceMechanism::new(eps, Sensitivity::count_query_batch(2));
        let outcome = attack.run(&table, &mech, 10, &mut rng);
        let indicator = attack.disclosure_indicator(&table, mech.scale());
        println!(
            "{:<8}{:<8}{:<12.4}{:<12.4}{:<14.4}{:<14.6}",
            eps,
            mech.scale(),
            outcome.confidence.mean,
            outcome.confidence.se,
            outcome.base_relative_error.mean,
            indicator
        );
        // Lemma 1's prediction for comparison.
        let predicted = attack.predicted_moments(&table, &mech);
        println!(
            "{:<16}predicted E[Y/X] = {:.4}, Var[Y/X] = {:.6}",
            "", predicted.mean, predicted.variance
        );
    }
    println!(
        "\nThe attack needs no record correlation: once 2(b/x)^2 is small \
         (b/x <= 1/20), any single pair of noisy answers pins down the \
         victim's income bracket."
    );

    // The paper's alternative: publish the data once under
    // (0.3, 0.3)-reconstruction privacy and answer the same rule from the
    // release. Aggregates come back with calibrated uncertainty; the
    // victim's personal group stays below its reconstruction threshold.
    let query = example1_query(&table);
    let publication = Publisher::new(table)
        .sa(rp_datagen::adult::attr::INCOME)
        .privacy(0.3, 0.3)
        .retention(0.5)
        .seed(2015)
        .publish()
        .expect("ADULT shape supports the criterion");
    let engine = QueryEngine::new(&publication);
    let answer = engine.answer(&query).expect("rule query fits the release");
    println!(
        "\nreconstruction-private release instead: est = {:.1} of support {} \
         (truth {y} of {x}), reconstructed Conf = {:.4}",
        answer.estimate, answer.support, answer.frequency
    );
    if let Some(ci) = answer.ci {
        println!(
            "95% CI for the rule confidence: [{:.4}, {:.4}] — honest \
             aggregate learning, no per-victim disclosure channel",
            ci.lo, ci.hi
        );
    }
}
