//! Quickstart: publish a table under reconstruction privacy.
//!
//! Walks the full pipeline on a small synthetic hospital table:
//! test the plain-perturbation design against `(λ, δ)`-reconstruction
//! privacy, enforce the criterion with SPS, and reconstruct an aggregate
//! statistic from the published data.
//!
//! Run with: `cargo run --release -p rp-experiments --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::estimate::GroupedView;
use rp_core::groups::{PersonalGroups, SaSpec};
use rp_core::privacy::{check_groups, PrivacyParams};
use rp_core::sps::{sps, SpsConfig};
use rp_table::{Attribute, CountQuery, Schema, TableBuilder};

fn main() {
    // A table with Gender/Job public and Disease sensitive — the shape of
    // the paper's Example 2.
    let schema = Schema::new(vec![
        Attribute::new("Gender", ["male", "female"]),
        Attribute::new("Job", ["engineer", "doctor", "lawyer"]),
        Attribute::new(
            "Disease",
            ["none", "flu", "diabetes", "asthma", "hiv", "cancer"],
        ),
    ]);
    let mut builder = TableBuilder::new(schema);
    // 6,000 records with a disease mix that depends on the job.
    for i in 0..6000u32 {
        let gender = if i % 5 < 3 { "male" } else { "female" };
        let job = ["engineer", "doctor", "lawyer"][(i % 3) as usize];
        let disease = match (job, i % 10) {
            ("engineer", 0..=5) => "none",
            ("engineer", 6..=7) => "asthma",
            ("doctor", 0..=4) => "none",
            ("doctor", 5..=7) => "flu",
            ("lawyer", 0..=6) => "none",
            (_, 8) => "diabetes",
            _ => "flu",
        };
        builder
            .push_values(&[gender, job, disease])
            .expect("values are in the schema");
    }
    let table = builder.build();
    println!("raw table: {} records", table.rows());

    // 1. Would plain uniform perturbation at p = 0.5 be private?
    let spec = SaSpec::new(&table, 2);
    let groups = PersonalGroups::build(&table, spec);
    let params = PrivacyParams::new(0.3, 0.3);
    let p = 0.5;
    let report = check_groups(&groups, p, params);
    println!(
        "uniform perturbation: {} of {} personal groups violate \
         (0.3, 0.3)-reconstruction privacy (vg = {:.1}%, vr = {:.1}%)",
        report.violating_groups(),
        groups.len(),
        100.0 * report.vg(),
        100.0 * report.vr(),
    );

    // 2. Enforce the criterion with Sampling–Perturbing–Scaling.
    let mut rng = StdRng::seed_from_u64(7);
    let output = sps(&mut rng, &table, &groups, SpsConfig { p, params });
    println!(
        "SPS: sampled {} of {} groups; published {} records",
        output.stats.groups_sampled, output.stats.groups, output.stats.output_records
    );

    // 3. Aggregate reconstruction still works: estimate how many engineers
    //    have asthma from the published table.
    let schema = table.schema();
    let job_code = schema.attribute(1).dictionary().code("engineer").unwrap();
    let disease_code = schema.attribute(2).dictionary().code("asthma").unwrap();
    let query = CountQuery::new(vec![(1, job_code)], 2, disease_code);
    let truth = query.answer(&table);
    let view = GroupedView::from_perturbed_table(&groups, &output.table);
    let estimate = view.estimate(&query, p);
    println!(
        "engineers with asthma: true = {truth}, reconstructed from the \
         publication = {estimate:.0} (relative error {:.1}%)",
        100.0 * (estimate - truth as f64).abs() / truth as f64
    );
}
