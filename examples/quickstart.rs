//! Quickstart: publish a table under reconstruction privacy.
//!
//! Walks the publication API on a small synthetic hospital table: publish
//! with `Publisher` (grouping + the `(λ, δ)` check + SPS in one call),
//! round-trip the release through its on-disk format, and answer an
//! aggregate count query from a `QueryEngine`.
//!
//! Run with: `cargo run --release -p rp-experiments --example quickstart`

use rp_engine::{Publication, Publisher, QueryEngine};
use rp_table::{Attribute, Schema, TableBuilder};

fn main() {
    // A table with Gender/Job public and Disease sensitive — the shape of
    // the paper's Example 2.
    let schema = Schema::new(vec![
        Attribute::new("Gender", ["male", "female"]),
        Attribute::new("Job", ["engineer", "doctor", "lawyer"]),
        Attribute::new(
            "Disease",
            ["none", "flu", "diabetes", "asthma", "hiv", "cancer"],
        ),
    ]);
    let mut builder = TableBuilder::new(schema);
    // 6,000 records with a disease mix that depends on the job.
    for i in 0..6000u32 {
        let gender = if i % 5 < 3 { "male" } else { "female" };
        let job = ["engineer", "doctor", "lawyer"][(i % 3) as usize];
        let disease = match (job, i % 10) {
            ("engineer", 0..=5) => "none",
            ("engineer", 6..=7) => "asthma",
            ("doctor", 0..=4) => "none",
            ("doctor", 5..=7) => "flu",
            ("lawyer", 0..=6) => "none",
            (_, 8) => "diabetes",
            _ => "flu",
        };
        builder
            .push_values(&[gender, job, disease])
            .expect("values are in the schema");
    }
    let table = builder.build();
    let truth_table = table.clone();
    println!("raw table: {} records", table.rows());

    // 1. Publish once: the builder runs personal grouping, the Equation-10
    //    design check and SPS enforcement in a single call.
    let publication = Publisher::new(table)
        .sa_named("Disease")
        .privacy(0.3, 0.3)
        .retention(0.5)
        .seed(7)
        .publish()
        .expect("table shape supports the criterion");
    let check = publication.check();
    println!(
        "uniform perturbation design: {} of {} personal groups violate \
         (0.3, 0.3)-reconstruction privacy (vg = {:.1}%, vr = {:.1}%)",
        check.violating_groups,
        check.total_groups,
        100.0 * check.vg(),
        100.0 * check.vr(),
    );
    let stats = publication.stats();
    println!(
        "SPS: sampled {} of {} groups; published {} records",
        stats.groups_sampled, stats.groups, stats.output_records
    );

    // 2. The release is one self-describing artifact: records + schema +
    //    p + (λ, δ) + seed, round-trippable byte-for-byte.
    let mut artifact = Vec::new();
    publication.save(&mut artifact).expect("serializable");
    let restored = Publication::load(&artifact[..]).expect("well-formed artifact");
    assert_eq!(publication, restored);
    println!(
        "artifact: {} bytes carry the release and every answering parameter",
        artifact.len()
    );

    // 3. Aggregate reconstruction still works: a long-lived engine answers
    //    how many engineers have asthma, with a confidence interval.
    let engine = QueryEngine::new(&restored);
    let query = engine
        .query_from_values(&[("Job", "engineer"), ("Disease", "asthma")])
        .expect("values exist in the published schema");
    let truth = query.answer(&truth_table);
    let answer = engine.answer(&query).expect("query fits the release");
    println!(
        "engineers with asthma: true = {truth}, reconstructed from the \
         publication = {:.0} (relative error {:.1}%)",
        answer.estimate,
        100.0 * (answer.estimate - truth as f64).abs() / truth as f64
    );
    if let Some((lo, hi)) = answer.count_interval() {
        println!("95% CI in counts: [{lo:.0}, {hi:.0}]");
    }
}
