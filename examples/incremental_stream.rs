//! Live publication under record insertion — the Section-3.1 advantage of
//! data perturbation over noisy query answers.
//!
//! A stream of patient records arrives; each is perturbed on arrival and
//! added to the live publication. The publisher re-evaluates every group's
//! `(λ, δ)` status incrementally and flags groups that outgrow their
//! threshold `sg`, which the owner then re-publishes through SPS without
//! touching the rest of the publication. At end of stream the same records
//! are also published in one batch through the `Publisher` builder, and a
//! `QueryEngine` over that release answers the analyst's questions — the
//! nightly-batch counterpart of the live path.
//!
//! Run with: `cargo run --release -p rp-experiments --example incremental_stream`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_core::incremental::{GroupStatus, IncrementalPublisher};
use rp_core::mle::reconstruct_frequency;
use rp_core::privacy::PrivacyParams;
use rp_engine::{Publisher, QueryEngine};
use rp_table::{Attribute, Schema, TableBuilder};

fn main() {
    let m = 6; // diseases
    let p = 0.5;
    let params = PrivacyParams::new(0.3, 0.3);
    let mut publisher = IncrementalPublisher::new(p, m, params);
    let mut rng = StdRng::seed_from_u64(42);

    // The same stream is also accumulated for the end-of-stream batch
    // release below.
    let schema = Schema::new(vec![
        Attribute::with_anonymous_domain("Clinic", 4),
        Attribute::with_anonymous_domain("Ward", 3),
        Attribute::with_anonymous_domain("Disease", m),
    ]);
    let mut accumulated = TableBuilder::with_capacity(schema, 30_000);

    // Stream 30,000 records over 3 "days"; group keys are (clinic, ward).
    let mut flagged_events = 0usize;
    for day in 0..3 {
        for _ in 0..10_000 {
            let clinic = rng.gen_range(0..4u32);
            let ward = rng.gen_range(0..3u32);
            // Ward 0 of clinic 0 is a specialty ward with a skewed disease
            // mix — it will cross its sg first.
            let sa = if clinic == 0 && ward == 0 {
                if rng.gen::<f64>() < 0.8 {
                    1
                } else {
                    rng.gen_range(0..m as u32)
                }
            } else {
                rng.gen_range(0..m as u32)
            };
            accumulated
                .push_codes(&[clinic, ward, sa])
                .expect("codes in domain");
            if publisher.insert(&mut rng, &[clinic, ward], sa) == GroupStatus::NeedsResampling {
                flagged_events += 1;
            }
        }
        let flagged: Vec<Vec<u32>> = publisher.flagged().map(|g| g.key.clone()).collect();
        println!(
            "day {day}: {} records in, {} groups live, {} flagged {:?}",
            publisher.inserted(),
            publisher.group_count(),
            flagged.len(),
            flagged
        );
        let fixed = publisher.republish_flagged(&mut rng);
        if fixed > 0 {
            println!("       re-published {fixed} group(s) through SPS");
        }
    }
    println!("insertions that left a group flagged: {flagged_events}");

    // An analyst reconstructs the disease mix of the specialty ward from
    // the live publication.
    let group = publisher.group(&[0, 0]).expect("specialty ward exists");
    let support: u64 = group.published_hist.iter().sum();
    println!(
        "\nspecialty ward: {} raw records, {} published records (live path)",
        group.len(),
        support
    );
    let truth: Vec<f64> = group
        .raw_hist
        .iter()
        .map(|&c| c as f64 / group.len() as f64)
        .collect();
    for (sa, &observed) in group.published_hist.iter().enumerate() {
        let est = reconstruct_frequency(observed, support, p, m);
        println!(
            "  disease {sa}: true {:.3}, reconstructed {:+.3}",
            truth[sa], est
        );
    }
    println!(
        "(the group was re-published from an sg-sized sample, so the\n \
         per-disease reconstruction above carries the guaranteed error)"
    );

    // End of stream: batch-publish the accumulated table through the
    // publication API and answer the same question from a QueryEngine.
    let publication = Publisher::new(accumulated.build())
        .sa_named("Disease")
        .privacy(0.3, 0.3)
        .retention(p)
        .seed(7)
        .publish()
        .expect("stream shape supports the criterion");
    let engine = QueryEngine::new(&publication);
    println!(
        "\nbatch release: {} records, {} of {} groups sampled; the same \
         ward reconstructed from the QueryEngine:",
        publication.table().rows(),
        publication.stats().groups_sampled,
        publication.stats().groups
    );
    for (sa, &true_frequency) in truth.iter().enumerate() {
        let query = engine
            .query_from_values(&[
                ("Clinic", "Clinic_0"),
                ("Ward", "Ward_0"),
                ("Disease", &format!("Disease_{sa}")),
            ])
            .expect("values exist in the published schema");
        let answer = engine.answer(&query).expect("query fits the release");
        println!(
            "  disease {sa}: true {true_frequency:.3}, batch-reconstructed {:+.3}",
            answer.frequency
        );
    }
    println!(
        "(live and batch paths answer from different randomness but the \
         same guarantee)"
    );
}
