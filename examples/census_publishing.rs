//! Large-scale census publication: the Section-6 CENSUS workflow at
//! reduced size.
//!
//! Demonstrates the histogram-level fast path that makes the paper's
//! parameter sweeps tractable: prepare a CENSUS-like table, generalize,
//! measure violation under plain perturbation, publish with SPS, and
//! answer a pool of count queries from both publications to compare
//! utility.
//!
//! Run with: `cargo run --release -p rp-experiments --example census_publishing`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::estimate::GroupedView;
use rp_core::privacy::{check_groups, PrivacyParams};
use rp_core::sps::{sps_histograms, up_histograms, SpsConfig};
use rp_datagen::querypool::{QueryPool, QueryPoolConfig};
use rp_experiments::config::PreparedDataset;
use rp_stats::summary::{relative_error, OnlineStats};

fn main() {
    // 60K keeps the example under a second; `repro figure4/figure5` runs
    // the paper-scale 100K–500K sweeps.
    let dataset = PreparedDataset::census(60_000);
    println!(
        "{}: {} records, {} personal groups after generalization",
        dataset.name,
        dataset.raw.rows(),
        dataset.groups.len()
    );

    // p = 0.9 keeps reconstruction sharp enough that some large groups
    // violate even at this reduced size (at 300K+, violations appear at
    // the default p = 0.5 — see `repro figure4`).
    let p = 0.9;
    let params = PrivacyParams::new(0.3, 0.3);
    let report = check_groups(&dataset.groups, p, params);
    println!(
        "uniform perturbation design at p = {p}: vg = {:.2}%, vr = {:.2}%",
        100.0 * report.vg(),
        100.0 * report.vr()
    );

    // A pool of selective queries posed on original attribute values.
    let mut rng = StdRng::seed_from_u64(60);
    let pool = QueryPool::generate(
        &mut rng,
        dataset.raw.schema(),
        &dataset.generalization,
        &dataset.groups,
        QueryPoolConfig {
            pool_size: 1_000,
            ..QueryPoolConfig::default()
        },
    );
    println!(
        "query pool: {} queries admitted from {} candidates",
        pool.len(),
        pool.attempts
    );

    // Publish both ways (histogram-level), answer the pool, compare.
    let queries: Vec<_> = pool.queries.iter().map(|q| q.query.clone()).collect();
    let base_view = GroupedView::from_histograms(
        &dataset.groups,
        dataset
            .groups
            .groups()
            .iter()
            .map(|g| g.sa_hist.clone())
            .collect(),
    );
    let index = base_view.match_index(&queries);
    let mut up_err = OnlineStats::new();
    let mut sps_err = OnlineStats::new();
    for _ in 0..5 {
        let up_view = GroupedView::from_histograms(
            &dataset.groups,
            up_histograms(&mut rng, &dataset.groups, p),
        );
        let sps_view = GroupedView::from_histograms(
            &dataset.groups,
            sps_histograms(&mut rng, &dataset.groups, SpsConfig { p, params }),
        );
        for (pq, matching) in pool.queries.iter().zip(&index) {
            up_err.push(relative_error(
                up_view.estimate_indexed(&pq.query, matching, p),
                pq.answer as f64,
            ));
            sps_err.push(relative_error(
                sps_view.estimate_indexed(&pq.query, matching, p),
                pq.answer as f64,
            ));
        }
    }
    println!(
        "average relative error over {} query evaluations:",
        up_err.count()
    );
    println!(
        "  UP  (violates reconstruction privacy): {:.4}",
        up_err.mean().unwrap()
    );
    println!(
        "  SPS (enforces reconstruction privacy): {:.4}",
        sps_err.mean().unwrap()
    );
    let overhead =
        100.0 * (sps_err.mean().unwrap() - up_err.mean().unwrap()) / up_err.mean().unwrap();
    if report.violating_records == 0 {
        println!("no group violated, so SPS degenerated to UP (overhead {overhead:+.1}%)");
    } else {
        println!(
            "SPS pays {overhead:+.1}% extra error to make every personal \
             reconstruction unreliable"
        );
    }
}
