//! Large-scale census publication: the Section-6 CENSUS workflow at
//! reduced size.
//!
//! Demonstrates the histogram-level fast path that makes the paper's
//! parameter sweeps tractable: prepare a CENSUS-like table, generalize,
//! measure violation under plain perturbation, then answer a pool of
//! count queries through `QueryEngine`s built over UP and SPS histogram
//! releases — the NA match index is prepared once and reused across both
//! engines and all perturbation runs.
//!
//! Run with: `cargo run --release -p rp-experiments --example census_publishing`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::privacy::{check_groups, PrivacyParams};
use rp_core::sps::{sps_histograms, up_histograms, SpsConfig};
use rp_datagen::querypool::{QueryPool, QueryPoolConfig};
use rp_engine::QueryEngine;
use rp_experiments::config::PreparedDataset;
use rp_stats::summary::OnlineStats;

fn main() {
    // 60K keeps the example under a second; `repro figure4/figure5` runs
    // the paper-scale 100K–500K sweeps.
    let dataset = PreparedDataset::census(60_000);
    println!(
        "{}: {} records, {} personal groups after generalization",
        dataset.name,
        dataset.raw.rows(),
        dataset.groups.len()
    );

    // p = 0.9 keeps reconstruction sharp enough that some large groups
    // violate even at this reduced size (at 300K+, violations appear at
    // the default p = 0.5 — see `repro figure4`).
    let p = 0.9;
    let params = PrivacyParams::new(0.3, 0.3);
    let report = check_groups(&dataset.groups, p, params);
    println!(
        "uniform perturbation design at p = {p}: vg = {:.2}%, vr = {:.2}%",
        100.0 * report.vg(),
        100.0 * report.vr()
    );

    // A pool of selective queries posed on original attribute values.
    let mut rng = StdRng::seed_from_u64(60);
    let pool = QueryPool::generate(
        &mut rng,
        dataset.raw.schema(),
        &dataset.generalization,
        &dataset.groups,
        QueryPoolConfig {
            pool_size: 1_000,
            ..QueryPoolConfig::default()
        },
    );
    println!(
        "query pool: {} queries admitted from {} candidates",
        pool.len(),
        pool.attempts
    );

    // Prepare the NA match index once from a base engine over the raw
    // histograms; it depends only on the group keys, so every perturbed
    // engine below reuses it.
    let schema = dataset.generalized.schema();
    let base_engine = QueryEngine::from_histograms(
        &dataset.groups,
        dataset
            .groups
            .groups()
            .iter()
            .map(|g| g.sa_hist.clone())
            .collect(),
        schema,
        p,
    );
    let prepared = base_engine.prepare_pool(&pool).expect("pool fits schema");

    // Publish both ways (histogram-level), answer the pool, compare.
    let mut up_err = OnlineStats::new();
    let mut sps_err = OnlineStats::new();
    for _ in 0..5 {
        let up_engine = QueryEngine::from_histograms(
            &dataset.groups,
            up_histograms(&mut rng, &dataset.groups, p),
            schema,
            p,
        );
        let sps_engine = QueryEngine::from_histograms(
            &dataset.groups,
            sps_histograms(&mut rng, &dataset.groups, SpsConfig { p, params }),
            schema,
            p,
        );
        up_err.push(
            up_engine
                .mean_relative_error(&pool, &prepared)
                .expect("prepared index matches"),
        );
        sps_err.push(
            sps_engine
                .mean_relative_error(&pool, &prepared)
                .expect("prepared index matches"),
        );
    }
    println!(
        "average relative error over {} runs x {} queries:",
        up_err.count(),
        pool.len()
    );
    println!(
        "  UP  (violates reconstruction privacy): {:.4}",
        up_err.mean().unwrap()
    );
    println!(
        "  SPS (enforces reconstruction privacy): {:.4}",
        sps_err.mean().unwrap()
    );
    let overhead =
        100.0 * (sps_err.mean().unwrap() - up_err.mean().unwrap()) / up_err.mean().unwrap();
    if report.violating_records == 0 {
        println!("no group violated, so SPS degenerated to UP (overhead {overhead:+.1}%)");
    } else {
        println!(
            "SPS pays {overhead:+.1}% extra error to make every personal \
             reconstruction unreliable"
        );
    }
}
