//! Publishing a hospital survey: generalization, privacy enforcement and
//! statistical learning on the published data.
//!
//! The scenario of the paper's introduction: a publisher wants analysts to
//! learn statistical relationships ("smokers tend to have lung cancer")
//! while preventing targeted inference about any individual ("Bob likely
//! has HIV"). This example builds a survey table whose public attributes
//! include a spurious one (FavoriteColor — the Section-3.4 motivation),
//! shows the χ² merge folding it away, publishes through the `Publisher`
//! builder, and then *learns the smoking relationship back* from a
//! `QueryEngine` over the release while the personal reconstruction of a
//! single victim stays unreliable.
//!
//! Run with: `cargo run --release -p rp-experiments --example hospital_survey`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_core::generalize::Generalization;
use rp_core::groups::{PersonalGroups, SaSpec};
use rp_core::mle::reconstruct_histogram;
use rp_engine::{Publisher, QueryEngine};
use rp_table::{Attribute, Pattern, Schema, TableBuilder, Term};

const DISEASES: [&str; 8] = [
    "none",
    "lung-cancer",
    "asthma",
    "flu",
    "diabetes",
    "hiv",
    "hepatitis",
    "ulcer",
];

fn main() {
    let mut rng = StdRng::seed_from_u64(1234);
    let schema = Schema::new(vec![
        Attribute::new("Smoker", ["yes", "no"]),
        Attribute::new("AgeBand", ["18-35", "36-60", "61+"]),
        Attribute::new("FavoriteColor", ["red", "green", "blue", "black"]),
        Attribute::new("Disease", DISEASES),
    ]);
    let mut builder = TableBuilder::new(schema);
    for _ in 0..40_000 {
        let smoker = usize::from(rng.gen::<f64>() < 0.25);
        let age = match rng.gen::<f64>() {
            x if x < 0.4 => 0,
            x if x < 0.8 => 1,
            _ => 2,
        };
        let color = rng.gen_range(0..4u32);
        // Smokers carry a much higher lung-cancer rate; favorite color has
        // no effect whatsoever.
        let lung_rate = if smoker == 0 { 0.12 } else { 0.01 };
        let disease = if rng.gen::<f64>() < lung_rate {
            1 // lung-cancer
        } else {
            // Everything else split by age a little.
            let r: f64 = rng.gen();
            match (age, r) {
                (_, r) if r < 0.6 => 0,
                (0, _) => 3,
                (1, r) if r < 0.8 => 4,
                (2, r) if r < 0.8 => 7,
                _ => 2,
            }
        };
        builder
            .push_codes(&[smoker as u32, age, color, disease])
            .expect("codes in domain");
    }
    let table = builder.build();

    // 1. Generalize: FavoriteColor has no impact on Disease, so its four
    //    values merge into one and stop fragmenting personal groups.
    let spec = SaSpec::new(&table, 3);
    let generalization = Generalization::fit(&table, &spec, 0.05);
    for attr_gen in generalization.attributes() {
        println!(
            "{}: {} -> {} values",
            table.schema().attribute(attr_gen.attr).name(),
            table.schema().attribute(attr_gen.attr).domain_size(),
            attr_gen.new_domain_size()
        );
    }
    let published_input = generalization.apply(&table);

    // 2. Publish under (0.3, 0.3)-reconstruction privacy at p = 0.4: the
    //    builder runs the design check and SPS in one call.
    let p = 0.4;
    let publication = Publisher::new(published_input.clone())
        .sa_named("Disease")
        .privacy(0.3, 0.3)
        .retention(p)
        .seed(rng.gen())
        .publish()
        .expect("survey shape supports the criterion");
    let check = publication.check();
    println!(
        "\nbefore SPS: vg = {:.1}%, vr = {:.1}% of records at risk",
        100.0 * check.vg(),
        100.0 * check.vr()
    );
    let stats = publication.stats();
    println!(
        "SPS sampled {} of {} groups; publication has {} records",
        stats.groups_sampled,
        stats.groups,
        publication.table().rows()
    );

    // 3. Statistical learning on the publication: the smoking/lung-cancer
    //    relationship survives aggregate reconstruction.
    let engine = QueryEngine::new(&publication);
    for (smoker_value, label) in [("yes", "smokers"), ("no", "non-smokers")] {
        let query = engine
            .query_from_values(&[("Smoker", smoker_value), ("Disease", "lung-cancer")])
            .expect("values exist in the published schema");
        let truth = query.answer(&published_input);
        let answer = engine.answer(&query).expect("query fits the release");
        let smoker_code = published_input
            .schema()
            .attribute(0)
            .dictionary()
            .code(smoker_value)
            .expect("value in domain");
        let support = Pattern::new(vec![(0, Term::Value(smoker_code))]).count(&published_input);
        println!(
            "lung cancer among {label}: true rate {:.2}%, learned rate {:.2}%",
            100.0 * truth as f64 / support as f64,
            100.0 * answer.estimate / support as f64
        );
    }

    // 4. Personal reconstruction about one victim stays unreliable: take
    //    the victim's personal group in the publication and reconstruct.
    let groups = PersonalGroups::build(&published_input, publication.spec());
    let victim_group = groups
        .groups()
        .iter()
        .enumerate()
        .max_by_key(|(_, g)| g.len())
        .map(|(i, _)| i)
        .expect("non-empty grouping");
    let key = &groups.groups()[victim_group].key;
    let truth_hist = &groups.groups()[victim_group].sa_hist;
    let n = groups.groups()[victim_group].len();
    // The published counterpart of that group.
    let regrouped = PersonalGroups::build(publication.table(), publication.spec());
    let published = regrouped
        .groups()
        .iter()
        .find(|g| &g.key == key)
        .expect("group survives publication");
    let reconstructed = reconstruct_histogram(&published.sa_hist, p);
    println!("\npersonal reconstruction of the largest group ({n} records):");
    for (i, name) in DISEASES.iter().enumerate() {
        let truth = truth_hist[i] as f64 / n as f64;
        println!(
            "  {name:<12} true {truth:.3}  reconstructed {:+.3}",
            reconstructed[i]
        );
    }
    println!(
        "(the reconstruction errors above are what (0.3, 0.3)-privacy \
         guarantees an attacker cannot rule out)"
    );
}
