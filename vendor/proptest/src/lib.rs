//! Offline vendored drop-in for the subset of the `proptest` 1.x API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the property-based
//! suites link against this self-contained implementation. It keeps the
//! surface the tests are written against — the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` header, range strategies
//! (`0.1f64..50.0`), [`any`], [`collection::vec`], [`prop_assert!`],
//! [`prop_assert_eq!`] and [`prop_assume!`] — but runs a plain randomized
//! check: each case draws inputs from the strategies with a generator seeded
//! deterministically from the test's name (override with `PROPTEST_SEED`),
//! so a given binary always exercises the same cases and the suite cannot
//! flake. There is no shrinking; a failure report instead prints the exact
//! inputs of the failing case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` randomized cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A source of random test inputs of type `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )+
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical "draw any value" strategy, used by [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// A strategy producing any value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// The strategy returned by [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Builds the deterministic per-test generator: seeded from `PROPTEST_SEED`
/// when set, otherwise from an FNV-1a hash of the test's name.
#[doc(hidden)]
pub fn __seed_rng(test_name: &str) -> StdRng {
    if let Some(seed) = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        return StdRng::seed_from_u64(seed);
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Asserts a condition inside a [`proptest!`] body, reporting the failing
/// case's inputs instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                left,
                right
            ));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares property-based tests.
///
/// Supported form (the one used throughout this workspace):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0.0f64..1.0, n in 1usize..10) {
///         prop_assert!(x < n as f64 + 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); ) => {};
    (
        ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::__seed_rng(concat!(module_path!(), "::", stringify!($name)));
            // Bind each strategy once, under its argument's name; the case
            // loop below shadows these bindings with drawn values.
            $(let $arg = $strategy;)*
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&$arg, &mut __rng);)*
                let __inputs = ::std::format!(
                    concat!($(stringify!($arg), " = {:?}, "),*),
                    $(&$arg),*
                );
                let __outcome: ::core::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(__message) = __outcome {
                    ::core::panic!(
                        "proptest case {}/{} for `{}` failed: {}\n  inputs: {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __message,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
}

/// The glob-import surface test files use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Any, Arbitrary, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 0.25f64..0.75, n in 2usize..40) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((2..40).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u64..500, 2..20)) {
            prop_assert!((2..20).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 500));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn any_draws(seed in any::<u64>()) {
            // Exercise prop_assert_eq through the round trip.
            prop_assert_eq!(seed, seed);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        use rand::Rng;
        let mut a = super::__seed_rng("some::test");
        let mut b = super::__seed_rng("some::test");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let mut c = super::__seed_rng("other::test");
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }
}
