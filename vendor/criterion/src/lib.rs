//! Offline vendored drop-in for the subset of the `criterion` 0.5 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the eight bench
//! targets in `rp-bench` link against this self-contained harness instead of
//! the real criterion. It keeps the same surface — [`Criterion`],
//! [`Bencher::iter`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`] — and performs
//! a real (if simpler) measurement: an adaptive calibration pass sizes the
//! iteration count to a fixed wall-clock budget, then the batch is timed and
//! the per-iteration mean is reported.
//!
//! Environment knobs:
//!
//! * `CRITERION_BUDGET_MS` — measurement budget per benchmark in
//!   milliseconds (default 200).
//! * `CRITERION_JSON` — when set to a path, appends one JSON line per
//!   benchmark (`id`, `mean_ns`, `iters`, optional `throughput_elems`),
//!   which `BENCH_baseline.json` is generated from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from deleting a
/// computation whose result is otherwise unused.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput metadata attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<N: Display, P: Display>(name: N, param: P) -> Self {
        Self {
            label: format!("{name}/{param}"),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter<P: Display>(param: P) -> Self {
        Self {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

impl From<&String> for BenchmarkId {
    fn from(label: &String) -> Self {
        Self {
            label: label.clone(),
        }
    }
}

/// Times a single benchmark body.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calibrates an iteration count against the budget, then times the
    /// routine and records the result.
    ///
    /// The routine is invoked through a `black_box`-ed `dyn` reference:
    /// under fat LTO the optimizer otherwise proves a pure closure
    /// loop-invariant and hoists it out of the timing loop entirely
    /// (sub-nanosecond "measurements"). An opaque indirect call pins one
    /// real evaluation per iteration at the cost of a few ns of call
    /// overhead.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let routine: &mut dyn FnMut() -> O = &mut routine;
        let routine = black_box(routine);
        // Calibration: one untimed warm-up doubles as a cost estimate.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark harness: owns the measurement budget and the report sink.
#[derive(Debug)]
pub struct Criterion {
    budget: Duration,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let budget_ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(200);
        Self {
            budget: Duration::from_millis(budget_ms),
            json_path: std::env::var("CRITERION_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) harness command-line arguments such as the
    /// `--bench` flag cargo passes to bench targets.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Overrides the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Runs one benchmark function.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.label, None, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Prints the closing summary line.
    pub fn final_summary(&self) {
        println!("criterion (vendored): done");
    }

    fn run<F: FnMut(&mut Bencher)>(
        &mut self,
        label: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let mut bencher = Bencher {
            budget: self.budget,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.iters == 0 {
            println!("{label:<50} (no measurement: Bencher::iter never called)");
            return;
        }
        let mean_ns = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        let mut line = format!(
            "{label:<50} time: [{}]   ({} iters)",
            format_ns(mean_ns),
            bencher.iters
        );
        if let Some(Throughput::Elements(n)) = throughput {
            let per_sec = n as f64 * 1e9 / mean_ns;
            line.push_str(&format!("   thrpt: {per_sec:.0} elem/s"));
        }
        println!("{line}");
        if let Some(path) = &self.json_path {
            let elems = match throughput {
                Some(Throughput::Elements(n)) => format!(",\"throughput_elems\":{n}"),
                _ => String::new(),
            };
            let record = format!(
                "{{\"id\":\"{}\",\"mean_ns\":{:.1},\"iters\":{}{}}}\n",
                label, mean_ns, bencher.iters, elems
            );
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = file.write_all(record.as_bytes());
            }
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// metadata.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepts (and ignores) the requested statistical sample size; the
    /// vendored harness sizes batches by wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput metadata reported for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let throughput = self.throughput;
        self.criterion.run(&label, throughput, |b| f(b));
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let throughput = self.throughput;
        self.criterion.run(&label, throughput, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Generates a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
            json_path: None,
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            budget: Duration::from_millis(2),
            json_path: None,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
