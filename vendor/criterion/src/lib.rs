//! Offline vendored drop-in for the subset of the `criterion` 0.5 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the bench targets
//! in `rp-bench` link against this self-contained harness instead of the
//! real criterion. It keeps the same surface — [`Criterion`],
//! [`Bencher::iter`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`] — and
//! performs a real (if simpler) measurement: an adaptive calibration pass
//! sizes the per-sample iteration count, the routine is then timed over
//! several independent sample batches, and the per-iteration **median with
//! its MAD** (median absolute deviation — a robust spread estimate) is
//! reported, so a speedup claim carries a dispersion measure instead of a
//! single batch mean.
//!
//! Environment knobs:
//!
//! * `CRITERION_BUDGET_MS` — total measurement budget per benchmark in
//!   milliseconds (default 200), split across the samples.
//! * `CRITERION_SAMPLES` — independent sample batches per benchmark
//!   (default 9, minimum 1).
//! * `CRITERION_JSON` — when set to a path, appends one JSON line per
//!   benchmark (`id`, `median_ns`, `mad_ns`, `mean_ns`, `samples`,
//!   `iters`, optional `throughput_elems`), which `BENCH_baseline.json`
//!   is generated from.
//! * `CRITERION_BASELINE` — when set to a baseline JSON file (either raw
//!   `CRITERION_JSON` lines or the checked-in `BENCH_baseline.json`), each
//!   benchmark line is annotated with the old/new ratio, flagged
//!   significant when the medians differ by more than three MADs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from deleting a
/// computation whose result is otherwise unused.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput metadata attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<N: Display, P: Display>(name: N, param: P) -> Self {
        Self {
            label: format!("{name}/{param}"),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter<P: Display>(param: P) -> Self {
        Self {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

impl From<&String> for BenchmarkId {
    fn from(label: &String) -> Self {
        Self {
            label: label.clone(),
        }
    }
}

/// Robust statistics over per-sample per-iteration times.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SampleStats {
    median_ns: f64,
    mad_ns: f64,
    mean_ns: f64,
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn sample_stats(samples: &[f64]) -> SampleStats {
    assert!(!samples.is_empty(), "at least one sample required");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    let median_ns = median_of(&sorted);
    let mut deviations: Vec<f64> = sorted.iter().map(|&x| (x - median_ns).abs()).collect();
    deviations.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    SampleStats {
        median_ns,
        mad_ns: median_of(&deviations),
        mean_ns: samples.iter().sum::<f64>() / samples.len() as f64,
    }
}

/// Times a single benchmark body.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    samples: usize,
    iters_per_sample: u64,
    sample_means_ns: Vec<f64>,
}

impl Bencher {
    /// Calibrates an iteration count against the budget, then times the
    /// routine over `CRITERION_SAMPLES` independent batches and records the
    /// per-iteration time of each.
    ///
    /// The routine is invoked through a `black_box`-ed `dyn` reference:
    /// under fat LTO the optimizer otherwise proves a pure closure
    /// loop-invariant and hoists it out of the timing loop entirely
    /// (sub-nanosecond "measurements"). An opaque indirect call pins one
    /// real evaluation per iteration at the cost of a few ns of call
    /// overhead.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let routine: &mut dyn FnMut() -> O = &mut routine;
        let routine = black_box(routine);
        // Calibration: one untimed warm-up doubles as a cost estimate.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample_budget = (self.budget.as_nanos() / self.samples as u128).max(1);
        let iters = (per_sample_budget / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.iters_per_sample = iters;
        self.sample_means_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.sample_means_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Minimal scanner for baseline files: accepts both raw `CRITERION_JSON`
/// line output and the checked-in `BENCH_baseline.json` (one object per
/// benchmark inside a `results` array). Returns the reference time for
/// `id` — `median_ns` when recorded, else `mean_ns`.
fn baseline_lookup(baseline: &str, id: &str) -> Option<f64> {
    let needle = format!("\"id\":\"{id}\"");
    // Normalize pretty-printed JSON ("id": "x") to the compact form.
    let compact: String = baseline
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect::<String>();
    let at = compact.find(&needle)?;
    let object_end = compact[at..].find('}').map(|e| at + e)?;
    let object = &compact[at..object_end];
    let field = |name: &str| -> Option<f64> {
        let key = format!("\"{name}\":");
        let start = object.find(&key)? + key.len();
        let rest = &object[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].parse::<f64>().ok()
    };
    field("median_ns").or_else(|| field("mean_ns"))
}

/// The benchmark harness: owns the measurement budget and the report sinks.
#[derive(Debug)]
pub struct Criterion {
    budget: Duration,
    samples: usize,
    json_path: Option<String>,
    baseline: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let budget_ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(200);
        let samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(9)
            .max(1);
        let baseline = std::env::var("CRITERION_BASELINE")
            .ok()
            .and_then(|path| std::fs::read_to_string(path).ok());
        Self {
            budget: Duration::from_millis(budget_ms),
            samples,
            json_path: std::env::var("CRITERION_JSON").ok(),
            baseline,
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) harness command-line arguments such as the
    /// `--bench` flag cargo passes to bench targets.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Overrides the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Runs one benchmark function.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.label, None, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Prints the closing summary line.
    pub fn final_summary(&self) {
        println!("criterion (vendored): done");
    }

    fn run<F: FnMut(&mut Bencher)>(
        &mut self,
        label: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let mut bencher = Bencher {
            budget: self.budget,
            samples: self.samples,
            iters_per_sample: 0,
            sample_means_ns: Vec::new(),
        };
        f(&mut bencher);
        if bencher.sample_means_ns.is_empty() {
            println!("{label:<50} (no measurement: Bencher::iter never called)");
            return;
        }
        let stats = sample_stats(&bencher.sample_means_ns);
        let total_iters = bencher.iters_per_sample * bencher.sample_means_ns.len() as u64;
        let mut line = format!(
            "{label:<50} time: [{} ± {}]   ({} samples × {} iters)",
            format_ns(stats.median_ns),
            format_ns(stats.mad_ns),
            bencher.sample_means_ns.len(),
            bencher.iters_per_sample,
        );
        if let Some(Throughput::Elements(n)) = throughput {
            let per_sec = n as f64 * 1e9 / stats.median_ns;
            line.push_str(&format!("   thrpt: {per_sec:.0} elem/s"));
        }
        if let Some(baseline) = &self.baseline {
            if let Some(old_ns) = baseline_lookup(baseline, label) {
                let ratio = old_ns / stats.median_ns;
                // Significant = beyond 3 MADs *and* beyond 5% of the
                // baseline: quantized benchmarks often measure MAD = 0, and
                // 3·0 would flag pure timer jitter as a regression.
                let noise_floor = (3.0 * stats.mad_ns).max(0.05 * old_ns);
                let significant = (stats.median_ns - old_ns).abs() > noise_floor;
                let direction = if ratio >= 1.0 { "faster" } else { "slower" };
                let magnitude = if ratio >= 1.0 { ratio } else { 1.0 / ratio };
                line.push_str(&format!(
                    "   baseline: {magnitude:.2}x {direction} (was {}{})",
                    format_ns(old_ns),
                    if significant { ", significant" } else { "" },
                ));
            }
        }
        println!("{line}");
        if let Some(path) = &self.json_path {
            let elems = match throughput {
                Some(Throughput::Elements(n)) => format!(",\"throughput_elems\":{n}"),
                _ => String::new(),
            };
            let record = format!(
                "{{\"id\":\"{}\",\"median_ns\":{:.1},\"mad_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{},\"iters\":{}{}}}\n",
                label,
                stats.median_ns,
                stats.mad_ns,
                stats.mean_ns,
                bencher.sample_means_ns.len(),
                total_iters,
                elems
            );
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = file.write_all(record.as_bytes());
            }
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// metadata.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepts (and ignores) the requested statistical sample size; the
    /// vendored harness takes `CRITERION_SAMPLES` batches sized by
    /// wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput metadata reported for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let throughput = self.throughput;
        self.criterion.run(&label, throughput, |b| f(b));
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let throughput = self.throughput;
        self.criterion.run(&label, throughput, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Generates a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
            samples: 3,
            json_path: None,
            baseline: None,
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            budget: Duration::from_millis(2),
            samples: 2,
            json_path: None,
            baseline: None,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }

    #[test]
    fn median_and_mad_are_robust() {
        let stats = sample_stats(&[10.0, 12.0, 11.0, 1000.0, 9.0]);
        assert_eq!(stats.median_ns, 11.0);
        assert_eq!(stats.mad_ns, 1.0); // deviations 1, 1, 0, 989, 2
        assert!(stats.mean_ns > 200.0, "the mean is not robust");
        let even = sample_stats(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(even.median_ns, 2.5);
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            budget: Duration::from_millis(4),
            samples: 5,
            iters_per_sample: 0,
            sample_means_ns: Vec::new(),
        };
        b.iter(|| black_box(7u32).wrapping_mul(3));
        assert_eq!(b.sample_means_ns.len(), 5);
        assert!(b.iters_per_sample >= 1);
        assert!(b.sample_means_ns.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn baseline_lookup_reads_both_formats() {
        let raw_lines = "{\"id\":\"g/a\",\"median_ns\":123.5,\"mad_ns\":2.0,\"mean_ns\":130.0,\"samples\":9,\"iters\":100}\n{\"id\":\"g/b\",\"mean_ns\":77.0,\"iters\":5}\n";
        assert_eq!(baseline_lookup(raw_lines, "g/a"), Some(123.5));
        assert_eq!(baseline_lookup(raw_lines, "g/b"), Some(77.0));
        assert_eq!(baseline_lookup(raw_lines, "g/c"), None);
        let pretty = r#"{
  "note": "x",
  "results": [
    {
      "id": "ablation_grouping/sort_based_paper",
      "mean_ns": 1451730.5,
      "iters": 315
    }
  ]
}"#;
        assert_eq!(
            baseline_lookup(pretty, "ablation_grouping/sort_based_paper"),
            Some(1451730.5)
        );
    }
}
