//! Offline vendored drop-in for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so instead of the real
//! `rand` crate the workspace ships this self-contained implementation with
//! the same module paths and trait names for everything the code base
//! actually calls:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool` and `sample`;
//! * [`SeedableRng::seed_from_u64`] (SplitMix64 seed expansion, as upstream);
//! * [`rngs::StdRng`], here backed by xoshiro256++ — a small, fast generator
//!   with excellent statistical quality (passes BigCrush), which matters
//!   because the test suite runs chi-squared goodness-of-fit checks against
//!   the samplers built on top of it;
//! * [`distributions::Standard`] / [`distributions::Distribution`] and the
//!   range types accepted by `gen_range` (half-open and inclusive, integer
//!   and float).
//!
//! Everything is deterministic: a given seed always yields the same stream
//! on every platform, which the workspace's determinism tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of random `u32`/`u64`
/// words and raw bytes.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`distributions::Standard`] distribution
    /// (uniform over the type's natural range; `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from the given range. Accepts `a..b` and `a..=b`
    /// over the integer and float primitive types.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples a value from the given distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be built from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it to a full seed with
    /// SplitMix64 (the same scheme upstream `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Deterministic for a given seed on every platform. (Upstream `rand`
    /// backs `StdRng` with ChaCha12; this vendored stand-in trades
    /// cryptographic strength — unneeded here — for simplicity while keeping
    /// first-rate statistical quality.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro's state must not be all zero.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }
}

/// Distributions and range sampling used by [`Rng::gen`] and
/// [`Rng::gen_range`].
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: uniform over all values for
    /// integers and `bool`, uniform on `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits, uniform on [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($ty:ty => $word:ident),+ $(,)?) => {
            $(
                impl Distribution<$ty> for Standard {
                    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                        rng.$word() as $ty
                    }
                }
            )+
        };
    }

    standard_int!(
        u8 => next_u32,
        u16 => next_u32,
        u32 => next_u32,
        u64 => next_u64,
        usize => next_u64,
        i8 => next_u32,
        i16 => next_u32,
        i32 => next_u32,
        i64 => next_u64,
        isize => next_u64,
    );

    /// Draws uniformly from `[0, span)` without modulo bias (Lemire's
    /// widening-multiply method with rejection). `span == 0` means the full
    /// `u64` range.
    pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        if span == 0 {
            return rng.next_u64();
        }
        // Lemire rejection with the division deferred: the biased zone is
        // `threshold = 2^64 mod span`, which is strictly less than `span`,
        // so a low product half of at least `span` accepts without ever
        // paying the hardware divide — i.e. in all but ~span/2^64 of draws.
        // Draw sequence and accepted values are identical to computing the
        // threshold up front.
        let m = u128::from(rng.next_u64()) * u128::from(span);
        if (m as u64) >= span {
            return (m >> 64) as u64;
        }
        let threshold = span.wrapping_neg() % span;
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
        loop {
            let m = u128::from(rng.next_u64()) * u128::from(span);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A range of values acceptable to [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($ty:ty),+ $(,)?) => {
            $(
                impl SampleRange<$ty> for core::ops::Range<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        assert!(
                            self.start < self.end,
                            "gen_range: empty range {:?}..{:?}", self.start, self.end
                        );
                        let span = (self.end as i128 - self.start as i128) as u64;
                        self.start.wrapping_add(uniform_u64(rng, span) as $ty)
                    }
                }

                impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        let (lo, hi) = self.into_inner();
                        assert!(lo <= hi, "gen_range: empty range {lo:?}..={hi:?}");
                        // hi - lo + 1 == 0 encodes "full u64 range" below.
                        let span = (hi as i128 - lo as i128 + 1) as u64;
                        lo.wrapping_add(uniform_u64(rng, span) as $ty)
                    }
                }
            )+
        };
    }

    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range {
        ($($ty:ty),+ $(,)?) => {
            $(
                impl SampleRange<$ty> for core::ops::Range<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        assert!(
                            self.start < self.end && (self.end - self.start).is_finite(),
                            "gen_range: invalid range {:?}..{:?}", self.start, self.end
                        );
                        let unit: $ty = Standard.sample(rng);
                        let value = self.start + (self.end - self.start) * unit;
                        // Guard the (measure-zero) rounding case value == end.
                        if value < self.end { value } else { self.start }
                    }
                }

                impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        let (lo, hi) = self.into_inner();
                        assert!(
                            lo <= hi && (hi - lo).is_finite(),
                            "gen_range: invalid range {lo:?}..={hi:?}"
                        );
                        let unit: $ty = Standard.sample(rng);
                        lo + (hi - lo) * unit
                    }
                }
            )+
        };
    }

    float_range!(f32, f64);
}

#[cfg(test)]
mod tests {
    use super::distributions::uniform_u64;
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<f64>() == b.gen::<f64>()).count();
        assert!(same < 4, "streams should diverge, {same}/64 collisions");
    }

    #[test]
    fn unit_interval_and_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let x = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
            let k = rng.gen_range(3u32..17);
            assert!((3..17).contains(&k));
            let j = rng.gen_range(0usize..=4);
            assert!(j <= 4);
            let s = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn uniform_u64_unbiased_small_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[uniform_u64(&mut rng, 5) as usize] += 1;
        }
        let expect = n as f64 / 5.0;
        for &c in &counts {
            let dev = (f64::from(c) - expect).abs() / expect;
            assert!(dev < 0.02, "bucket deviation {dev}");
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
    }
}
