//! # rp-repro
//!
//! Umbrella crate for the Rust reproduction of *Reconstruction Privacy:
//! Enabling Statistical Learning* (Wang, Han, Fu, Wong, Yu — EDBT 2015).
//!
//! The actual implementation lives in the workspace crates; this root
//! package exists to host the workspace-level integration tests
//! (`tests/*.rs`) and runnable examples (`examples/*.rs`), and re-exports
//! every layer so downstream code — and the examples — can reach the whole
//! stack through one dependency:
//!
//! * [`table`] (`rp-table`) — columnar categorical store, predicates,
//!   grouping, queries, CSV.
//! * [`stats`] (`rp-stats`) — special functions, χ²/G tests, noise
//!   distributions, tail bounds, sampling.
//! * [`core`] (`rp-core`) — perturbation matrices, MLE reconstruction, the
//!   (λ, δ)-privacy criterion and the SPS algorithm.
//! * [`datagen`] (`rp-datagen`) — synthetic ADULT/CENSUS generators and the
//!   query pools of Section 6.
//! * [`engine`] (`rp-engine`) — the publication API: `Publisher` →
//!   `Publication` → `QueryEngine`, persistence and the serve loop.
//! * [`dp`] (`rp-dp`) — the differential-privacy baseline and the
//!   ratio-attack analysis.
//! * [`anonymize`] (`rp-anonymize`) — the Anatomy baseline.
//! * [`learn`] (`rp-learn`) — naive-Bayes learning on reconstructed
//!   distributions.
//! * [`experiments`] (`rp-experiments`) — the paper's tables and figures as
//!   runnable experiments, plus the `repro` / `rpctl` binaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rp_anonymize as anonymize;
pub use rp_core as core;
pub use rp_datagen as datagen;
pub use rp_dp as dp;
pub use rp_engine as engine;
pub use rp_experiments as experiments;
pub use rp_learn as learn;
pub use rp_stats as stats;
pub use rp_table as table;
