//! Output-perturbation mechanisms: Laplace, Gaussian, geometric and the
//! calibrated binomial ([`calibrated_binomial`]).
//!
//! These implement the differential-privacy baseline that Section 2 of the
//! paper analyses. The interface is deliberately small: a mechanism turns a
//! true count into a noisy answer, and exposes the scale/variance of its
//! noise so the ratio-attack analysis (Lemma 1 / Corollary 2) can be applied
//! to it.

pub mod calibrated_binomial;

use rand::Rng;
use rp_stats::dist::{Gaussian, Laplace, TwoSidedGeometric};

/// Worst-case change of a query answer when one record changes — the
/// sensitivity `Δ` of a query class.
///
/// For a single count query `Δ = 1`; the paper's Example 1 uses `Δ = 2` to
/// account for answering the two queries `Q1, Q2` in a row (sequential
/// composition folded into the sensitivity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sensitivity(f64);

impl Sensitivity {
    /// Creates a sensitivity value.
    ///
    /// # Panics
    ///
    /// Panics unless `delta > 0` and finite.
    pub fn new(delta: f64) -> Self {
        assert!(
            delta > 0.0 && delta.is_finite(),
            "sensitivity must be positive and finite, got {delta}"
        );
        Self(delta)
    }

    /// Sensitivity of a single count query.
    pub fn count_query() -> Self {
        Self(1.0)
    }

    /// Sensitivity covering a batch of `k` count queries answered together
    /// (the paper's `Δ = 2` for the `Q1, Q2` pair).
    pub fn count_query_batch(k: usize) -> Self {
        assert!(k > 0, "batch must contain at least one query");
        Self(k as f64)
    }

    /// The numeric value `Δ`.
    pub fn value(&self) -> f64 {
        self.0
    }
}

/// A randomized answer mechanism for real-valued query answers.
pub trait Mechanism {
    /// Returns the noisy answer for the true answer `ans`.
    fn answer<R: Rng + ?Sized>(&self, rng: &mut R, ans: f64) -> f64;

    /// The variance of the added noise.
    fn noise_variance(&self) -> f64;
}

/// The ε-differentially-private Laplace mechanism: adds `Lap(b)` with
/// `b = Δ/ε`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceMechanism {
    epsilon: f64,
    sensitivity: Sensitivity,
    noise: Laplace,
}

impl LaplaceMechanism {
    /// Creates the mechanism for privacy parameter `epsilon` and the given
    /// query sensitivity.
    ///
    /// # Panics
    ///
    /// Panics unless `epsilon > 0` and finite.
    pub fn new(epsilon: f64, sensitivity: Sensitivity) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive and finite, got {epsilon}"
        );
        Self {
            epsilon,
            sensitivity,
            noise: Laplace::new(sensitivity.value() / epsilon),
        }
    }

    /// Creates the mechanism directly from a scale factor `b` (the paper's
    /// Table 1 parameterizes by `b`).
    pub fn from_scale(scale: f64) -> Self {
        let noise = Laplace::new(scale);
        Self {
            // With Δ = 1, ε = 1/b; informational only in this constructor.
            epsilon: 1.0 / scale,
            sensitivity: Sensitivity::count_query(),
            noise,
        }
    }

    /// The privacy parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The sensitivity Δ.
    pub fn sensitivity(&self) -> Sensitivity {
        self.sensitivity
    }

    /// The Laplace scale `b = Δ/ε`.
    pub fn scale(&self) -> f64 {
        self.noise.scale()
    }
}

impl Mechanism for LaplaceMechanism {
    fn answer<R: Rng + ?Sized>(&self, rng: &mut R, ans: f64) -> f64 {
        ans + self.noise.sample(rng)
    }

    fn noise_variance(&self) -> f64 {
        self.noise.variance()
    }
}

/// The (ε, δ)-differentially-private Gaussian mechanism: adds `N(0, σ²)`
/// with `σ = Δ · sqrt(2 ln(1.25/δ)) / ε` (the classic analytic calibration,
/// valid for `ε ∈ (0, 1)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianMechanism {
    epsilon: f64,
    delta: f64,
    sensitivity: Sensitivity,
    noise: Gaussian,
}

impl GaussianMechanism {
    /// Creates the mechanism for `(epsilon, delta)`-DP.
    ///
    /// # Panics
    ///
    /// Panics unless `epsilon ∈ (0, 1)` and `delta ∈ (0, 1)`.
    pub fn new(epsilon: f64, delta: f64, sensitivity: Sensitivity) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "classic Gaussian calibration needs epsilon in (0, 1), got {epsilon}"
        );
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must lie in (0, 1), got {delta}"
        );
        let sigma = sensitivity.value() * (2.0 * (1.25 / delta).ln()).sqrt() / epsilon;
        Self {
            epsilon,
            delta,
            sensitivity,
            noise: Gaussian::new(0.0, sigma),
        }
    }

    /// The privacy parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The privacy parameter δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The calibrated noise standard deviation σ.
    pub fn sigma(&self) -> f64 {
        self.noise.sd()
    }
}

impl Mechanism for GaussianMechanism {
    fn answer<R: Rng + ?Sized>(&self, rng: &mut R, ans: f64) -> f64 {
        ans + self.noise.sample(rng)
    }

    fn noise_variance(&self) -> f64 {
        self.noise.variance()
    }
}

/// The ε-differentially-private geometric mechanism for integer counts:
/// adds two-sided geometric noise with `α = exp(−ε/Δ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricMechanism {
    epsilon: f64,
    sensitivity: Sensitivity,
    noise: TwoSidedGeometric,
}

impl GeometricMechanism {
    /// Creates the mechanism for privacy parameter `epsilon` and the given
    /// sensitivity.
    ///
    /// # Panics
    ///
    /// Panics unless `epsilon > 0` and finite.
    pub fn new(epsilon: f64, sensitivity: Sensitivity) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive and finite, got {epsilon}"
        );
        Self {
            epsilon,
            sensitivity,
            noise: TwoSidedGeometric::new((-epsilon / sensitivity.value()).exp()),
        }
    }

    /// The privacy parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Returns the noisy *integer* answer.
    pub fn answer_integer<R: Rng + ?Sized>(&self, rng: &mut R, ans: i64) -> i64 {
        ans + self.noise.sample(rng)
    }
}

impl Mechanism for GeometricMechanism {
    fn answer<R: Rng + ?Sized>(&self, rng: &mut R, ans: f64) -> f64 {
        ans + self.noise.sample(rng) as f64
    }

    fn noise_variance(&self) -> f64 {
        self.noise.variance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn laplace_scale_is_delta_over_epsilon() {
        // The paper's Table 1 settings: Δ = 2, ε ∈ {0.01, 0.1, 0.5} give
        // b ∈ {200, 20, 4}.
        for &(eps, b) in &[(0.01, 200.0), (0.1, 20.0), (0.5, 4.0)] {
            let m = LaplaceMechanism::new(eps, Sensitivity::count_query_batch(2));
            assert_close(m.scale(), b, 1e-12);
            assert_close(m.noise_variance(), 2.0 * b * b, 1e-9);
        }
    }

    #[test]
    fn laplace_from_scale_round_trips() {
        let m = LaplaceMechanism::from_scale(20.0);
        assert_close(m.scale(), 20.0, 1e-12);
    }

    #[test]
    fn laplace_answers_are_centered() {
        let mut rng = StdRng::seed_from_u64(31);
        let m = LaplaceMechanism::new(0.5, Sensitivity::count_query());
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| m.answer(&mut rng, 100.0)).sum::<f64>() / n as f64;
        assert_close(mean, 100.0, 0.1);
    }

    #[test]
    fn gaussian_sigma_matches_calibration() {
        let m = GaussianMechanism::new(0.5, 1e-5, Sensitivity::count_query());
        let expected = (2.0 * (1.25 / 1e-5f64).ln()).sqrt() / 0.5;
        assert_close(m.sigma(), expected, 1e-12);
        assert_close(m.noise_variance(), expected * expected, 1e-9);
    }

    #[test]
    fn geometric_answers_are_integers() {
        let mut rng = StdRng::seed_from_u64(37);
        let m = GeometricMechanism::new(0.1, Sensitivity::count_query());
        for _ in 0..100 {
            let a = m.answer(&mut rng, 50.0);
            assert_close(a.fract(), 0.0, 1e-12);
        }
    }

    #[test]
    fn geometric_variance_matches_closed_form() {
        let eps = 0.2;
        let m = GeometricMechanism::new(eps, Sensitivity::count_query());
        let alpha: f64 = (-eps).exp();
        assert_close(
            m.noise_variance(),
            2.0 * alpha / ((1.0 - alpha) * (1.0 - alpha)),
            1e-9,
        );
    }

    #[test]
    fn epsilon_histogram_indistinguishability_monte_carlo() {
        // Weak empirical DP check for the geometric mechanism: for
        // neighbouring answers 10 and 11, the probability of every output
        // bucket must differ by at most e^ε (up to sampling error).
        let mut rng = StdRng::seed_from_u64(41);
        let eps = 0.5;
        let m = GeometricMechanism::new(eps, Sensitivity::count_query());
        let n = 200_000;
        let mut h1 = std::collections::HashMap::new();
        let mut h2 = std::collections::HashMap::new();
        for _ in 0..n {
            *h1.entry(m.answer_integer(&mut rng, 10)).or_insert(0u64) += 1;
            *h2.entry(m.answer_integer(&mut rng, 11)).or_insert(0u64) += 1;
        }
        let bound = eps.exp() * 1.25; // slack for Monte-Carlo error
        for (k, &c1) in &h1 {
            if c1 < 500 {
                continue; // skip noisy buckets
            }
            let c2 = *h2.get(k).unwrap_or(&0);
            if c2 < 500 {
                continue;
            }
            let ratio = c1 as f64 / c2 as f64;
            assert!(
                ratio < bound && 1.0 / ratio < bound,
                "bucket {k}: ratio {ratio} exceeds e^eps"
            );
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn laplace_rejects_zero_epsilon() {
        LaplaceMechanism::new(0.0, Sensitivity::count_query());
    }

    #[test]
    #[should_panic(expected = "sensitivity must be positive")]
    fn sensitivity_rejects_zero() {
        Sensitivity::new(0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon in (0, 1)")]
    fn gaussian_rejects_large_epsilon() {
        GaussianMechanism::new(1.5, 1e-5, Sensitivity::count_query());
    }
}
