//! # rp-dp
//!
//! The output-perturbation (differential privacy) baseline of the
//! reconstruction-privacy workspace, reproducing Section 2 of
//! *Reconstruction Privacy: Enabling Statistical Learning* (EDBT 2015).
//!
//! The paper's first contribution is a quantitative condition under which
//! differentially-private count answers disclose sensitive information
//! through non-independent reasoning (NIR). This crate provides:
//!
//! * [`mechanism`] — the Laplace, Gaussian and geometric mechanisms with
//!   explicit sensitivity handling (the paper uses `Lap(b)` with `b = Δ/ε`,
//!   `Δ = 2` for its two-query attack), plus the Theorem-1-calibrated
//!   binomial mechanism of arXiv 1805.10559
//!   ([`mechanism::calibrated_binomial`]) used as the head-to-head DP
//!   baseline in `rpctl bakeoff`.
//! * [`accountant`] — basic sequential composition accounting.
//! * [`attack`] — the two-query ratio attack of Equation 2, which reproduces
//!   Table 1 and exposes the Lemma-1 / Corollary-2 predictions.
//! * [`histogram`] — an ε-DP contingency-table release (`Lap(1/ε)` per
//!   cell), the output-perturbation *publishing* baseline that the paper's
//!   data-perturbation approach is compared against.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accountant;
pub mod attack;
pub mod histogram;
pub mod mechanism;

pub use accountant::{BudgetExceeded, SequentialAccountant};
pub use attack::{AttackOutcome, MeanSe, RatioAttack};
pub use histogram::{BinomialHistogram, DpHistogram};
pub use mechanism::calibrated_binomial::{CalibratedBinomial, QuerySensitivity};
pub use mechanism::{
    GaussianMechanism, GeometricMechanism, LaplaceMechanism, Mechanism, Sensitivity,
};
