//! Differentially private histogram release — the output-perturbation
//! *publishing* baseline.
//!
//! The paper contrasts data perturbation (publish perturbed records,
//! reconstruct) with output perturbation (publish noisy query answers).
//! The standard DP way to support arbitrary conjunctive count queries is
//! to release the full contingency table over `NA × SA` with per-cell
//! noise (disjoint cells ⇒ sensitivity 1), and answer every query by
//! summing noisy cells. This module implements that release twice, over
//! the same exact-count and cell-walk machinery:
//!
//! * [`DpHistogram`] — `Lap(1/ε)` per cell, the classic ε-DP release;
//! * [`BinomialHistogram`] — centered `Binomial(N, p)` noise per cell
//!   with `N` calibrated to a target `(ε, δ)` by Theorem 1 of
//!   arXiv 1805.10559 (see
//!   [`calibrated_binomial`](crate::mechanism::calibrated_binomial)),
//!   the baseline `rpctl bakeoff` pits against SPS data perturbation.
//!
//! Both support the Section-2 observation that big noisy aggregates are
//! precise enough to disclose ratios.

use rand::Rng;
use rp_stats::dist::Laplace;
use rp_table::{AttrId, CountQuery, Table};

use crate::mechanism::calibrated_binomial::{CalibratedBinomial, QuerySensitivity};
use crate::mechanism::Mechanism;

/// Validates the released attribute set and materializes the *exact*
/// contingency table of `table` over `attrs` — the shared head of every
/// noisy release.
///
/// Single released attribute: the table's own histogram kernel (errors
/// cannot occur — the attribute is validated here and table codes are
/// domain-checked at construction). Several attributes: mixed-radix cell
/// indexes accumulated column by column, then one counting pass — no
/// per-row per-attribute table walk.
fn exact_cells(table: &Table, attrs: &[AttrId]) -> (Vec<usize>, Vec<f64>) {
    assert!(!attrs.is_empty(), "histogram needs at least one attribute");
    for (i, a) in attrs.iter().enumerate() {
        assert!(*a < table.schema().arity(), "attribute {a} out of range");
        assert!(!attrs[i + 1..].contains(a), "attribute {a} repeated");
    }
    let domain_sizes: Vec<usize> = attrs
        .iter()
        .map(|&a| table.schema().attribute(a).domain_size())
        .collect();
    let total_cells = domain_sizes
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .expect("cell count overflows");
    assert!(
        total_cells <= 1 << 28,
        "contingency table with {total_cells} cells is too large to release"
    );
    let mut cells = vec![0.0f64; total_cells];
    if let [attr] = attrs {
        let counts = table
            .histogram(*attr)
            .expect("released attribute was validated against the schema");
        for (cell, count) in cells.iter_mut().zip(counts) {
            *cell = count as f64;
        }
    } else {
        let mut indexes = vec![0usize; table.rows()];
        for (&a, &d) in attrs.iter().zip(&domain_sizes) {
            let column = table.column(a).codes();
            for (index, &code) in indexes.iter_mut().zip(column) {
                *index = *index * d + code as usize;
            }
        }
        for &index in &indexes {
            cells[index] += 1.0;
        }
    }
    (domain_sizes, cells)
}

/// Sums the noisy cells consistent with `query` and counts how many were
/// summed — the shared answering walk. Conditions on attributes outside
/// the released set panic.
fn sum_matching(
    attrs: &[AttrId],
    domain_sizes: &[usize],
    cells: &[f64],
    query: &CountQuery,
) -> (f64, usize) {
    // Wanted code per released attribute (None = sum over it).
    let mut wanted: Vec<Option<u32>> = vec![None; attrs.len()];
    for &(attr, term) in query.na_pattern().terms() {
        let pos = attrs
            .iter()
            .position(|&a| a == attr)
            .unwrap_or_else(|| panic!("attribute {attr} not in the released histogram"));
        if let rp_table::Term::Value(code) = term {
            wanted[pos] = Some(code);
        }
    }
    let sa_pos = attrs
        .iter()
        .position(|&a| a == query.sa_attr())
        .expect("SA attribute not in the released histogram");
    wanted[sa_pos] = Some(query.sa_value());

    // Sum over all cells consistent with `wanted` by a recursive
    // cross-product walk (depth = attrs.len(), small by construction).
    let mut total = 0.0;
    let mut summed = 0usize;
    fn walk(
        dims: &[usize],
        wanted: &[Option<u32>],
        cells: &[f64],
        depth: usize,
        base: usize,
        total: &mut f64,
        summed: &mut usize,
    ) {
        if depth == dims.len() {
            *total += cells[base];
            *summed += 1;
            return;
        }
        match wanted[depth] {
            Some(code) => walk(
                dims,
                wanted,
                cells,
                depth + 1,
                base * dims[depth] + code as usize,
                total,
                summed,
            ),
            None => {
                for v in 0..dims[depth] {
                    walk(
                        dims,
                        wanted,
                        cells,
                        depth + 1,
                        base * dims[depth] + v,
                        total,
                        summed,
                    );
                }
            }
        }
    }
    walk(domain_sizes, &wanted, cells, 0, 0, &mut total, &mut summed);
    (total, summed)
}

/// A noisy contingency table over a set of grouping attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct DpHistogram {
    attrs: Vec<AttrId>,
    domain_sizes: Vec<usize>,
    /// Noisy cell counts, row-major over the attribute domains.
    cells: Vec<f64>,
    epsilon: f64,
}

impl DpHistogram {
    /// Releases the histogram of `table` over `attrs` (which must include
    /// every attribute later queries will condition on — typically all
    /// `NA` attributes plus `SA`) with per-cell Laplace noise `Lap(1/ε)`.
    ///
    /// # Panics
    ///
    /// Panics if `attrs` is empty, repeats an attribute, exceeds the
    /// schema, or if `epsilon <= 0`; also if the cross-product of domains
    /// overflows `usize` or exceeds 2^28 cells (a releasable histogram
    /// must be materializable).
    pub fn release<R: Rng + ?Sized>(
        rng: &mut R,
        table: &Table,
        attrs: &[AttrId],
        epsilon: f64,
    ) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive"
        );
        let (domain_sizes, mut cells) = exact_cells(table, attrs);
        // One Laplace draw per cell; disjoint cells make the release ε-DP.
        let noise = Laplace::new(1.0 / epsilon);
        for c in &mut cells {
            *c += noise.sample(rng);
        }
        Self {
            attrs: attrs.to_vec(),
            domain_sizes,
            cells,
            epsilon,
        }
    }

    /// The privacy parameter the release was calibrated for.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.cells.len()
    }

    /// Answers a conjunctive count query by summing the matching noisy
    /// cells. Conditions on attributes outside the released set are
    /// rejected.
    ///
    /// Negative noisy sums are reported as-is (consumers may clamp); this
    /// matches the raw-release semantics the paper's Section 2 analyses.
    ///
    /// # Panics
    ///
    /// Panics if the query conditions on an attribute absent from the
    /// release.
    pub fn answer(&self, query: &CountQuery) -> f64 {
        sum_matching(&self.attrs, &self.domain_sizes, &self.cells, query).0
    }
}

/// A contingency table released under the calibrated binomial mechanism:
/// every cell carries one centered `s·(X − N·p)` draw, `X ~ Binomial(N, p)`,
/// with `N` the smallest trial count making the `d`-cell release
/// `(ε, δ)`-DP per Theorem 1 of arXiv 1805.10559.
///
/// This is the output-perturbation side of `rpctl bakeoff`: it answers the
/// same conjunctive count queries as a `QueryEngine` over an SPS release,
/// so per-query utility (bias, error, CI width) is directly comparable.
#[derive(Debug, Clone, PartialEq)]
pub struct BinomialHistogram {
    attrs: Vec<AttrId>,
    domain_sizes: Vec<usize>,
    cells: Vec<f64>,
    mechanism: CalibratedBinomial,
}

impl BinomialHistogram {
    /// Releases the histogram of `table` over `attrs` with per-cell
    /// binomial noise calibrated to `(target_epsilon, delta)` at success
    /// probability `p` and quantization scale `s = 1`. The calibration
    /// dimension `d` is the released cell count and the sensitivities are
    /// the histogram's `Δ₁ = Δ₂ = Δ∞ = 1`.
    ///
    /// # Panics
    ///
    /// Panics on the same structural errors as [`DpHistogram::release`],
    /// on invalid `(ε, δ, p)`, and when no feasible trial count exists
    /// for the target (see
    /// [`smallest_n`](crate::mechanism::calibrated_binomial::smallest_n)).
    pub fn release<R: Rng + ?Sized>(
        rng: &mut R,
        table: &Table,
        attrs: &[AttrId],
        target_epsilon: f64,
        delta: f64,
        p: f64,
    ) -> Self {
        let (domain_sizes, mut cells) = exact_cells(table, attrs);
        let mechanism = CalibratedBinomial::calibrate(
            target_epsilon,
            delta,
            p,
            1.0,
            cells.len() as u64,
            QuerySensitivity::histogram(),
        )
        .unwrap_or_else(|| {
            panic!(
                "no feasible binomial trial count for (epsilon = {target_epsilon}, \
                 delta = {delta}) over {} cells",
                cells.len()
            )
        });
        for c in &mut cells {
            *c += mechanism.sample_noise(rng);
        }
        Self {
            attrs: attrs.to_vec(),
            domain_sizes,
            cells,
            mechanism,
        }
    }

    /// The calibrated mechanism (trial count, achieved ε, per-cell noise
    /// variance `N·p·(1−p)`).
    pub fn mechanism(&self) -> &CalibratedBinomial {
        &self.mechanism
    }

    /// Number of cells (the calibration dimension `d`).
    pub fn cells(&self) -> usize {
        self.cells.len()
    }

    /// Answers a conjunctive count query by summing the matching noisy
    /// cells (same contract as [`DpHistogram::answer`]).
    ///
    /// # Panics
    ///
    /// Panics if the query conditions on an attribute absent from the
    /// release.
    pub fn answer(&self, query: &CountQuery) -> f64 {
        self.answer_detailed(query).0
    }

    /// [`Self::answer`] plus the number of noisy cells the answer summed —
    /// the answer's noise variance is `summed · N·p·(1−p)`, which the
    /// bake-off turns into a 95% confidence interval.
    pub fn answer_detailed(&self, query: &CountQuery) -> (f64, usize) {
        sum_matching(&self.attrs, &self.domain_sizes, &self.cells, query)
    }

    /// The noise variance of an answer that summed `summed` cells.
    pub fn answer_variance(&self, summed: usize) -> f64 {
        summed as f64 * self.mechanism.noise_variance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rp_table::{Attribute, Schema, TableBuilder};

    fn demo_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("G", ["a", "b"]),
            Attribute::new("J", ["x", "y", "z"]),
            Attribute::with_anonymous_domain("SA", 4),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..6000u32 {
            b.push_codes(&[i % 2, i % 3, i % 4]).unwrap();
        }
        b.build()
    }

    #[test]
    fn noisy_answers_track_truth_at_modest_epsilon() {
        let t = demo_table();
        let mut rng = StdRng::seed_from_u64(1);
        let hist = DpHistogram::release(&mut rng, &t, &[0, 1, 2], 1.0);
        assert_eq!(hist.cells(), 24);
        let q = CountQuery::new(vec![(0, 0)], 2, 0).expect("valid count query");
        let truth = q.answer(&t) as f64;
        let noisy = hist.answer(&q);
        // Summing 3 cells of Lap(1) noise: sd ≈ 2.4.
        assert!(
            (noisy - truth).abs() < 15.0,
            "noisy {noisy} too far from {truth}"
        );
    }

    #[test]
    fn marginal_query_sums_over_unconstrained_attributes() {
        let t = demo_table();
        let mut rng = StdRng::seed_from_u64(2);
        let hist = DpHistogram::release(&mut rng, &t, &[0, 1, 2], 5.0);
        // No NA condition: the SA marginal.
        let q = CountQuery::new(vec![], 2, 1).expect("valid count query");
        let truth = q.answer(&t) as f64;
        assert!((hist.answer(&q) - truth).abs() < 10.0);
    }

    #[test]
    fn answers_are_deterministic_after_release() {
        let t = demo_table();
        let mut rng = StdRng::seed_from_u64(3);
        let hist = DpHistogram::release(&mut rng, &t, &[0, 1, 2], 0.5);
        let q = CountQuery::new(vec![(1, 2)], 2, 3).expect("valid count query");
        assert_eq!(hist.answer(&q), hist.answer(&q), "the release is fixed");
    }

    #[test]
    fn large_scale_disclosure_through_released_histogram() {
        // Section 2 replayed against the histogram release: with big true
        // counts the ratio of two noisy sums pins down the confidence.
        let schema = Schema::new(vec![
            Attribute::new("G", ["a", "b"]),
            Attribute::with_anonymous_domain("SA", 2),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..50_000u32 {
            b.push_codes(&[0, u32::from(i % 10 < 8)]).unwrap();
        }
        let t = b.build();
        let mut rng = StdRng::seed_from_u64(4);
        let hist = DpHistogram::release(&mut rng, &t, &[0, 1], 0.1);
        let refined = hist.answer(&CountQuery::new(vec![(0, 0)], 1, 1).expect("valid count query"));
        let base =
            refined + hist.answer(&CountQuery::new(vec![(0, 0)], 1, 0).expect("valid count query"));
        let conf = refined / base;
        assert!((conf - 0.8).abs() < 0.01, "Conf' = {conf}");
    }

    #[test]
    fn binomial_release_calibrates_to_cell_count() {
        let t = demo_table();
        let mut rng = StdRng::seed_from_u64(7);
        let hist = BinomialHistogram::release(&mut rng, &t, &[0, 1, 2], 1.0, 1e-6, 0.5);
        assert_eq!(hist.cells(), 24);
        // d = 24 tightens the constraint over d = 4's 1611 trials.
        assert!(hist.mechanism().trials() > 1_611);
        assert!(hist.mechanism().epsilon() <= 1.0);
    }

    #[test]
    fn binomial_answers_track_truth_and_report_summed_cells() {
        let t = demo_table();
        let mut rng = StdRng::seed_from_u64(8);
        let hist = BinomialHistogram::release(&mut rng, &t, &[0, 1, 2], 1.0, 1e-6, 0.5);
        let q = CountQuery::new(vec![(0, 0)], 2, 0).expect("valid count query");
        let truth = q.answer(&t) as f64;
        let (noisy, summed) = hist.answer_detailed(&q);
        // G fixed, SA fixed, J free: 3 cells summed.
        assert_eq!(summed, 3);
        let sd = hist.answer_variance(summed).sqrt();
        assert!(
            (noisy - truth).abs() < 5.0 * sd,
            "noisy {noisy} too far from {truth} (sd {sd})"
        );
        assert_eq!(hist.answer(&q), noisy);
    }

    #[test]
    fn binomial_release_is_deterministic_after_release() {
        let t = demo_table();
        let mut rng = StdRng::seed_from_u64(9);
        let hist = BinomialHistogram::release(&mut rng, &t, &[0, 1, 2], 0.5, 1e-6, 0.5);
        let q = CountQuery::new(vec![(1, 1)], 2, 2).expect("valid count query");
        assert_eq!(hist.answer(&q), hist.answer(&q));
    }

    #[test]
    #[should_panic(expected = "not in the released histogram")]
    fn querying_unreleased_attribute_panics() {
        let t = demo_table();
        let mut rng = StdRng::seed_from_u64(5);
        let hist = DpHistogram::release(&mut rng, &t, &[0, 2], 1.0);
        hist.answer(&CountQuery::new(vec![(1, 0)], 2, 0).expect("valid count query"));
    }

    #[test]
    #[should_panic(expected = "attribute 0 repeated")]
    fn repeated_attribute_panics() {
        let t = demo_table();
        let mut rng = StdRng::seed_from_u64(6);
        DpHistogram::release(&mut rng, &t, &[0, 0], 1.0);
    }
}
