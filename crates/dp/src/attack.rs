//! The Section-2 NIR ratio attack against differentially-private count
//! answers.
//!
//! An adversary who wants to learn whether individual `t` has sensitive
//! value `sa` issues the two queries of Equation 2:
//!
//! * `Q1: NA = t.NA` with true answer `x`,
//! * `Q2: NA = t.NA ∧ SA = sa` with true answer `y`,
//!
//! receives noisy answers `X`, `Y`, and gauges the rule confidence `y/x` by
//! `Y/X`. This module simulates the attack (reproducing the paper's Table 1)
//! and reports the theoretical Lemma-1/Corollary-2 predictions next to the
//! empirical outcome.

use rand::Rng;
use rp_stats::ratio::{laplace_disclosure_indicator, ratio_moments, RatioMoments};
use rp_stats::summary::OnlineStats;
use rp_table::{CountQuery, Table};

use crate::mechanism::Mechanism;

/// A `(mean, standard error)` pair as reported in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanSe {
    /// Sample mean over the attack trials.
    pub mean: f64,
    /// Standard error of that mean.
    pub se: f64,
}

impl MeanSe {
    fn from_stats(stats: &OnlineStats) -> Self {
        Self {
            mean: stats.mean().unwrap_or(f64::NAN),
            se: stats.standard_error().unwrap_or(0.0),
        }
    }
}

/// Result of simulating the ratio attack for a fixed mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOutcome {
    /// True answer `x` of the base query `Q1`.
    pub base_answer: u64,
    /// True answer `y` of the refined query `Q2`.
    pub refined_answer: u64,
    /// True confidence `y/x`.
    pub true_confidence: f64,
    /// Number of noisy trials simulated.
    pub trials: usize,
    /// Mean/SE of the estimated confidence `Conf′ = Y/X`.
    pub confidence: MeanSe,
    /// Mean/SE of the relative error `|x − X| / x` of the base answer.
    pub base_relative_error: MeanSe,
    /// Mean/SE of the relative error `|y − Y| / y` of the refined answer.
    pub refined_relative_error: MeanSe,
}

/// The ratio attack bound to one refined count query.
///
/// The base query `Q1` is the query's `NA` pattern alone; the refined query
/// `Q2` adds the `SA` condition — exactly Equation 2 of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RatioAttack {
    query: CountQuery,
}

impl RatioAttack {
    /// Creates the attack for the given refined query.
    pub fn new(query: CountQuery) -> Self {
        Self { query }
    }

    /// The underlying refined query.
    pub fn query(&self) -> &CountQuery {
        &self.query
    }

    /// True answers `(x, y)` of `Q1`/`Q2` on the raw table.
    pub fn true_answers(&self, table: &Table) -> (u64, u64) {
        self.query.answer_with_support(table)
    }

    /// Lemma-1 predictions of `E[Y/X]` and `Var[Y/X]` for a mechanism's
    /// noise variance against this table.
    ///
    /// # Panics
    ///
    /// Panics if the base answer is zero (the lemma requires `x ≠ 0`).
    pub fn predicted_moments<M: Mechanism>(&self, table: &Table, mechanism: &M) -> RatioMoments {
        let (x, y) = self.true_answers(table);
        ratio_moments(x as f64, y as f64, mechanism.noise_variance())
    }

    /// The Corollary-2 disclosure indicator `2(b/x)²` for a Laplace scale
    /// `b` against this table.
    ///
    /// # Panics
    ///
    /// Panics if the base answer is zero.
    pub fn disclosure_indicator(&self, table: &Table, laplace_scale: f64) -> f64 {
        let (x, _) = self.true_answers(table);
        laplace_disclosure_indicator(laplace_scale, x as f64)
    }

    /// Simulates `trials` independent pairs of noisy answers and aggregates
    /// the confidence estimate and per-query relative errors (the paper's
    /// Table 1 with `trials = 10`).
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or if either true answer is zero (the paper's
    /// relative-error and confidence measures are undefined there).
    pub fn run<M: Mechanism, R: Rng + ?Sized>(
        &self,
        table: &Table,
        mechanism: &M,
        trials: usize,
        rng: &mut R,
    ) -> AttackOutcome {
        assert!(trials > 0, "at least one trial is required");
        let (x, y) = self.true_answers(table);
        assert!(x > 0, "base query answer is zero; the attack is undefined");
        assert!(
            y > 0,
            "refined query answer is zero; the attack is undefined"
        );
        let mut conf = OnlineStats::new();
        let mut base_err = OnlineStats::new();
        let mut refined_err = OnlineStats::new();
        for _ in 0..trials {
            let noisy_x = mechanism.answer(rng, x as f64);
            let noisy_y = mechanism.answer(rng, y as f64);
            conf.push(noisy_y / noisy_x);
            base_err.push((x as f64 - noisy_x).abs() / x as f64);
            refined_err.push((y as f64 - noisy_y).abs() / y as f64);
        }
        AttackOutcome {
            base_answer: x,
            refined_answer: y,
            true_confidence: y as f64 / x as f64,
            trials,
            confidence: MeanSe::from_stats(&conf),
            base_relative_error: MeanSe::from_stats(&base_err),
            refined_relative_error: MeanSe::from_stats(&refined_err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{LaplaceMechanism, Sensitivity};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rp_table::{Attribute, Schema, TableBuilder};

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    /// 100 male engineers, 80 of whom have the flu: Conf = 0.8.
    fn demo_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("Gender", ["male", "female"]),
            Attribute::new("Job", ["eng", "doc"]),
            Attribute::new("Disease", ["flu", "hiv", "bc"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..100 {
            let disease = if i < 80 { "flu" } else { "hiv" };
            b.push_values(&["male", "eng", disease]).unwrap();
        }
        for _ in 0..50 {
            b.push_values(&["female", "doc", "bc"]).unwrap();
        }
        b.build()
    }

    #[test]
    fn true_answers_split_base_and_refined() {
        let t = demo_table();
        let attack = RatioAttack::new(
            CountQuery::new(vec![(0, 0), (1, 0)], 2, 0).expect("valid count query"),
        );
        let (x, y) = attack.true_answers(&t);
        assert_eq!(x, 100);
        assert_eq!(y, 80);
    }

    #[test]
    fn small_noise_recovers_confidence() {
        let t = demo_table();
        let attack = RatioAttack::new(
            CountQuery::new(vec![(0, 0), (1, 0)], 2, 0).expect("valid count query"),
        );
        let mech = LaplaceMechanism::from_scale(0.5);
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = attack.run(&t, &mech, 400, &mut rng);
        assert_close(outcome.true_confidence, 0.8, 1e-12);
        assert_close(outcome.confidence.mean, 0.8, 0.01);
        assert!(outcome.base_relative_error.mean < 0.02);
    }

    #[test]
    fn large_noise_destroys_confidence_estimate() {
        let t = demo_table();
        let attack = RatioAttack::new(
            CountQuery::new(vec![(0, 0), (1, 0)], 2, 0).expect("valid count query"),
        );
        // b = 200 against x = 100: indicator 2(b/x)² = 8, hopeless.
        let mech = LaplaceMechanism::new(0.01, Sensitivity::count_query_batch(2));
        let mut rng = StdRng::seed_from_u64(7);
        let outcome = attack.run(&t, &mech, 200, &mut rng);
        assert!(
            outcome.base_relative_error.mean > 0.5,
            "relative error {} should be large at b = 200",
            outcome.base_relative_error.mean
        );
        assert_close(attack.disclosure_indicator(&t, 200.0), 8.0, 1e-9);
    }

    #[test]
    fn predicted_moments_use_mechanism_variance() {
        let t = demo_table();
        let attack = RatioAttack::new(
            CountQuery::new(vec![(0, 0), (1, 0)], 2, 0).expect("valid count query"),
        );
        let mech = LaplaceMechanism::from_scale(4.0);
        let m = attack.predicted_moments(&t, &mech);
        let expected = ratio_moments(100.0, 80.0, 32.0);
        assert_eq!(m, expected);
    }

    #[test]
    fn deterministic_under_seed() {
        let t = demo_table();
        let attack = RatioAttack::new(
            CountQuery::new(vec![(0, 0), (1, 0)], 2, 0).expect("valid count query"),
        );
        let mech = LaplaceMechanism::from_scale(10.0);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            attack.run(&t, &mech, 10, &mut rng)
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    #[should_panic(expected = "refined query answer is zero")]
    fn zero_refined_answer_panics() {
        let t = demo_table();
        // male engineers with breast cancer: none.
        let attack = RatioAttack::new(
            CountQuery::new(vec![(0, 0), (1, 0)], 2, 2).expect("valid count query"),
        );
        let mech = LaplaceMechanism::from_scale(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        attack.run(&t, &mech, 5, &mut rng);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let t = demo_table();
        let attack = RatioAttack::new(
            CountQuery::new(vec![(0, 0), (1, 0)], 2, 0).expect("valid count query"),
        );
        let mech = LaplaceMechanism::from_scale(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        attack.run(&t, &mech, 0, &mut rng);
    }
}
