//! A simple sequential-composition privacy accountant.
//!
//! The paper's Example 1 folds the two count queries into a sensitivity of
//! `Δ = 2`; an equivalent accounting view is that each query is answered at
//! `ε/2` and the budget composes additively. This module makes that view
//! explicit so experiments can track cumulative spend.

/// Tracks cumulative `(ε, δ)` privacy spend under basic sequential
/// composition.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SequentialAccountant {
    epsilon_spent: f64,
    delta_spent: f64,
    epsilon_budget: Option<f64>,
}

/// Error returned when a spend would exceed the configured ε budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetExceeded {
    /// Budget configured at construction.
    pub budget: f64,
    /// Spend that was attempted (cumulative).
    pub attempted: f64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "privacy budget exceeded: attempted cumulative epsilon {} > budget {}",
            self.attempted, self.budget
        )
    }
}

impl std::error::Error for BudgetExceeded {}

impl SequentialAccountant {
    /// Creates an accountant with no budget cap.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Creates an accountant that rejects spends beyond `epsilon_budget`.
    ///
    /// # Panics
    ///
    /// Panics unless `epsilon_budget > 0`.
    pub fn with_budget(epsilon_budget: f64) -> Self {
        assert!(
            epsilon_budget > 0.0,
            "epsilon budget must be positive, got {epsilon_budget}"
        );
        Self {
            epsilon_budget: Some(epsilon_budget),
            ..Self::default()
        }
    }

    /// Records the release of one `(epsilon, delta)`-DP answer.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] (leaving the state unchanged) if a budget
    /// is configured and would be exceeded.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `epsilon` or negative `delta`.
    pub fn spend(&mut self, epsilon: f64, delta: f64) -> Result<(), BudgetExceeded> {
        assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
        assert!(delta >= 0.0, "delta must be non-negative, got {delta}");
        let attempted = self.epsilon_spent + epsilon;
        if let Some(budget) = self.epsilon_budget {
            if attempted > budget + 1e-12 {
                return Err(BudgetExceeded { budget, attempted });
            }
        }
        self.epsilon_spent = attempted;
        self.delta_spent += delta;
        Ok(())
    }

    /// Cumulative ε spent so far.
    pub fn epsilon_spent(&self) -> f64 {
        self.epsilon_spent
    }

    /// Cumulative δ spent so far.
    pub fn delta_spent(&self) -> f64 {
        self.delta_spent
    }

    /// Remaining ε under the budget; `None` when unbounded.
    pub fn remaining(&self) -> Option<f64> {
        self.epsilon_budget
            .map(|b| (b - self.epsilon_spent).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_accumulates() {
        let mut a = SequentialAccountant::unbounded();
        a.spend(0.1, 0.0).unwrap();
        a.spend(0.4, 1e-6).unwrap();
        assert!((a.epsilon_spent() - 0.5).abs() < 1e-12);
        assert!((a.delta_spent() - 1e-6).abs() < 1e-18);
        assert_eq!(a.remaining(), None);
    }

    #[test]
    fn budget_enforced_and_state_preserved_on_failure() {
        let mut a = SequentialAccountant::with_budget(1.0);
        a.spend(0.6, 0.0).unwrap();
        let err = a.spend(0.5, 0.0).unwrap_err();
        assert!((err.attempted - 1.1).abs() < 1e-12);
        assert!(
            (a.epsilon_spent() - 0.6).abs() < 1e-12,
            "failed spend must not mutate"
        );
        a.spend(0.4, 0.0).unwrap();
        assert!((a.remaining().unwrap() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn exact_budget_boundary_allowed() {
        let mut a = SequentialAccountant::with_budget(0.3);
        a.spend(0.1, 0.0).unwrap();
        a.spend(0.2, 0.0).unwrap();
        assert!(a.spend(1e-6, 0.0).is_err());
    }

    #[test]
    fn error_display_mentions_numbers() {
        let e = BudgetExceeded {
            budget: 1.0,
            attempted: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("1.5") && msg.contains('1'));
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_spend_panics() {
        SequentialAccountant::unbounded().spend(0.0, 0.0).unwrap();
    }
}
