//! The calibrated binomial mechanism of Agarwal et al., *cpSGD*
//! (<https://arxiv.org/abs/1805.10559>), Theorem 1.
//!
//! The binomial mechanism answers a `d`-dimensional query by adding
//! `s · (X − N·p)` per coordinate, `X ~ Binomial(N, p)` — discrete,
//! bounded, symmetric-for-`p = ½` noise that (unlike Laplace/Gaussian)
//! is exactly representable in fixed-point pipelines. Theorem 1 gives
//! the `(ε, δ)` it achieves for a query with ℓ₁/ℓ₂/ℓ∞ sensitivities
//! `Δ₁, Δ₂, Δ∞`:
//!
//! ```text
//! ε =   Δ₂·√(2·ln(1.25/δ)) / (s·√(N·p·(1−p)))                      (first term)
//!     + (Δ₂·c_p·√(ln(10/δ)) + Δ₁·b_p) / (s·N·p·(1−p)·(1−δ/10))    (second term)
//!     + (⅔·Δ∞·ln(1.25/δ) + Δ∞·d_p·ln(20d/δ)·ln(10/δ)) / (s·N·p·(1−p))
//! ```
//!
//! with the paper's equation-17 / 12 / 16 constants
//!
//! ```text
//! b_p = ⅔·(p² + (1−p)²) + 1 − 2p
//! c_p = √2·(3p³ + 3(1−p)³ + 2p² + 2(1−p)²)
//! d_p = 4/3·(p² + (1−p)²)
//! ```
//!
//! valid whenever `N·p·(1−p) ≥ max(23·ln(10d/δ), 2Δ∞/s)` (the theorem's
//! side constraint), at expected squared error `d·s²·N·p·(1−p)`.
//!
//! [`smallest_n`] inverts the bound by binary search — the smallest trial
//! count whose calibrated ε is at or under a target — and
//! [`CalibratedBinomial`] packages the result as a [`Mechanism`] so the
//! bake-off harness can swap it in wherever Laplace noise is used today.

use rand::Rng;

use super::Mechanism;

/// `b_p` of equation 17: `⅔·(p² + (1−p)²) + 1 − 2p`.
pub fn b_p(p: f64) -> f64 {
    let q = 1.0 - p;
    (2.0 / 3.0) * (p * p + q * q) + 1.0 - 2.0 * p
}

/// `c_p` of equation 12: `√2·(3p³ + 3(1−p)³ + 2p² + 2(1−p)²)`.
pub fn c_p(p: f64) -> f64 {
    let q = 1.0 - p;
    std::f64::consts::SQRT_2 * (3.0 * p.powi(3) + 3.0 * q.powi(3) + 2.0 * p * p + 2.0 * q * q)
}

/// `d_p` of equation 16: `4/3·(p² + (1−p)²)`.
pub fn d_p(p: f64) -> f64 {
    let q = 1.0 - p;
    (4.0 / 3.0) * (p * p + q * q)
}

/// The sensitivities of the answered query class: worst-case ℓ₁, ℓ₂ and
/// ℓ∞ change of the `d`-dimensional answer vector when one record changes.
///
/// For a histogram release one record moves one cell by one, so
/// `Δ₁ = Δ₂ = Δ∞ = 1` ([`QuerySensitivity::histogram`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySensitivity {
    /// ℓ₁ sensitivity `Δ₁`.
    pub l1: f64,
    /// ℓ₂ sensitivity `Δ₂`.
    pub l2: f64,
    /// ℓ∞ sensitivity `Δ∞`.
    pub linf: f64,
}

impl QuerySensitivity {
    /// Sensitivities of a disjoint-cell histogram: `Δ₁ = Δ₂ = Δ∞ = 1`.
    pub fn histogram() -> Self {
        Self {
            l1: 1.0,
            l2: 1.0,
            linf: 1.0,
        }
    }
}

/// Theorem-1 ε for `N` trials at success probability `p`, failure budget
/// `δ`, quantization scale `s`, dimension `d` and the given sensitivities.
///
/// The returned value is only a valid DP guarantee when
/// [`delta_constraint`] holds for the same parameters.
///
/// # Panics
///
/// Panics unless `N ≥ 1`, `p ∈ (0, 1)`, `δ ∈ (0, 1)`, `s > 0`, `d ≥ 1`
/// and every sensitivity is positive.
pub fn epsilon(n: u64, p: f64, delta: f64, s: f64, d: u64, sens: QuerySensitivity) -> f64 {
    validate(n, p, delta, s, d, sens);
    let npq = n as f64 * p * (1.0 - p);
    let first = sens.l2 * (2.0 * (1.25 / delta).ln()).sqrt() / (s * npq.sqrt());
    let second = (sens.l2 * c_p(p) * (10.0 / delta).ln().sqrt() + sens.l1 * b_p(p))
        / (s * npq * (1.0 - delta / 10.0));
    let third = ((2.0 / 3.0) * sens.linf * (1.25 / delta).ln()
        + sens.linf * d_p(p) * (20.0 * d as f64 / delta).ln() * (10.0 / delta).ln())
        / (s * npq);
    first + second + third
}

/// Theorem 1's side constraint: `N·p·(1−p) ≥ max(23·ln(10d/δ), 2Δ∞/s)`.
/// The ε of [`epsilon`] is only a guarantee when this holds.
pub fn delta_constraint(n: u64, p: f64, delta: f64, s: f64, d: u64, linf: f64) -> bool {
    let npq = n as f64 * p * (1.0 - p);
    npq >= (23.0 * (10.0 * d as f64 / delta).ln()).max(2.0 * linf / s)
}

/// Theorem 1's expected squared error of the full `d`-dimensional answer:
/// `d·s²·N·p·(1−p)` (each coordinate carries variance `s²·N·p·(1−p)`).
pub fn mechanism_error(n: u64, p: f64, s: f64, d: u64) -> f64 {
    d as f64 * s * s * n as f64 * p * (1.0 - p)
}

/// The smallest `N` whose Theorem-1 ε is at most `target_epsilon` *and*
/// that satisfies the side constraint, by binary search (both the
/// constraint and ε are monotone in `N`). `None` if no `N ≤ 2⁵³`
/// qualifies (ε shrinks like `1/√N`, so in practice this means the
/// target is unreachably small for `f64`).
///
/// # Panics
///
/// Panics unless `target_epsilon > 0` and the shared parameters pass the
/// [`epsilon`] validation.
pub fn smallest_n(
    target_epsilon: f64,
    p: f64,
    delta: f64,
    s: f64,
    d: u64,
    sens: QuerySensitivity,
) -> Option<u64> {
    assert!(
        target_epsilon > 0.0 && target_epsilon.is_finite(),
        "target epsilon must be positive and finite, got {target_epsilon}"
    );
    let fits = |n: u64| {
        delta_constraint(n, p, delta, s, d, sens.linf)
            && epsilon(n, p, delta, s, d, sens) <= target_epsilon
    };
    let (mut lo, mut hi) = (1u64, 1u64 << 53);
    if !fits(hi) {
        return None;
    }
    // Invariant: fits(hi), !fits(lo - 1); shrink until lo == hi.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// A binomial mechanism calibrated to a target `(ε, δ)`: per answered
/// coordinate it adds `s·(X − N·p)`, `X ~ Binomial(N, p)`, with `N`
/// chosen by [`smallest_n`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibratedBinomial {
    n: u64,
    p: f64,
    s: f64,
    epsilon: f64,
    delta: f64,
}

impl CalibratedBinomial {
    /// Calibrates the mechanism: the smallest `N` making a `d`-dimensional
    /// release with the given sensitivities `(target_epsilon, delta)`-DP at
    /// success probability `p` and scale `s`.
    ///
    /// Returns `None` when no feasible `N` exists (see [`smallest_n`]).
    pub fn calibrate(
        target_epsilon: f64,
        delta: f64,
        p: f64,
        s: f64,
        d: u64,
        sens: QuerySensitivity,
    ) -> Option<Self> {
        let n = smallest_n(target_epsilon, p, delta, s, d, sens)?;
        Some(Self {
            n,
            p,
            s,
            epsilon: epsilon(n, p, delta, s, d, sens),
            delta,
        })
    }

    /// The calibrated trial count `N`.
    pub fn trials(&self) -> u64 {
        self.n
    }

    /// The success probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The quantization scale `s`.
    pub fn scale(&self) -> f64 {
        self.s
    }

    /// The achieved ε (at most the calibration target, by construction).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The failure budget δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// One centered noise draw `s·(X − N·p)`.
    pub fn sample_noise<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = rp_stats::sampling::sample_binomial(rng, self.n, self.p);
        self.s * (x as f64 - self.n as f64 * self.p)
    }
}

impl Mechanism for CalibratedBinomial {
    fn answer<R: Rng + ?Sized>(&self, rng: &mut R, ans: f64) -> f64 {
        ans + self.sample_noise(rng)
    }

    fn noise_variance(&self) -> f64 {
        self.s * self.s * self.n as f64 * self.p * (1.0 - self.p)
    }
}

fn validate(n: u64, p: f64, delta: f64, s: f64, d: u64, sens: QuerySensitivity) {
    assert!(n >= 1, "trial count must be at least 1");
    assert!(p > 0.0 && p < 1.0, "p must lie in (0, 1), got {p}");
    assert!(
        delta > 0.0 && delta < 1.0,
        "delta must lie in (0, 1), got {delta}"
    );
    assert!(s > 0.0 && s.is_finite(), "scale must be positive, got {s}");
    assert!(d >= 1, "dimension must be at least 1");
    assert!(
        sens.l1 > 0.0 && sens.l2 > 0.0 && sens.linf > 0.0,
        "sensitivities must be positive, got {sens:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(actual: f64, expected: f64) {
        assert!(
            (actual - expected).abs() <= 1e-12 * expected.abs().max(1.0),
            "expected {expected}, got {actual}"
        );
    }

    #[test]
    fn constants_match_reference_implementation() {
        // Golden values from the paper authors' reference calculation
        // (binomial_fixed_p.py) at p = 0.5 and p = 0.3.
        assert_close(b_p(0.5), 0.333_333_333_333_333_26);
        assert_close(c_p(0.5), 2.474_873_734_152_916_3);
        assert_close(d_p(0.5), 0.666_666_666_666_666_6);
        assert_close(b_p(0.3), 0.786_666_666_666_666_7);
        assert_close(c_p(0.3), 3.210_264_786_586_925_4);
        assert_close(d_p(0.3), 0.773_333_333_333_333_2);
    }

    #[test]
    fn epsilon_matches_reference_implementation() {
        let h = QuerySensitivity::histogram();
        assert_close(
            epsilon(2_000, 0.5, 1e-6, 1.0, 4, h),
            0.667_305_977_460_797_5,
        );
        assert_close(
            epsilon(10_000, 0.5, 1e-6, 1.0, 4, h),
            0.192_043_315_431_627_73,
        );
        assert_close(
            epsilon(100_000, 0.5, 1e-9, 1.0, 256, h),
            0.059_951_272_491_227_656,
        );
        // Non-histogram sensitivities exercise every Δ position.
        let sens = QuerySensitivity {
            l1: 2.0,
            l2: std::f64::consts::SQRT_2,
            linf: 1.0,
        };
        assert_close(
            epsilon(5_000, 0.3, 1e-8, 2.0, 16, sens),
            0.334_357_757_703_016_84,
        );
    }

    #[test]
    fn smallest_n_matches_reference_implementation() {
        let h = QuerySensitivity::histogram();
        // ε = 1 at d = 4 is constraint-bound: N = 1611 is the first N
        // satisfying N/4 ≥ 23·ln(4·10⁷), not the first with ε ≤ 1.
        assert_eq!(smallest_n(1.0, 0.5, 1e-6, 1.0, 4, h), Some(1_611));
        assert_eq!(smallest_n(0.5, 0.5, 1e-6, 1.0, 4, h), Some(2_854));
        assert_eq!(smallest_n(1.0, 0.5, 1e-6, 1.0, 256, h), Some(1_994));
        assert_eq!(smallest_n(0.1, 0.3, 1e-8, 1.0, 16, h), Some(49_403));
    }

    #[test]
    fn smallest_n_result_is_tight_and_feasible() {
        let h = QuerySensitivity::histogram();
        for &(target, p, delta, d) in &[(0.5, 0.5, 1e-6, 4u64), (0.25, 0.4, 1e-7, 32)] {
            let n = smallest_n(target, p, delta, 1.0, d, h).unwrap();
            assert!(delta_constraint(n, p, delta, 1.0, d, h.linf));
            assert!(epsilon(n, p, delta, 1.0, d, h) <= target);
            // One fewer trial either breaks the constraint or misses ε.
            assert!(
                !delta_constraint(n - 1, p, delta, 1.0, d, h.linf)
                    || epsilon(n - 1, p, delta, 1.0, d, h) > target,
                "N = {n} is not minimal"
            );
        }
    }

    #[test]
    fn delta_constraint_matches_reference() {
        // 1611·0.25 = 402.75 ≥ 23·ln(4·10⁷) ≈ 402.69; 1610 fails.
        assert!(delta_constraint(1_611, 0.5, 1e-6, 1.0, 4, 1.0));
        assert!(!delta_constraint(1_610, 0.5, 1e-6, 1.0, 4, 1.0));
        // The 2Δ∞/s arm takes over for tiny scales.
        assert!(!delta_constraint(1_611, 0.5, 1e-6, 1e-3, 4, 1.0));
    }

    #[test]
    fn error_is_d_s2_npq() {
        assert_close(mechanism_error(2_000, 0.5, 1.0, 4), 2_000.0);
        assert_close(mechanism_error(5_000, 0.3, 2.0, 16), 67_200.0);
    }

    #[test]
    fn calibrated_mechanism_is_centered_with_advertised_variance() {
        let m =
            CalibratedBinomial::calibrate(1.0, 1e-6, 0.5, 1.0, 4, QuerySensitivity::histogram())
                .unwrap();
        assert_eq!(m.trials(), 1_611);
        assert!(m.epsilon() <= 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| m.sample_noise(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let sd = m.noise_variance().sqrt();
        assert!(mean.abs() < 4.0 * sd / (n as f64).sqrt(), "mean {mean}");
        assert!(
            (var / m.noise_variance() - 1.0).abs() < 0.05,
            "variance {var} vs advertised {}",
            m.noise_variance()
        );
    }

    #[test]
    fn calibration_is_infeasible_for_absurd_targets() {
        // ε ~ 1/√N can never reach 1e-10 before N overflows the search
        // range at this δ.
        assert_eq!(
            CalibratedBinomial::calibrate(1e-10, 1e-6, 0.5, 1e-9, 4, QuerySensitivity::histogram()),
            None
        );
    }

    #[test]
    #[should_panic(expected = "p must lie in (0, 1)")]
    fn epsilon_rejects_degenerate_p() {
        epsilon(100, 1.0, 1e-6, 1.0, 4, QuerySensitivity::histogram());
    }
}
