//! Synthetic CENSUS data set.
//!
//! The paper's second data set is a 500K-record extract of US census
//! microdata (previously used by the Anatomy and small-domain-randomization
//! papers) with attributes Age (77), Gender (2), Education (14),
//! Marital (6), Race (9) and sensitive Occupation (50 roughly balanced
//! values). The file is not publicly distributed, so this generator
//! synthesizes the same shape (DESIGN.md §4):
//!
//! * Occupation depends on Gender, Education, Marital and Race — each value
//!   of those attributes carries a *distinct* occupation profile — but is
//!   independent of Age. The χ²-merge of Section 3.4 therefore reproduces
//!   Table 5: Age collapses 77 → 1 while the other domains survive, giving
//!   2·14·6·9 = 1512 generalized personal groups;
//! * at 300K+ rows, all 77·2·14·6·9 = 116,424 NA combinations are covered,
//!   matching Table 5's `|G|` before aggregation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_stats::sampling::sample_weighted;
use rp_table::{Attribute, Schema, Table, TableBuilder};

/// Full CENSUS size used by the paper (five samples 100K..500K).
pub const CENSUS_MAX_ROWS: usize = 500_000;

/// Domain sizes.
pub mod domain {
    /// Age values.
    pub const AGE: usize = 77;
    /// Gender values.
    pub const GENDER: usize = 2;
    /// Education values.
    pub const EDUCATION: usize = 14;
    /// Marital-status values.
    pub const MARITAL: usize = 6;
    /// Race values.
    pub const RACE: usize = 9;
    /// Occupation values (the sensitive attribute).
    pub const OCCUPATION: usize = 50;
    /// Number of NA combinations.
    pub const NA_COMBINATIONS: usize = AGE * GENDER * EDUCATION * MARITAL * RACE;
}

/// Attribute indices of the generated table.
pub mod attr {
    /// Age (77 values, merged away by generalization).
    pub const AGE: usize = 0;
    /// Gender.
    pub const GENDER: usize = 1;
    /// Education.
    pub const EDUCATION: usize = 2;
    /// Marital status.
    pub const MARITAL: usize = 3;
    /// Race.
    pub const RACE: usize = 4;
    /// Occupation — the sensitive attribute.
    pub const OCCUPATION: usize = 5;
}

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CensusConfig {
    /// Number of records (the paper samples 100K–500K).
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CensusConfig {
    fn default() -> Self {
        Self {
            rows: 300_000,
            seed: 0x5EED_CE25,
        }
    }
}

/// Logit amplitude of the per-value occupation profiles. Large enough that
/// (a) every pair of values of an influencing attribute is distinguishable
/// by the χ² test at the paper's sample sizes, and (b) the conditional
/// occupation distributions are concentrated enough (group-level max
/// frequency ≈ 0.2–0.4) that the Figure-4 violation pattern — few violating
/// groups covering many records — materializes as in the paper.
const PROFILE_AMPLITUDE: f64 = 1.5;

/// The CENSUS schema with anonymous domain values.
pub fn schema() -> Schema {
    Schema::new(vec![
        Attribute::with_anonymous_domain("Age", domain::AGE),
        Attribute::with_anonymous_domain("Gender", domain::GENDER),
        Attribute::with_anonymous_domain("Education", domain::EDUCATION),
        Attribute::with_anonymous_domain("Marital", domain::MARITAL),
        Attribute::with_anonymous_domain("Race", domain::RACE),
        Attribute::with_anonymous_domain("Occupation", domain::OCCUPATION),
    ])
}

/// Deterministic pseudo-random profile entry for (attribute tag, value,
/// occupation): a fixed hash mapped into [−1, 1]. Age has no profile, which
/// is exactly what lets it merge away.
fn profile(tag: u64, value: usize, occupation: usize) -> f64 {
    // SplitMix64 on a composed key: cheap, stateless and stable across runs.
    let mut z = tag
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((value as u64) << 24)
        .wrapping_add(occupation as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as f64 / u64::MAX as f64) * 2.0 - 1.0
}

/// Profile centered across the attribute's domain: subtracting the
/// per-occupation mean removes systematic occupation bias, keeping the
/// marginal occupation distribution roughly balanced while preserving the
/// *differences* between attribute values that the χ² test must detect.
fn centered_profile(tag: u64, n_values: usize, value: usize, occupation: usize) -> f64 {
    let mean: f64 = (0..n_values)
        .map(|v| profile(tag, v, occupation))
        .sum::<f64>()
        / n_values as f64;
    profile(tag, value, occupation) - mean
}

/// Occupation distribution conditioned on (gender, education, marital,
/// race): softmax over summed per-attribute centered profiles. Age is
/// absent by design.
fn occupation_distribution(
    gender: usize,
    education: usize,
    marital: usize,
    race: usize,
) -> Vec<f64> {
    let mut weights: Vec<f64> = (0..domain::OCCUPATION)
        .map(|occ| {
            let logit = PROFILE_AMPLITUDE
                * (centered_profile(1, domain::GENDER, gender, occ)
                    + centered_profile(2, domain::EDUCATION, education, occ)
                    + centered_profile(3, domain::MARITAL, marital, occ)
                    + centered_profile(4, domain::RACE, race, occ));
            logit.exp()
        })
        .collect();
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    weights
}

/// Marginal of a NA attribute: mildly skewed but bounded away from zero so
/// every value keeps χ² power (min weight ≈ 0.6 / n).
fn na_marginal(n: usize) -> Vec<f64> {
    let raw: Vec<f64> = (0..n)
        .map(|i| 0.6 + 0.8 * ((i * 7 + 3) % n) as f64 / n as f64)
        .collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// Generates the synthetic CENSUS table.
///
/// When `rows >= `[`domain::NA_COMBINATIONS`], all NA combinations are
/// seeded once (Table 5's `|G| = 116424` at 300K); below that the groups
/// emerge from sampling alone.
///
/// # Panics
///
/// Panics if `rows == 0`.
pub fn generate(config: CensusConfig) -> Table {
    assert!(config.rows > 0, "need at least one row");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = TableBuilder::with_capacity(schema(), config.rows);

    // Cache the conditional occupation distributions: 2·14·6·9 = 1512
    // distinct profiles, reused by every record.
    let mut conditionals: Vec<Vec<f64>> =
        Vec::with_capacity(domain::GENDER * domain::EDUCATION * domain::MARITAL * domain::RACE);
    for gender in 0..domain::GENDER {
        for education in 0..domain::EDUCATION {
            for marital in 0..domain::MARITAL {
                for race in 0..domain::RACE {
                    conditionals.push(occupation_distribution(gender, education, marital, race));
                }
            }
        }
    }
    let cond_index = |gender: usize, education: usize, marital: usize, race: usize| {
        ((gender * domain::EDUCATION + education) * domain::MARITAL + marital) * domain::RACE + race
    };

    let push = |builder: &mut TableBuilder,
                rng: &mut StdRng,
                age: usize,
                gender: usize,
                education: usize,
                marital: usize,
                race: usize| {
        let occupation = sample_weighted(
            rng,
            &conditionals[cond_index(gender, education, marital, race)],
        );
        builder
            .push_codes(&[
                age as u32,
                gender as u32,
                education as u32,
                marital as u32,
                race as u32,
                occupation as u32,
            ])
            .expect("generator produces in-domain codes");
    };

    // Coverage seed when the sample is large enough to hold it.
    if config.rows >= domain::NA_COMBINATIONS {
        for age in 0..domain::AGE {
            for gender in 0..domain::GENDER {
                for education in 0..domain::EDUCATION {
                    for marital in 0..domain::MARITAL {
                        for race in 0..domain::RACE {
                            push(
                                &mut builder,
                                &mut rng,
                                age,
                                gender,
                                education,
                                marital,
                                race,
                            );
                        }
                    }
                }
            }
        }
    }

    // The bulk: independent draws from the marginals.
    let age_m = na_marginal(domain::AGE);
    let gender_m = na_marginal(domain::GENDER);
    let education_m = na_marginal(domain::EDUCATION);
    let marital_m = na_marginal(domain::MARITAL);
    let race_m = na_marginal(domain::RACE);
    while builder.rows() < config.rows {
        let age = sample_weighted(&mut rng, &age_m);
        let gender = sample_weighted(&mut rng, &gender_m);
        let education = sample_weighted(&mut rng, &education_m);
        let marital = sample_weighted(&mut rng, &marital_m);
        let race = sample_weighted(&mut rng, &race_m);
        push(
            &mut builder,
            &mut rng,
            age,
            gender,
            education,
            marital,
            race,
        );
    }

    builder.build()
}

/// Generates the paper's default 300K sample.
pub fn generate_default() -> Table {
    generate(CensusConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_count_and_schema() {
        let t = generate(CensusConfig {
            rows: 20_000,
            seed: 1,
        });
        assert_eq!(t.rows(), 20_000);
        assert_eq!(t.schema().arity(), 6);
        assert_eq!(t.schema().attribute(attr::AGE).domain_size(), 77);
        assert_eq!(t.schema().attribute(attr::OCCUPATION).domain_size(), 50);
    }

    #[test]
    fn occupation_roughly_balanced() {
        let t = generate(CensusConfig {
            rows: 100_000,
            seed: 2,
        });
        let hist = t.histogram(attr::OCCUPATION).unwrap();
        let min = *hist.iter().min().unwrap() as f64;
        let max = *hist.iter().max().unwrap() as f64;
        // "Balanced" in the paper's loose sense: within an order of
        // magnitude, no dominant value.
        assert!(max / min < 10.0, "occupation skew {min}..{max}");
        assert!(max / 100_000.0 < 0.10);
    }

    #[test]
    fn age_merges_away_under_generalization() {
        // Individual age pairs can produce the ~5% false rejection the χ²
        // significance permits, but the connected-component merge of
        // Section 3.4 must still collapse all 77 ages into one generalized
        // value (Table 5), while the influencing attributes survive intact.
        let t = generate(CensusConfig {
            rows: 150_000,
            seed: 3,
        });
        let spec = rp_core::groups::SaSpec::new(&t, attr::OCCUPATION);
        let g = rp_core::generalize::Generalization::fit(&t, &spec, 0.05);
        let sizes: Vec<usize> = g.attributes().iter().map(|a| a.new_domain_size()).collect();
        assert_eq!(
            sizes,
            vec![1, 2, 14, 6, 9],
            "Table 5 after-aggregation domains"
        );
    }

    #[test]
    fn education_values_have_distinct_impact() {
        let t = generate(CensusConfig {
            rows: 150_000,
            seed: 4,
        });
        let hist_for = |edu: u32| -> Vec<u64> {
            let mut h = vec![0u64; domain::OCCUPATION];
            for r in 0..t.rows() {
                if t.code(r, attr::EDUCATION) == edu {
                    h[t.code(r, attr::OCCUPATION) as usize] += 1;
                }
            }
            h
        };
        for (a, b) in [(0u32, 1u32), (3, 9), (12, 13)] {
            let res = rp_stats::binned_chi2_test(&hist_for(a), &hist_for(b), 0.05).unwrap();
            assert!(
                res.rejects_null,
                "education {a} vs {b} should differ: chi2 = {}",
                res.statistic
            );
        }
    }

    #[test]
    fn full_coverage_at_paper_size() {
        // 116,424 NA combinations at 150K would not fit; use a quick check
        // on the seeding rule instead of generating 300K here (the
        // experiment binary does that): rows >= combos implies coverage.
        let t = generate(CensusConfig {
            rows: domain::NA_COMBINATIONS,
            seed: 5,
        });
        let groups = rp_table::group_by_hash(&t, &[0, 1, 2, 3, 4]);
        assert_eq!(groups.len(), domain::NA_COMBINATIONS);
    }

    #[test]
    fn conditional_distributions_are_cached_consistently() {
        let d1 = occupation_distribution(0, 3, 2, 5);
        let d2 = occupation_distribution(0, 3, 2, 5);
        assert_eq!(d1, d2);
        assert!((d1.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let d3 = occupation_distribution(1, 3, 2, 5);
        assert_ne!(d1, d3, "different gender, different profile");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(CensusConfig {
            rows: 3000,
            seed: 7,
        });
        let b = generate(CensusConfig {
            rows: 3000,
            seed: 7,
        });
        assert_eq!(a, b);
    }

    #[test]
    fn marginals_are_positive_and_normalized() {
        for n in [2usize, 6, 9, 14, 77] {
            let m = na_marginal(n);
            assert_eq!(m.len(), n);
            assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(m.iter().all(|&w| w > 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_rejected() {
        generate(CensusConfig { rows: 0, seed: 1 });
    }
}
