//! The Section-6 count-query pool generator.
//!
//! The paper evaluates utility over 5,000 random queries of the form
//! `A1 = a1 ∧ ... ∧ Ad = ad ∧ SA = sa` with dimensionality `d ∈ {1, 2, 3}`
//! and selectivity `ans/|D| >= 0.1%`. Queries are drawn on the *original*
//! public-attribute values (simulating real-life questions), then rewritten
//! onto the generalized values the publication actually uses, and admitted
//! into the pool if the rewritten query is selective enough.

use rand::Rng;
use rp_core::generalize::Generalization;
use rp_core::groups::PersonalGroups;
use rp_table::{CountQuery, Schema};

/// Configuration of a query pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryPoolConfig {
    /// Number of queries to admit (the paper uses 5,000).
    pub pool_size: usize,
    /// Maximum dimensionality (the paper uses 3; `d` is drawn uniformly
    /// from `1..=max_dimensionality`).
    pub max_dimensionality: usize,
    /// Minimum selectivity `ans/|D|` (the paper uses 0.1%).
    pub min_selectivity: f64,
    /// Upper bound on candidate draws before giving up, expressed as a
    /// multiple of `pool_size`. Prevents an infinite loop when the
    /// selectivity threshold is unreachable.
    pub max_attempts_factor: usize,
}

impl Default for QueryPoolConfig {
    fn default() -> Self {
        Self {
            pool_size: 5_000,
            max_dimensionality: 3,
            min_selectivity: 0.001,
            max_attempts_factor: 400,
        }
    }
}

/// One admitted query with its exact answer on the generalized raw table.
#[derive(Debug, Clone, PartialEq)]
pub struct PooledQuery {
    /// The query, already rewritten onto generalized values.
    pub query: CountQuery,
    /// Exact answer `ans` on the generalized raw table.
    pub answer: u64,
    /// The dimensionality it was drawn with.
    pub dimensionality: usize,
}

/// A pool of selective count queries plus bookkeeping about the draw.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPool {
    /// The admitted queries.
    pub queries: Vec<PooledQuery>,
    /// Candidate queries drawn in total (admitted + rejected).
    pub attempts: usize,
}

impl QueryPool {
    /// Generates a pool against `groups` — the personal groups of the
    /// *generalized raw* table — using `original_schema` to draw original
    /// values and `generalization` to rewrite them.
    ///
    /// Exact answers are computed from the group histograms (sum over
    /// matching personal groups), which keeps 5,000-query pools cheap even
    /// on the 500K CENSUS sample.
    ///
    /// Returns a pool with fewer than `config.pool_size` queries if the
    /// attempt budget runs out.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_dimensionality` is zero or exceeds the number
    /// of public attributes, or if `config.pool_size == 0`.
    pub fn generate<R: Rng + ?Sized>(
        rng: &mut R,
        original_schema: &Schema,
        generalization: &Generalization,
        groups: &PersonalGroups,
        config: QueryPoolConfig,
    ) -> Self {
        assert!(config.pool_size > 0, "pool must have at least one query");
        let spec = groups.spec();
        let na = spec.na();
        assert!(
            config.max_dimensionality >= 1 && config.max_dimensionality <= na.len(),
            "dimensionality must lie in 1..={}, got {}",
            na.len(),
            config.max_dimensionality
        );
        let total_rows = groups.total_rows() as f64;
        let min_answer = (config.min_selectivity * total_rows).ceil() as u64;
        let mut queries = Vec::with_capacity(config.pool_size);
        let mut attempts = 0usize;
        let max_attempts = config.pool_size.saturating_mul(config.max_attempts_factor);
        while queries.len() < config.pool_size && attempts < max_attempts {
            attempts += 1;
            let d = rng.gen_range(1..=config.max_dimensionality);
            // d distinct public attributes.
            let mut attrs: Vec<usize> = na.to_vec();
            for i in 0..d {
                let j = rng.gen_range(i..attrs.len());
                attrs.swap(i, j);
            }
            attrs.truncate(d);
            // Original values, then rewrite to generalized codes.
            let conditions: Vec<(usize, u32)> = attrs
                .iter()
                .map(|&a| {
                    let domain = original_schema.attribute(a).domain_size() as u32;
                    let original = rng.gen_range(0..domain);
                    (a, generalization.translate(a, original))
                })
                .collect();
            let sa_value = rng.gen_range(0..spec.m() as u32);
            let query =
                CountQuery::new(conditions, spec.sa(), sa_value).expect("valid count query");
            // Exact answer from the generalized group histograms.
            let mut answer = 0u64;
            for g in groups.matching(query.na_pattern()) {
                answer += g.sa_hist[sa_value as usize];
            }
            if answer >= min_answer && answer > 0 {
                queries.push(PooledQuery {
                    query,
                    answer,
                    dimensionality: d,
                });
            }
        }
        Self { queries, attempts }
    }

    /// Number of admitted queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adult::{self, AdultConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rp_core::groups::SaSpec;
    use rp_table::Table;

    fn adult_fixture() -> (Table, Generalization, PersonalGroups) {
        let t = adult::generate(AdultConfig {
            rows: 20_000,
            seed: 11,
        });
        let spec = SaSpec::new(&t, adult::attr::INCOME);
        let g = Generalization::fit(&t, &spec, 0.05);
        let t2 = g.apply(&t);
        let spec2 = SaSpec::new(&t2, adult::attr::INCOME);
        let groups = PersonalGroups::build(&t2, spec2);
        (t, g, groups)
    }

    #[test]
    fn pool_respects_selectivity_and_size() {
        let (t, g, groups) = adult_fixture();
        let mut rng = StdRng::seed_from_u64(13);
        let config = QueryPoolConfig {
            pool_size: 200,
            ..QueryPoolConfig::default()
        };
        let pool = QueryPool::generate(&mut rng, t.schema(), &g, &groups, config);
        assert_eq!(pool.len(), 200);
        let min_answer = (0.001_f64 * 20_000.0).ceil() as u64;
        for pq in &pool.queries {
            assert!(pq.answer >= min_answer, "answer {} below floor", pq.answer);
            assert!((1..=3).contains(&pq.dimensionality));
            assert_eq!(pq.dimensionality, pq.query.dimensionality());
        }
    }

    #[test]
    fn answers_match_generalized_table_scan() {
        let (t, g, groups) = adult_fixture();
        let t2 = g.apply(&t);
        let mut rng = StdRng::seed_from_u64(17);
        let config = QueryPoolConfig {
            pool_size: 50,
            ..QueryPoolConfig::default()
        };
        let pool = QueryPool::generate(&mut rng, t.schema(), &g, &groups, config);
        for pq in &pool.queries {
            assert_eq!(
                pq.answer,
                pq.query.answer(&t2),
                "histogram vs scan mismatch"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (t, g, groups) = adult_fixture();
        let config = QueryPoolConfig {
            pool_size: 30,
            ..QueryPoolConfig::default()
        };
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            QueryPool::generate(&mut rng, t.schema(), &g, &groups, config)
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn attempt_budget_prevents_infinite_loops() {
        let (t, g, groups) = adult_fixture();
        let mut rng = StdRng::seed_from_u64(19);
        // Impossible selectivity: nothing qualifies, loop must stop.
        let config = QueryPoolConfig {
            pool_size: 10,
            min_selectivity: 0.99,
            max_attempts_factor: 5,
            ..QueryPoolConfig::default()
        };
        let pool = QueryPool::generate(&mut rng, t.schema(), &g, &groups, config);
        assert!(pool.is_empty());
        assert_eq!(pool.attempts, 50);
    }

    #[test]
    #[should_panic(expected = "dimensionality must lie in")]
    fn oversized_dimensionality_rejected() {
        let (t, g, groups) = adult_fixture();
        let mut rng = StdRng::seed_from_u64(23);
        let config = QueryPoolConfig {
            max_dimensionality: 10,
            ..QueryPoolConfig::default()
        };
        QueryPool::generate(&mut rng, t.schema(), &g, &groups, config);
    }
}
