//! Synthetic ADULT data set.
//!
//! The paper evaluates on the UCI ADULT extract (45,222 complete records;
//! attributes Education, Occupation, Race, Gender + sensitive Income).
//! We do not ship the UCI file; instead this generator synthesizes a table
//! with the same *shape* (see DESIGN.md §4):
//!
//! * the original domain sizes 16 / 14 / 5 / 2 and Income = {<=50K, >50K};
//! * an overall Income marginal calibrated to 75.22% / 24.78%;
//! * the Example-1 subpopulation embedded exactly: 501 records matching
//!   (Prof-school, Prof-specialty, White, Male), 420 of them >50K
//!   (confidence 83.83%);
//! * a latent-class conditional structure in which the 16 education values
//!   carry 7 distinct income profiles, the 14 occupations 4 profiles and
//!   the 5 races 2 profiles, so the χ²-merge of Section 3.4 reproduces
//!   Table 4's "after" domain sizes (7 / 4 / 2 / 2, hence 112 generalized
//!   personal groups);
//! * full coverage of all 16·14·5·2 = 2240 NA combinations, so `|G|`
//!   before aggregation matches Table 4.

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_stats::sampling::sample_weighted;
use rp_table::{Attribute, Schema, Table, TableBuilder};

/// Number of records in the ADULT extract used by the paper.
pub const ADULT_ROWS: usize = 45_222;

/// Attribute indices of the generated table.
pub mod attr {
    /// Education (16 values).
    pub const EDUCATION: usize = 0;
    /// Occupation (14 values).
    pub const OCCUPATION: usize = 1;
    /// Race (5 values).
    pub const RACE: usize = 2;
    /// Gender (2 values).
    pub const GENDER: usize = 3;
    /// Income — the sensitive attribute (2 values).
    pub const INCOME: usize = 4;
}

/// The 16 UCI education values.
pub const EDUCATION_VALUES: [&str; 16] = [
    "Preschool",
    "1st-4th",
    "5th-6th",
    "7th-8th",
    "9th",
    "10th",
    "11th",
    "12th",
    "HS-grad",
    "Some-college",
    "Assoc-acdm",
    "Assoc-voc",
    "Bachelors",
    "Masters",
    "Doctorate",
    "Prof-school",
];

/// Latent income-profile class of each education value (7 classes).
/// Prof-school sits alone so the embedded Example-1 subpopulation cannot
/// distort a within-class identity.
pub const EDUCATION_CLASS: [usize; 16] = [0, 0, 0, 1, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 5, 6];

/// Relative frequency of each education value (sums to 1; min ≈ 3% so every
/// pairwise χ² test retains power — the merge is by connected components, so
/// separating two classes requires *every* cross pair to reject).
const EDUCATION_MARGINAL: [f64; 16] = [
    0.032, 0.030, 0.030, 0.032, 0.030, 0.036, 0.045, 0.030, 0.235, 0.175, 0.032, 0.042, 0.120,
    0.063, 0.030, 0.038,
];

/// The 14 UCI occupation values.
pub const OCCUPATION_VALUES: [&str; 14] = [
    "Prof-specialty",
    "Exec-managerial",
    "Protective-serv",
    "Tech-support",
    "Sales",
    "Craft-repair",
    "Transport-moving",
    "Adm-clerical",
    "Armed-Forces",
    "Machine-op-inspct",
    "Farming-fishing",
    "Other-service",
    "Handlers-cleaners",
    "Priv-house-serv",
];

/// Latent income-profile class of each occupation (4 classes);
/// Prof-specialty sits alone for the same reason as Prof-school.
pub const OCCUPATION_CLASS: [usize; 14] = [0, 1, 1, 1, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3];

const OCCUPATION_MARGINAL: [f64; 14] = [
    0.126, 0.120, 0.030, 0.032, 0.110, 0.120, 0.048, 0.112, 0.028, 0.062, 0.032, 0.096, 0.042,
    0.042,
];

/// The 5 UCI race values.
pub const RACE_VALUES: [&str; 5] = [
    "White",
    "Asian-Pac-Islander",
    "Black",
    "Amer-Indian-Eskimo",
    "Other",
];

/// Latent class of each race value (2 classes).
pub const RACE_CLASS: [usize; 5] = [0, 0, 1, 1, 1];

const RACE_MARGINAL: [f64; 5] = [0.828, 0.034, 0.086, 0.026, 0.026];

/// The 2 gender values.
pub const GENDER_VALUES: [&str; 2] = ["Male", "Female"];

const GENDER_MARGINAL: [f64; 2] = [0.676, 0.324];

/// The income values; `>50K` is the sensitive rare class.
pub const INCOME_VALUES: [&str; 2] = ["<=50K", ">50K"];

/// Income marginal of the UCI extract: 75.22% / 24.78%.
pub const INCOME_HIGH_FRACTION: f64 = 0.2478;

/// Logit-scale income effect per education class. The model is logistic —
/// `P(>50K) = sigmoid(base + edu + occ + race + gender)` — so within-class
/// identity is exact and no clamping erodes the cross-class gaps.
const EDU_EFFECT: [f64; 7] = [-1.96, -1.10, -0.49, 0.0, 0.48, 0.98, 1.72];
/// Logit effect per occupation class.
const OCC_EFFECT: [f64; 4] = [0.95, 0.40, -0.15, -0.75];
/// Logit effect per race class.
const RACE_EFFECT: [f64; 2] = [0.20, -0.40];
/// Logit effect per gender.
const GENDER_EFFECT: [f64; 2] = [0.30, -0.45];

/// Example-1 embedding: records matching (Prof-school, Prof-specialty,
/// White, Male).
pub const EXAMPLE1_BASE_COUNT: u64 = 501;
/// Example-1 embedding: of those, records with Income >50K.
pub const EXAMPLE1_HIGH_COUNT: u64 = 420;

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdultConfig {
    /// Number of records (the paper's extract has [`ADULT_ROWS`]).
    pub rows: usize,
    /// RNG seed; the same seed reproduces the same table bit-for-bit.
    pub seed: u64,
}

impl Default for AdultConfig {
    fn default() -> Self {
        Self {
            rows: ADULT_ROWS,
            seed: 0x5EED_AD01,
        }
    }
}

/// The ADULT schema: Education, Occupation, Race, Gender public; Income
/// sensitive.
pub fn schema() -> Schema {
    Schema::new(vec![
        Attribute::new("Education", EDUCATION_VALUES),
        Attribute::new("Occupation", OCCUPATION_VALUES),
        Attribute::new("Race", RACE_VALUES),
        Attribute::new("Gender", GENDER_VALUES),
        Attribute::new("Income", INCOME_VALUES),
    ])
}

/// Logistic function.
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Income probability of a full NA combination under the latent-class
/// logistic model.
fn income_probability(base: f64, edu: usize, occ: usize, race: usize, gender: usize) -> f64 {
    sigmoid(
        base + EDU_EFFECT[EDUCATION_CLASS[edu]]
            + OCC_EFFECT[OCCUPATION_CLASS[occ]]
            + RACE_EFFECT[RACE_CLASS[race]]
            + GENDER_EFFECT[gender],
    )
}

/// Expected income marginal of the logistic model at a given base logit,
/// taken exactly over the 16·14·5·2 cell grid weighted by the NA marginals.
fn expected_income_marginal(base: f64) -> f64 {
    let mut expectation = 0.0;
    for (edu, &we) in EDUCATION_MARGINAL.iter().enumerate() {
        for (occ, &wo) in OCCUPATION_MARGINAL.iter().enumerate() {
            for (race, &wr) in RACE_MARGINAL.iter().enumerate() {
                for (gender, &wg) in GENDER_MARGINAL.iter().enumerate() {
                    expectation +=
                        we * wo * wr * wg * income_probability(base, edu, occ, race, gender);
                }
            }
        }
    }
    expectation
}

/// Base logit calibrated by bisection so the expected income marginal is
/// [`INCOME_HIGH_FRACTION`] (the expectation is strictly increasing in the
/// base, so bisection always converges).
fn calibrated_base() -> f64 {
    let (mut lo, mut hi) = (-6.0_f64, 4.0_f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if expected_income_marginal(mid) < INCOME_HIGH_FRACTION {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Whether the NA combination is the Example-1 cell.
fn is_example1_cell(edu: usize, occ: usize, race: usize, gender: usize) -> bool {
    EDUCATION_VALUES[edu] == "Prof-school"
        && OCCUPATION_VALUES[occ] == "Prof-specialty"
        && RACE_VALUES[race] == "White"
        && GENDER_VALUES[gender] == "Male"
}

/// Generates the synthetic ADULT table.
///
/// When `config.rows >= 2240 + 501` (always true at the paper's size), all
/// 2240 NA combinations are covered and the Example-1 cell holds exactly
/// 501 records with exactly 420 of them >50K.
///
/// # Panics
///
/// Panics if `config.rows` is too small to hold the coverage seed plus the
/// Example-1 embedding (2240 − 1 + 501 records).
pub fn generate(config: AdultConfig) -> Table {
    let min_rows = (16 * 14 * 5 * 2 - 1) + EXAMPLE1_BASE_COUNT as usize;
    assert!(
        config.rows >= min_rows,
        "ADULT generator needs at least {min_rows} rows, got {}",
        config.rows
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let base = calibrated_base();
    let mut builder = TableBuilder::with_capacity(schema(), config.rows);

    let push = |builder: &mut TableBuilder,
                rng: &mut StdRng,
                edu: usize,
                occ: usize,
                race: usize,
                gender: usize| {
        let p_high = income_probability(base, edu, occ, race, gender);
        let income = u32::from(rng.gen::<f64>() < p_high);
        builder
            .push_codes(&[edu as u32, occ as u32, race as u32, gender as u32, income])
            .expect("generator produces in-domain codes");
    };

    // 1. The Example-1 embedding: exactly 501 records, exactly 420 >50K.
    let (e1_edu, e1_occ, e1_race, e1_gender) = (15usize, 0usize, 0usize, 0usize);
    debug_assert!(is_example1_cell(e1_edu, e1_occ, e1_race, e1_gender));
    for i in 0..EXAMPLE1_BASE_COUNT {
        let income = u32::from(i < EXAMPLE1_HIGH_COUNT);
        builder
            .push_codes(&[
                e1_edu as u32,
                e1_occ as u32,
                e1_race as u32,
                e1_gender as u32,
                income,
            ])
            .expect("Example-1 codes are valid");
    }

    // 2. Coverage seed: one record per remaining NA combination, so every
    //    personal group of Table 4 exists.
    for edu in 0..16 {
        for occ in 0..14 {
            for race in 0..5 {
                for gender in 0..2 {
                    if is_example1_cell(edu, occ, race, gender) {
                        continue;
                    }
                    push(&mut builder, &mut rng, edu, occ, race, gender);
                }
            }
        }
    }

    // 3. The bulk: independent draws from the NA marginals (re-drawing the
    //    Example-1 cell so its count stays exactly 501), income from the
    //    latent-class model.
    while builder.rows() < config.rows {
        let edu = sample_weighted(&mut rng, &EDUCATION_MARGINAL);
        let occ = sample_weighted(&mut rng, &OCCUPATION_MARGINAL);
        let race = sample_weighted(&mut rng, &RACE_MARGINAL);
        let gender = sample_weighted(&mut rng, &GENDER_MARGINAL);
        if is_example1_cell(edu, occ, race, gender) {
            continue;
        }
        push(&mut builder, &mut rng, edu, occ, race, gender);
    }

    builder.build()
}

/// Generates the paper-sized ADULT table with the default seed.
pub fn generate_default() -> Table {
    generate(AdultConfig::default())
}

// ---------------------------------------------------------------------------
// The real UCI file.
// ---------------------------------------------------------------------------

/// Environment variable naming the raw UCI ADULT file (`adult.data` /
/// `adult.test` dialect). When set and the file exists,
/// [`load_or_synthesize`] uses the real extract instead of the synthetic
/// substitute, so figures can be validated against the paper's numbers.
pub const RP_ADULT_PATH_ENV: &str = "RP_ADULT_PATH";

/// Column indices of the 15-field raw UCI file for the attributes the
/// paper uses (age, workclass, fnlwgt, ... are dropped).
const UCI_FIELDS: usize = 15;
const UCI_EDUCATION: usize = 3;
const UCI_OCCUPATION: usize = 6;
const UCI_RACE: usize = 8;
const UCI_SEX: usize = 9;
const UCI_INCOME: usize = 14;

/// Errors raised by the raw UCI loader.
#[derive(Debug)]
pub enum UciError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line with the wrong field count.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        got: usize,
    },
    /// A value outside the known UCI domain of its column.
    UnknownValue {
        /// 1-based line number.
        line: usize,
        /// The column the value appeared in.
        column: &'static str,
        /// The offending value.
        value: String,
    },
    /// The file contained no complete records at all.
    Empty,
}

impl std::fmt::Display for UciError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UciError::Io(e) => write!(f, "I/O error: {e}"),
            UciError::FieldCount { line, got } => {
                write!(f, "line {line}: {got} fields, expected {UCI_FIELDS}")
            }
            UciError::UnknownValue {
                line,
                column,
                value,
            } => write!(f, "line {line}: unknown {column} value `{value}`"),
            UciError::Empty => write!(f, "no complete records in the UCI file"),
        }
    }
}

impl std::error::Error for UciError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UciError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for UciError {
    fn from(e: std::io::Error) -> Self {
        UciError::Io(e)
    }
}

/// Reads the raw UCI ADULT dialect (`adult.data` / `adult.test`): 15
/// comma-separated fields per line, no header, `?` for missing values, a
/// `|`-prefixed banner in the test split, and a trailing `.` on the test
/// split's income labels. Keeps the paper's extract — the complete
/// records (no `?` anywhere) projected onto Education, Occupation, Race,
/// Gender and Income — on the exact schema of the synthetic generator,
/// so everything downstream (generalization classes included) applies
/// unchanged.
///
/// # Errors
///
/// Returns a [`UciError`] on I/O failure, ragged rows, values outside
/// the UCI domains, or a file with no complete records.
pub fn load_uci<R: BufRead>(reader: R) -> Result<Table, UciError> {
    let mut builder = TableBuilder::new(schema());
    let target = schema();
    let code_of = |attr: usize, column: &'static str, value: &str, line: usize| {
        target
            .attribute(attr)
            .dictionary()
            .code(value)
            .ok_or_else(|| UciError::UnknownValue {
                line,
                column,
                value: value.to_string(),
            })
    };
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('|') {
            continue; // blank or the adult.test banner
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() != UCI_FIELDS {
            return Err(UciError::FieldCount {
                line: line_no,
                got: fields.len(),
            });
        }
        if fields.contains(&"?") {
            continue; // the paper keeps complete records only
        }
        let income = fields[UCI_INCOME].trim_end_matches('.');
        let codes = [
            code_of(attr::EDUCATION, "education", fields[UCI_EDUCATION], line_no)?,
            code_of(
                attr::OCCUPATION,
                "occupation",
                fields[UCI_OCCUPATION],
                line_no,
            )?,
            code_of(attr::RACE, "race", fields[UCI_RACE], line_no)?,
            code_of(attr::GENDER, "sex", fields[UCI_SEX], line_no)?,
            code_of(attr::INCOME, "income", income, line_no)?,
        ];
        builder
            .push_codes(&codes)
            .expect("codes come from the schema's own dictionaries");
    }
    if builder.rows() == 0 {
        return Err(UciError::Empty);
    }
    Ok(builder.build())
}

/// Loads the raw UCI file from a path (buffered).
///
/// # Errors
///
/// As [`load_uci`], plus file-open errors.
pub fn load_uci_path(path: impl AsRef<Path>) -> Result<Table, UciError> {
    let file = File::open(path)?;
    load_uci(BufReader::new(file))
}

/// Where an ADULT table came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdultSource {
    /// The real UCI file at this path.
    Uci(PathBuf),
    /// The synthetic shape-matched substitute.
    Synthetic,
}

/// Loads the real UCI ADULT extract when available, falling back to the
/// synthetic generator otherwise. The lookup order is: the explicit
/// `path` argument, then the [`RP_ADULT_PATH_ENV`] environment variable;
/// a candidate that does not exist falls through (so a missing file
/// degrades to the synthetic table), but a candidate that exists and
/// fails to *parse* is a hard error — silently synthesizing over a
/// corrupt real file would taint every downstream figure.
///
/// # Errors
///
/// Returns a [`UciError`] only for an existing file that fails to load.
pub fn load_or_synthesize(path: Option<&Path>) -> Result<(Table, AdultSource), UciError> {
    let candidates = path
        .map(Path::to_path_buf)
        .into_iter()
        .chain(std::env::var_os(RP_ADULT_PATH_ENV).map(PathBuf::from));
    for candidate in candidates {
        if candidate.exists() {
            let table = load_uci_path(&candidate)?;
            return Ok((table, AdultSource::Uci(candidate)));
        }
    }
    Ok((generate_default(), AdultSource::Synthetic))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_table::CountQuery;

    #[test]
    fn row_count_and_schema() {
        let t = generate(AdultConfig {
            rows: 10_000,
            seed: 1,
        });
        assert_eq!(t.rows(), 10_000);
        assert_eq!(t.schema().arity(), 5);
        assert_eq!(t.schema().attribute(attr::EDUCATION).domain_size(), 16);
        assert_eq!(t.schema().attribute(attr::OCCUPATION).domain_size(), 14);
        assert_eq!(t.schema().attribute(attr::RACE).domain_size(), 5);
        assert_eq!(t.schema().attribute(attr::GENDER).domain_size(), 2);
        assert_eq!(t.schema().attribute(attr::INCOME).domain_size(), 2);
    }

    #[test]
    fn example1_cell_embedded_exactly() {
        let t = generate(AdultConfig {
            rows: 10_000,
            seed: 2,
        });
        let schema = t.schema();
        let q_base = [
            (
                attr::EDUCATION,
                schema
                    .attribute(0)
                    .dictionary()
                    .code("Prof-school")
                    .unwrap(),
            ),
            (
                attr::OCCUPATION,
                schema
                    .attribute(1)
                    .dictionary()
                    .code("Prof-specialty")
                    .unwrap(),
            ),
            (
                attr::RACE,
                schema.attribute(2).dictionary().code("White").unwrap(),
            ),
            (
                attr::GENDER,
                schema.attribute(3).dictionary().code("Male").unwrap(),
            ),
        ];
        let high = schema.attribute(4).dictionary().code(">50K").unwrap();
        let q = CountQuery::new(q_base.to_vec(), attr::INCOME, high).expect("valid count query");
        let (support, ans) = q.answer_with_support(&t);
        assert_eq!(support, EXAMPLE1_BASE_COUNT);
        assert_eq!(ans, EXAMPLE1_HIGH_COUNT);
        // Conf = 420/501 = 83.83%.
        let conf = ans as f64 / support as f64;
        assert!((conf - 0.8383).abs() < 1e-3);
    }

    #[test]
    fn income_marginal_near_uci() {
        let t = generate(AdultConfig {
            rows: ADULT_ROWS,
            seed: 3,
        });
        let hist = t.histogram(attr::INCOME).unwrap();
        let high_frac = hist[1] as f64 / t.rows() as f64;
        assert!(
            (high_frac - INCOME_HIGH_FRACTION).abs() < 0.02,
            "income marginal {high_frac} too far from {INCOME_HIGH_FRACTION}"
        );
    }

    #[test]
    fn all_na_combinations_covered() {
        let t = generate(AdultConfig {
            rows: 10_000,
            seed: 4,
        });
        let groups = rp_table::group_by_hash(&t, &[0, 1, 2, 3]);
        assert_eq!(groups.len(), 2240, "Table 4: |G| before aggregation");
    }

    #[test]
    fn within_class_values_share_income_profile() {
        // 11th and 12th grade are in the same latent class: their income
        // conditionals must be statistically indistinguishable.
        let t = generate(AdultConfig {
            rows: ADULT_ROWS,
            seed: 5,
        });
        let hist_for = |edu: u32| -> Vec<u64> {
            let mut h = vec![0u64; 2];
            for r in 0..t.rows() {
                if t.code(r, attr::EDUCATION) == edu {
                    h[t.code(r, attr::INCOME) as usize] += 1;
                }
            }
            h
        };
        let h11 = hist_for(6); // 11th
        let h12 = hist_for(7); // 12th
        let res = rp_stats::binned_chi2_test(&h11, &h12, 0.05).unwrap();
        assert!(
            !res.rejects_null,
            "same-class values must not differ: chi2 = {}",
            res.statistic
        );
    }

    #[test]
    fn cross_class_values_differ() {
        let t = generate(AdultConfig {
            rows: ADULT_ROWS,
            seed: 6,
        });
        let hist_for = |edu: u32| -> Vec<u64> {
            let mut h = vec![0u64; 2];
            for r in 0..t.rows() {
                if t.code(r, attr::EDUCATION) == edu {
                    h[t.code(r, attr::INCOME) as usize] += 1;
                }
            }
            h
        };
        // Preschool (class 0) vs HS-grad (class 3).
        let res = rp_stats::binned_chi2_test(&hist_for(0), &hist_for(8), 0.05).unwrap();
        assert!(res.rejects_null, "cross-class chi2 = {}", res.statistic);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(AdultConfig {
            rows: 5000,
            seed: 9,
        });
        let b = generate(AdultConfig {
            rows: 5000,
            seed: 9,
        });
        assert_eq!(a, b);
        let c = generate(AdultConfig {
            rows: 5000,
            seed: 10,
        });
        assert_ne!(a, c);
    }

    #[test]
    fn generalization_reproduces_table_4() {
        // Table 4 of the paper: 16/14/5/2 → 7/4/2/2, |G| 2240 → 112.
        let t = generate_default();
        let spec = rp_core::groups::SaSpec::new(&t, attr::INCOME);
        let g = rp_core::generalize::Generalization::fit(&t, &spec, 0.05);
        let sizes: Vec<usize> = g.attributes().iter().map(|a| a.new_domain_size()).collect();
        assert_eq!(sizes, vec![7, 4, 2, 2], "Table 4 after-aggregation domains");
        let t2 = g.apply(&t);
        let groups = rp_table::group_by_hash(&t2, &[0, 1, 2, 3]);
        assert_eq!(groups.len(), 112, "Table 4: |G| after aggregation");
    }

    #[test]
    fn marginals_sum_to_one() {
        for m in [
            EDUCATION_MARGINAL.as_slice(),
            OCCUPATION_MARGINAL.as_slice(),
            RACE_MARGINAL.as_slice(),
            GENDER_MARGINAL.as_slice(),
        ] {
            let s: f64 = m.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "marginal sums to {s}");
        }
    }

    #[test]
    #[should_panic(expected = "needs at least")]
    fn too_few_rows_rejected() {
        generate(AdultConfig { rows: 100, seed: 1 });
    }

    /// Two raw UCI-dialect lines (the second from the `.test` split:
    /// trailing dot on income) plus one incomplete and one banner line.
    const UCI_SAMPLE: &str = "\
|1x3 Cross validator
39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical, Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K
50, Self-emp-not-inc, 83311, Prof-school, 13, Married-civ-spouse, Prof-specialty, Husband, White, Male, 0, 0, 13, United-States, >50K.
38, Private, 215646, HS-grad, 9, Divorced, ?, Not-in-family, Black, Female, 0, 0, 40, United-States, <=50K
";

    #[test]
    fn uci_dialect_parses_complete_records_onto_the_fixed_schema() {
        let t = load_uci(UCI_SAMPLE.as_bytes()).unwrap();
        assert_eq!(t.rows(), 2, "banner skipped, incomplete record dropped");
        assert_eq!(t.schema().arity(), 5);
        let dict = |a: usize| t.schema().attribute(a).dictionary().clone();
        assert_eq!(
            t.code(0, attr::EDUCATION),
            dict(0).code("Bachelors").unwrap()
        );
        assert_eq!(
            t.code(1, attr::EDUCATION),
            dict(0).code("Prof-school").unwrap()
        );
        assert_eq!(t.code(1, attr::INCOME), dict(4).code(">50K").unwrap());
        // The fixed schema keeps the full UCI domains even for values the
        // sample never mentions — generalization classes stay aligned.
        assert_eq!(t.schema().attribute(attr::EDUCATION).domain_size(), 16);
    }

    #[test]
    fn uci_loader_rejects_garbage() {
        assert!(matches!(
            load_uci(&b"1, 2, 3\n"[..]).unwrap_err(),
            UciError::FieldCount { got: 3, .. }
        ));
        let bad_value = UCI_SAMPLE.replace("Bachelors", "Hogwarts");
        assert!(matches!(
            load_uci(bad_value.as_bytes()).unwrap_err(),
            UciError::UnknownValue {
                column: "education",
                ..
            }
        ));
        assert!(matches!(
            load_uci(&b"|banner only\n"[..]).unwrap_err(),
            UciError::Empty
        ));
    }

    #[test]
    fn load_or_synthesize_falls_back_to_the_generator() {
        // A missing explicit path degrades to the synthetic table (the
        // env var may legitimately be set on machines with the file; the
        // explicit-path branch is deterministic either way).
        let missing = Path::new("/nonexistent/rp-adult-test/adult.data");
        if std::env::var_os(RP_ADULT_PATH_ENV).is_some() {
            return; // covered by uci_adult_file_loads_when_present
        }
        let (t, source) = load_or_synthesize(Some(missing)).unwrap();
        assert_eq!(source, AdultSource::Synthetic);
        assert_eq!(t.rows(), ADULT_ROWS);
    }

    /// Gated on the real file: set `RP_ADULT_PATH=/path/to/adult.data`
    /// to validate against the actual UCI extract.
    #[test]
    fn uci_adult_file_loads_when_present() {
        let Some(path) = std::env::var_os(RP_ADULT_PATH_ENV).map(PathBuf::from) else {
            eprintln!("RP_ADULT_PATH not set; skipping the real-file check");
            return;
        };
        if !path.exists() {
            eprintln!("RP_ADULT_PATH={} does not exist; skipping", path.display());
            return;
        }
        let (t, source) = load_or_synthesize(None).unwrap();
        assert_eq!(source, AdultSource::Uci(path));
        assert!(
            t.rows() > 10_000,
            "the extract has tens of thousands of rows"
        );
        // The paper's extract: income >50K around 24.78%.
        let hist = t.histogram(attr::INCOME).unwrap();
        let high = hist[1] as f64 / t.rows() as f64;
        assert!(
            (high - INCOME_HIGH_FRACTION).abs() < 0.03,
            "income marginal {high} far from the paper's {INCOME_HIGH_FRACTION}"
        );
    }
}
