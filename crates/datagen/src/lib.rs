//! # rp-datagen
//!
//! Synthetic-data substrate for the reconstruction-privacy workspace.
//!
//! The paper evaluates on two data sets that cannot be redistributed here:
//! the UCI ADULT extract and a 500K CENSUS extract. This crate synthesizes
//! both with the properties the experiments actually exercise (domain
//! sizes, marginals, the Example-1 rule, and the latent-class conditional
//! structure that drives the χ²-merge of Section 3.4) — see DESIGN.md §4
//! for the substitution rationale — plus the Section-6 query-pool
//! generator.
//!
//! * [`adult`] — 45,222-record ADULT-like table (Income sensitive).
//! * [`census`] — 100K–500K CENSUS-like table (Occupation sensitive).
//! * [`querypool`] — selective conjunctive count queries (`d ∈ {1,2,3}`,
//!   selectivity ≥ 0.1%).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adult;
pub mod census;
pub mod querypool;

pub use adult::{generate as generate_adult, AdultConfig};
pub use census::{generate as generate_census, CensusConfig};
pub use querypool::{PooledQuery, QueryPool, QueryPoolConfig};
