//! Anatomy: l-diverse bucketization (Xiao & Tao, VLDB 2006 — reference
//! \[28\] of the paper).
//!
//! Instead of perturbing values, Anatomy *separates* them: records are
//! partitioned into buckets in which every SA value appears at most once
//! per `l` members (distinct l-diversity), and two tables are published —
//! a QI table (record → public attributes + bucket id) and an SA table
//! (bucket id → SA histogram). Within a bucket the linkage between a
//! record and its SA value is broken; an adversary's posterior for any
//! record is the bucket's SA distribution.
//!
//! The bucketization below is the paper's own greedy algorithm: repeatedly
//! open a bucket and fill it with one record from each of the `l`
//! currently-largest SA groups; leftover records (fewer than `l` distinct
//! values remain) are assigned to existing buckets that do not yet contain
//! their SA value.
//!
//! Count queries are answered with the standard uniform-within-bucket
//! estimator: a record of bucket `B` matching the `NA` conditions
//! contributes `count_B(sa) / |B|` to the estimate of `NA ∧ SA = sa`.

use std::collections::HashMap;

use rp_table::{AttrId, CountQuery, Table};

/// Errors raised by the anatomization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnatomyError {
    /// The eligibility condition fails: some SA value occurs in more than
    /// `|D|/l` records, so no l-diverse partition exists.
    Ineligible {
        /// The SA code that is too frequent.
        sa_code: u32,
        /// Its count.
        count: u64,
        /// The maximum admissible count.
        max_allowed: u64,
    },
    /// `l` must be at least 2 and at most the SA domain size.
    InvalidL {
        /// The requested `l`.
        l: usize,
        /// The SA domain size.
        m: usize,
    },
    /// The table is empty.
    EmptyTable,
}

impl std::fmt::Display for AnatomyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnatomyError::Ineligible {
                sa_code,
                count,
                max_allowed,
            } => write!(
                f,
                "SA code {sa_code} occurs {count} times, above the l-eligibility cap {max_allowed}"
            ),
            AnatomyError::InvalidL { l, m } => {
                write!(
                    f,
                    "l = {l} invalid for SA domain size {m} (need 2 <= l <= m)"
                )
            }
            AnatomyError::EmptyTable => write!(f, "cannot anatomize an empty table"),
        }
    }
}

impl std::error::Error for AnatomyError {}

/// An anatomized publication: QI table and per-bucket SA histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnatomizedTable {
    sa_attr: AttrId,
    l: usize,
    /// Bucket id of every record (parallel to the source table's rows).
    bucket_of: Vec<u32>,
    /// Per-bucket SA histograms (the published SA table).
    buckets: Vec<Vec<u64>>,
}

impl AnatomizedTable {
    /// Anatomizes `table` into distinct-l-diverse buckets.
    ///
    /// # Errors
    ///
    /// Returns [`AnatomyError`] when `l` is out of range, the table is
    /// empty, or the eligibility condition (`max SA count <= |D|/l`)
    /// fails.
    pub fn build(table: &Table, sa_attr: AttrId, l: usize) -> Result<Self, AnatomyError> {
        let m = table.schema().attribute(sa_attr).domain_size();
        if l < 2 || l > m {
            return Err(AnatomyError::InvalidL { l, m });
        }
        if table.is_empty() {
            return Err(AnatomyError::EmptyTable);
        }
        let n = table.rows() as u64;
        // Group row ids by SA value.
        let mut by_sa: Vec<Vec<u32>> = vec![Vec::new(); m];
        for (row, &code) in table.column(sa_attr).codes().iter().enumerate() {
            by_sa[code as usize].push(row as u32);
        }
        // Strict eligibility (Xiao & Tao): every SA frequency at most n/l.
        // This is what guarantees the residue phase always finds a
        // value-free bucket.
        let max_allowed = n / l as u64;
        for (code, rows) in by_sa.iter().enumerate() {
            if rows.len() as u64 > max_allowed {
                return Err(AnatomyError::Ineligible {
                    sa_code: code as u32,
                    count: rows.len() as u64,
                    max_allowed,
                });
            }
        }

        let mut bucket_of = vec![u32::MAX; table.rows()];
        let mut buckets: Vec<Vec<u64>> = Vec::new();
        // Greedy: while at least l non-empty SA groups remain, open a
        // bucket with one record from each of the l largest groups.
        loop {
            let mut order: Vec<usize> = (0..m).filter(|&v| !by_sa[v].is_empty()).collect();
            if order.len() < l {
                break;
            }
            order.sort_by_key(|&v| std::cmp::Reverse(by_sa[v].len()));
            let bucket_id = buckets.len() as u32;
            let mut hist = vec![0u64; m];
            for &v in order.iter().take(l) {
                let row = by_sa[v].pop().expect("group non-empty");
                bucket_of[row as usize] = bucket_id;
                hist[v] += 1;
            }
            buckets.push(hist);
        }
        // Residue: fewer than l distinct values remain. Each leftover
        // record goes to some existing bucket not containing its value
        // (guaranteed to exist by eligibility).
        for v in 0..m {
            while let Some(row) = by_sa[v].pop() {
                let target = buckets
                    .iter()
                    .position(|hist| hist[v] == 0)
                    .expect("eligibility guarantees a value-free bucket");
                bucket_of[row as usize] = target as u32;
                buckets[target][v] += 1;
            }
        }
        debug_assert!(bucket_of.iter().all(|&b| b != u32::MAX));
        Ok(Self {
            sa_attr,
            l,
            bucket_of,
            buckets,
        })
    }

    /// The diversity parameter `l`.
    pub fn l(&self) -> usize {
        self.l
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket id of a record.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn bucket_of(&self, row: usize) -> u32 {
        self.bucket_of[row]
    }

    /// The SA histogram of a bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is out of range.
    pub fn bucket_histogram(&self, bucket: u32) -> &[u64] {
        &self.buckets[bucket as usize]
    }

    /// Verifies distinct l-diversity of every bucket (each SA value at
    /// most once per `l` members; with the greedy construction every value
    /// appears at most ⌈|B|/l⌉ times).
    pub fn is_l_diverse(&self) -> bool {
        self.buckets.iter().all(|hist| {
            let size: u64 = hist.iter().sum();
            let cap = size.div_ceil(self.l as u64);
            hist.iter().all(|&c| c <= cap)
        })
    }

    /// The standard Anatomy count estimator for `NA ∧ SA = sa`: every
    /// record matching the `NA` pattern contributes its bucket's
    /// `count(sa)/|B|`.
    ///
    /// `source` must be the table the anatomization was built from (the QI
    /// attributes are published as-is, so evaluating the pattern against
    /// it is exactly what a consumer of the QI table would do).
    ///
    /// # Panics
    ///
    /// Panics if `source` has a different row count than the
    /// anatomization.
    pub fn estimate(&self, source: &Table, query: &CountQuery) -> f64 {
        assert_eq!(
            source.rows(),
            self.bucket_of.len(),
            "source table does not match the anatomization"
        );
        let sa = query.sa_value() as usize;
        // Pre-compute per-bucket contribution of one matching record.
        let contribution: Vec<f64> = self
            .buckets
            .iter()
            .map(|hist| {
                let size: u64 = hist.iter().sum();
                if size == 0 {
                    0.0
                } else {
                    hist[sa] as f64 / size as f64
                }
            })
            .collect();
        let pattern = query.na_pattern();
        let mut estimate = 0.0;
        for row in 0..source.rows() {
            if pattern.matches_row(source, row) {
                estimate += contribution[self.bucket_of[row] as usize];
            }
        }
        estimate
    }

    /// Distribution of bucket sizes, for diagnostics: `(min, max)`.
    pub fn bucket_size_range(&self) -> (u64, u64) {
        let sizes: Vec<u64> = self.buckets.iter().map(|h| h.iter().sum()).collect();
        (
            sizes.iter().copied().min().unwrap_or(0),
            sizes.iter().copied().max().unwrap_or(0),
        )
    }
}

/// Convenience map from bucket ids to the rows they contain.
pub fn rows_by_bucket(anatomized: &AnatomizedTable, rows: usize) -> HashMap<u32, Vec<u32>> {
    let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
    for row in 0..rows {
        map.entry(anatomized.bucket_of(row))
            .or_default()
            .push(row as u32);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_table::{Attribute, Schema, TableBuilder};

    fn demo_table(counts: &[u64]) -> Table {
        let m = counts.len();
        let schema = Schema::new(vec![
            Attribute::new("G", ["a", "b"]),
            Attribute::with_anonymous_domain("SA", m),
        ]);
        let mut b = TableBuilder::new(schema);
        for (code, &c) in counts.iter().enumerate() {
            for i in 0..c {
                b.push_codes(&[(i % 2) as u32, code as u32]).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn buckets_partition_all_records() {
        let t = demo_table(&[40, 30, 20, 10]);
        let a = AnatomizedTable::build(&t, 1, 2).unwrap();
        let total: u64 = (0..a.bucket_count())
            .map(|b| a.bucket_histogram(b as u32).iter().sum::<u64>())
            .sum();
        assert_eq!(total, 100);
        let map = rows_by_bucket(&a, t.rows());
        let covered: usize = map.values().map(Vec::len).sum();
        assert_eq!(covered, 100);
    }

    #[test]
    fn every_bucket_is_l_diverse() {
        // Strict eligibility: max count <= total/l for every l tested.
        for (l, counts) in [
            (2usize, vec![40u64, 30, 20, 12]),
            (3, vec![30, 28, 25, 22]),
            (4, vec![26, 26, 26, 26]),
        ] {
            let t = demo_table(&counts);
            let a = AnatomizedTable::build(&t, 1, l).unwrap();
            assert!(a.is_l_diverse(), "l = {l}");
            // Bucket ids recorded per row match the histograms.
            for row in 0..t.rows() {
                let b = a.bucket_of(row);
                assert!((b as usize) < a.bucket_count());
            }
        }
    }

    #[test]
    fn ineligible_table_rejected() {
        // SA value 0 holds 90 of 100 records: at l = 2 the cap is 50.
        let t = demo_table(&[90, 10]);
        let err = AnatomizedTable::build(&t, 1, 2).unwrap_err();
        assert!(matches!(
            err,
            AnatomyError::Ineligible {
                sa_code: 0,
                count: 90,
                ..
            }
        ));
    }

    #[test]
    fn invalid_l_rejected() {
        let t = demo_table(&[10, 10]);
        assert!(matches!(
            AnatomizedTable::build(&t, 1, 1),
            Err(AnatomyError::InvalidL { .. })
        ));
        assert!(matches!(
            AnatomizedTable::build(&t, 1, 3),
            Err(AnatomyError::InvalidL { .. })
        ));
    }

    #[test]
    fn empty_table_rejected() {
        let schema = Schema::new(vec![
            Attribute::new("G", ["a"]),
            Attribute::with_anonymous_domain("SA", 2),
        ]);
        let t = TableBuilder::new(schema).build();
        assert!(matches!(
            AnatomizedTable::build(&t, 1, 2),
            Err(AnatomyError::EmptyTable)
        ));
    }

    #[test]
    fn sa_marginal_estimates_are_exact() {
        // With no NA condition, Σ_B count_B(sa) is exact by construction.
        let t = demo_table(&[40, 30, 20, 10]);
        let a = AnatomizedTable::build(&t, 1, 2).unwrap();
        for sa in 0..4u32 {
            let q = CountQuery::new(vec![], 1, sa).expect("valid count query");
            let truth = q.answer(&t) as f64;
            assert!((a.estimate(&t, &q) - truth).abs() < 1e-9);
        }
    }

    #[test]
    fn conditioned_estimates_are_reasonable() {
        // G = a selects every other record; the uniform-within-bucket
        // estimator should land near the truth for a balanced table.
        let t = demo_table(&[300, 300, 200, 200]);
        let a = AnatomizedTable::build(&t, 1, 3).unwrap();
        let q = CountQuery::new(vec![(0, 0)], 1, 0).expect("valid count query");
        let truth = q.answer(&t) as f64;
        let est = a.estimate(&t, &q);
        assert!(
            (est - truth).abs() / truth < 0.35,
            "est {est} vs truth {truth}"
        );
    }

    #[test]
    fn error_display_messages() {
        let e = AnatomyError::Ineligible {
            sa_code: 3,
            count: 42,
            max_allowed: 20,
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains("42") && msg.contains("20"));
        assert!(AnatomyError::EmptyTable.to_string().contains("empty"));
    }

    #[test]
    fn residue_records_are_placed() {
        // Uneven counts leave a residue; everything must still be bucketed
        // and l-diverse.
        let t = demo_table(&[7, 5, 3]);
        let a = AnatomizedTable::build(&t, 1, 2).unwrap();
        assert!(a.is_l_diverse());
        let total: u64 = (0..a.bucket_count())
            .map(|b| a.bucket_histogram(b as u32).iter().sum::<u64>())
            .sum();
        assert_eq!(total, 15);
    }
}
