//! # rp-anonymize
//!
//! Posterior/prior-criteria publishing baselines for the
//! reconstruction-privacy workspace.
//!
//! The paper's introduction contrasts reconstruction privacy with the
//! criteria family that treats non-independent reasoning as a violation
//! (l-diversity, t-closeness, …). This crate implements a concrete,
//! cited representative — **Anatomy** (Xiao & Tao, VLDB 2006, reference
//! \[28\] of the paper) — so the two philosophies can be compared on the
//! same query pools:
//!
//! * [`anatomy`] — l-diverse bucketization publishing a (QI-table,
//!   SA-table) pair, with the standard uniform-within-bucket count
//!   estimator.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod anatomy;

pub use anatomy::{AnatomizedTable, AnatomyError};
