//! # rp-learn
//!
//! Statistical learning on reconstruction-private publications — the
//! "Enabling Statistical Learning" half of the paper's title, made
//! concrete.
//!
//! A classifier is the paper's "master example of NIR" (Section 1.1): the
//! class of a new instance is learnt from the distribution of related
//! records. Reconstruction privacy promises that this *aggregate* kind of
//! learning keeps working after SPS, while *personal* reconstruction does
//! not. This crate provides a categorical Naive Bayes classifier for the
//! sensitive attribute that can be fitted from
//!
//! * a raw table (the utility ceiling),
//! * **reconstructed sufficient statistics** — the 1-D `NA × SA` marginal
//!   estimates `est = |S*|·F′` computed from a UP or SPS publication,
//!
//! so the two training paths can be compared on held-out accuracy
//! (`repro learning`). This is also reference \[13\]'s observation — a Bayes
//! classifier built from released statistics predicts individuals'
//! sensitive values — turned into a measurement.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod naive_bayes;

pub use naive_bayes::{NaiveBayes, SufficientStats};
