//! Categorical Naive Bayes over the public attributes, predicting the
//! sensitive attribute.
//!
//! Training needs only the sufficient statistics `N(sa)` and
//! `N(Ai = v, sa)` — exactly the counts the Section-6 estimator
//! reconstructs from a perturbed publication. [`SufficientStats`] can
//! therefore be collected either from a raw table or from a
//! [`rp_core::estimate::GroupedView`] of published data, and the same
//! classifier is fitted from both.

use rp_core::estimate::GroupedView;
use rp_table::{AttrId, CountQuery, Schema, Table};

/// The counts Naive Bayes is estimated from. All values are `f64` because
/// the reconstructed path produces real-valued (possibly negative)
/// estimates; fitting clamps as needed.
#[derive(Debug, Clone, PartialEq)]
pub struct SufficientStats {
    /// Class (SA value) totals, `N(sa)`.
    pub class_counts: Vec<f64>,
    /// `feature_counts[k][v][sa] = N(Ak = v, sa)` for the k-th public
    /// attribute (indexed by position in `na_attrs`).
    pub feature_counts: Vec<Vec<Vec<f64>>>,
    /// The public attributes, in `feature_counts` order.
    pub na_attrs: Vec<AttrId>,
    /// The sensitive attribute.
    pub sa_attr: AttrId,
}

impl SufficientStats {
    /// Collects exact statistics from a raw table.
    ///
    /// # Panics
    ///
    /// Panics if `sa` is out of range or the table has no other attribute.
    pub fn from_raw(table: &Table, sa: AttrId) -> Self {
        let arity = table.schema().arity();
        assert!(sa < arity, "SA attribute out of range");
        assert!(arity >= 2, "need at least one public attribute");
        let na_attrs: Vec<AttrId> = (0..arity).filter(|&a| a != sa).collect();
        let m = table.schema().attribute(sa).domain_size();
        let mut class_counts = vec![0.0; m];
        for &code in table.column(sa).codes() {
            class_counts[code as usize] += 1.0;
        }
        let feature_counts = na_attrs
            .iter()
            .map(|&a| {
                let domain = table.schema().attribute(a).domain_size();
                let mut counts = vec![vec![0.0; m]; domain];
                let av = table.column(a).codes();
                let sv = table.column(sa).codes();
                for (&v, &s) in av.iter().zip(sv) {
                    counts[v as usize][s as usize] += 1.0;
                }
                counts
            })
            .collect();
        Self {
            class_counts,
            feature_counts,
            na_attrs,
            sa_attr: sa,
        }
    }

    /// Reconstructs the statistics from a published [`GroupedView`] using
    /// the Section-6 estimator for every `(Ai = v, sa)` marginal, at
    /// retention `p`. `schema` is the published table's schema.
    ///
    /// Negative reconstructed counts are clamped to zero at fit time.
    pub fn from_view(view: &GroupedView, schema: &Schema, sa: AttrId, p: f64) -> Self {
        let arity = schema.arity();
        assert!(sa < arity, "SA attribute out of range");
        let na_attrs: Vec<AttrId> = (0..arity).filter(|&a| a != sa).collect();
        let m = schema.attribute(sa).domain_size();
        // Class totals from the unconditioned marginal queries.
        let class_counts: Vec<f64> = (0..m as u32)
            .map(|s| {
                view.estimate(
                    &CountQuery::new(vec![], sa, s).expect("valid count query"),
                    p,
                )
            })
            .collect();
        let feature_counts = na_attrs
            .iter()
            .map(|&a| {
                (0..schema.attribute(a).domain_size() as u32)
                    .map(|v| {
                        (0..m as u32)
                            .map(|s| {
                                view.estimate(
                                    &CountQuery::new(vec![(a, v)], sa, s)
                                        .expect("valid count query"),
                                    p,
                                )
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Self {
            class_counts,
            feature_counts,
            na_attrs,
            sa_attr: sa,
        }
    }
}

/// A fitted categorical Naive Bayes model.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayes {
    na_attrs: Vec<AttrId>,
    sa_attr: AttrId,
    /// `log P(sa)`.
    class_log_prior: Vec<f64>,
    /// `log P(Ak = v | sa)` indexed `[k][v][sa]`.
    feature_log_likelihood: Vec<Vec<Vec<f64>>>,
}

impl NaiveBayes {
    /// Fits the model from sufficient statistics with additive (Laplace)
    /// smoothing `alpha`.
    ///
    /// Negative counts (possible on the reconstructed path) are clamped to
    /// zero before smoothing.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 0`, the statistics are shape-inconsistent, or
    /// every class count is non-positive.
    pub fn fit(stats: &SufficientStats, alpha: f64) -> Self {
        assert!(alpha > 0.0, "smoothing must be positive, got {alpha}");
        let m = stats.class_counts.len();
        assert!(m >= 2, "need at least two classes");
        let clamped_class: Vec<f64> = stats.class_counts.iter().map(|&c| c.max(0.0)).collect();
        let class_total: f64 = clamped_class.iter().sum();
        assert!(class_total > 0.0, "all class counts are non-positive");
        let class_log_prior: Vec<f64> = clamped_class
            .iter()
            .map(|&c| ((c + alpha) / (class_total + alpha * m as f64)).ln())
            .collect();
        let feature_log_likelihood = stats
            .feature_counts
            .iter()
            .map(|per_value| {
                let domain = per_value.len();
                // Per-class totals over this attribute.
                let mut class_attr_total = vec![0.0; m];
                for value_counts in per_value {
                    assert_eq!(value_counts.len(), m, "inconsistent class arity");
                    for (s, &c) in value_counts.iter().enumerate() {
                        class_attr_total[s] += c.max(0.0);
                    }
                }
                per_value
                    .iter()
                    .map(|value_counts| {
                        (0..m)
                            .map(|s| {
                                let c = value_counts[s].max(0.0);
                                ((c + alpha) / (class_attr_total[s] + alpha * domain as f64)).ln()
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Self {
            na_attrs: stats.na_attrs.clone(),
            sa_attr: stats.sa_attr,
            class_log_prior,
            feature_log_likelihood,
        }
    }

    /// The sensitive attribute the model predicts.
    pub fn sa_attr(&self) -> AttrId {
        self.sa_attr
    }

    /// Log-posterior (up to a constant) of every class for a full row of
    /// the table the model was built against.
    pub fn log_scores(&self, table: &Table, row: usize) -> Vec<f64> {
        let m = self.class_log_prior.len();
        let mut scores = self.class_log_prior.clone();
        for (k, &attr) in self.na_attrs.iter().enumerate() {
            let v = table.code(row, attr) as usize;
            for (s, score) in scores.iter_mut().enumerate().take(m) {
                *score += self.feature_log_likelihood[k][v][s];
            }
        }
        scores
    }

    /// Predicts the SA code for one row.
    pub fn predict(&self, table: &Table, row: usize) -> u32 {
        let scores = self.log_scores(table, row);
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(i, _)| i as u32)
            .expect("at least two classes")
    }

    /// Fraction of rows of `table` whose SA value the model predicts
    /// correctly.
    ///
    /// # Panics
    ///
    /// Panics on an empty table.
    pub fn accuracy(&self, table: &Table) -> f64 {
        assert!(!table.is_empty(), "accuracy undefined on an empty table");
        let correct = (0..table.rows())
            .filter(|&r| self.predict(table, r) == table.code(r, self.sa_attr))
            .count();
        correct as f64 / table.rows() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rp_core::groups::{PersonalGroups, SaSpec};
    use rp_core::sps::up_histograms;
    use rp_table::{Attribute, Schema, TableBuilder};

    /// A table where SA is strongly predictable from the two features.
    fn predictable_table(n: usize, seed: u64) -> Table {
        let schema = Schema::new(vec![
            Attribute::with_anonymous_domain("A", 3),
            Attribute::with_anonymous_domain("B", 2),
            Attribute::with_anonymous_domain("SA", 3),
        ]);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = TableBuilder::new(schema);
        for _ in 0..n {
            let a = rng.gen_range(0..3u32);
            let bb = rng.gen_range(0..2u32);
            // SA mostly follows A, flipped sometimes by B.
            let sa = if rng.gen::<f64>() < 0.85 {
                a
            } else if bb == 0 {
                (a + 1) % 3
            } else {
                (a + 2) % 3
            };
            b.push_codes(&[a, bb, sa]).unwrap();
        }
        b.build()
    }

    #[test]
    fn raw_fit_beats_majority_class() {
        let train = predictable_table(6000, 1);
        let test = predictable_table(2000, 2);
        let model = NaiveBayes::fit(&SufficientStats::from_raw(&train, 2), 1.0);
        let acc = model.accuracy(&test);
        // Majority class is ~1/3; the model should reach ~0.85.
        assert!(acc > 0.75, "accuracy {acc}");
    }

    #[test]
    fn from_raw_statistics_are_exact_counts() {
        let t = predictable_table(500, 3);
        let stats = SufficientStats::from_raw(&t, 2);
        let total: f64 = stats.class_counts.iter().sum();
        assert!((total - 500.0).abs() < 1e-9);
        for per_value in &stats.feature_counts {
            let sum: f64 = per_value.iter().flatten().sum();
            assert!((sum - 500.0).abs() < 1e-9);
        }
    }

    #[test]
    fn reconstructed_fit_tracks_raw_fit() {
        // Train from a UP publication's reconstructed statistics: held-out
        // accuracy should be within a few points of the raw-trained model.
        let train = predictable_table(20_000, 4);
        let test = predictable_table(4_000, 5);
        let raw_model = NaiveBayes::fit(&SufficientStats::from_raw(&train, 2), 1.0);
        let spec = SaSpec::new(&train, 2);
        let groups = PersonalGroups::build(&train, spec);
        let mut rng = StdRng::seed_from_u64(6);
        let p = 0.5;
        let view = GroupedView::from_histograms(&groups, up_histograms(&mut rng, &groups, p));
        let stats = SufficientStats::from_view(&view, train.schema(), 2, p);
        let recon_model = NaiveBayes::fit(&stats, 1.0);
        let raw_acc = raw_model.accuracy(&test);
        let recon_acc = recon_model.accuracy(&test);
        assert!(
            (raw_acc - recon_acc).abs() < 0.05,
            "raw {raw_acc} vs reconstructed {recon_acc}"
        );
    }

    #[test]
    fn negative_reconstructed_counts_are_tolerated() {
        let mut stats = SufficientStats::from_raw(&predictable_table(200, 7), 2);
        stats.class_counts[0] = -5.0;
        stats.feature_counts[0][0][1] = -3.0;
        let model = NaiveBayes::fit(&stats, 1.0);
        let t = predictable_table(50, 8);
        let acc = model.accuracy(&t);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn log_scores_are_finite_and_ordered_by_evidence() {
        let t = predictable_table(3000, 9);
        let model = NaiveBayes::fit(&SufficientStats::from_raw(&t, 2), 1.0);
        for row in 0..20 {
            let scores = model.log_scores(&t, row);
            assert!(scores.iter().all(|s| s.is_finite()));
            let predicted = model.predict(&t, row) as usize;
            let best = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!((scores[predicted] - best).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "smoothing must be positive")]
    fn zero_alpha_rejected() {
        let t = predictable_table(100, 10);
        NaiveBayes::fit(&SufficientStats::from_raw(&t, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "accuracy undefined")]
    fn empty_accuracy_panics() {
        let t = predictable_table(100, 11);
        let model = NaiveBayes::fit(&SufficientStats::from_raw(&t, 2), 1.0);
        let schema = t.schema().clone();
        let empty = TableBuilder::new(schema).build();
        model.accuracy(&empty);
    }
}
