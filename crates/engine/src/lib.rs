//! # rp-engine
//!
//! The operable surface of the reproduction: a first-class publication API
//! over the paper's *publish once, answer many count queries* workflow
//! (Wang et al., *Reconstruction Privacy*, EDBT 2015).
//!
//! Three types replace the hand-threaded pipeline of free functions:
//!
//! * [`Publisher`] — a builder that runs personal grouping, the
//!   Equation-10 design check and SPS in one `publish()` call;
//! * [`Publication`] — the published table bundled with its schema, the
//!   retention probability `p`, the `(λ, δ)` parameters, the SPS run
//!   counters and the seed, (de)serializable to a line-oriented on-disk
//!   format ([`Publication::save`] / [`Publication::load`]);
//! * [`QueryEngine`] — a long-lived answering service built from a
//!   release: per-group reconstructions are cached at construction and the
//!   NA match index is precomputed per batch, so single queries, batches
//!   and whole Section-6 pools are answered without rescanning.
//!
//! ## The serving stack
//!
//! On top of the engine, four layers turn one release into a
//! transport-agnostic — and, with a WAL, *live* — query service
//! (`rpctl serve` / `rpctl query --connect` / `rpctl ingest` are thin
//! shells over them):
//!
//! ```text
//! Publisher ─▶ Publication (v1 batch / v2 streaming artifact)
//!                  │                        ▲
//!                  ▼                        │ snapshot / restore
//!             QueryEngine ◀── base ─── stream::StreamPublisher
//!                  │                        │  insert WAL · per-group RNG
//!                  │   base + live counts   │  auto-republish · spill
//!                  ▼                        ▼
//!             service::QueryService (answer cache, counters)
//!                  │
//!          protocol::Request/Response (one canonical line codec)
//!                  │
//!        server: stdio serve() loop │ TCP thread-per-connection
//! ```
//!
//! * [`protocol`] — the typed wire protocol: [`Request`] and [`Response`]
//!   enums with a canonical line-oriented encode/parse round-trip, a
//!   versioned `HELLO` banner, and structured
//!   [`ErrorCode`]-carrying errors instead of free-form strings;
//! * [`stream`] — the streaming subsystem: a durable
//!   [`StreamPublisher`] wrapping `rp-core`'s incremental publisher in a
//!   write-ahead log of inserts, counter-based per-group RNG streams
//!   (one `u64` cursor each), automatic SPS re-publication when a group
//!   crosses `sg`, bounded-memory cold-group spilling, and v2 snapshots
//!   — state is a pure function of `(base artifact, WAL)`, so replay and
//!   snapshot+tail restore are byte-identical to the live run;
//! * [`service`] — the shared [`QueryService`]: an `Arc<QueryEngine>`
//!   plus a bounded deterministic answer cache keyed by canonical query
//!   form, a batch path through the prepared NA match index, per-session
//!   / aggregate serve counters, and (in streaming mode) the live view —
//!   answers merge base and live counts, and an insert invalidates
//!   exactly the cached answers whose match set contains its group;
//! * [`server`] — the transports: [`serve()`](serve::serve) runs one
//!   session over any `BufRead`/`Write` pair (stdin/stdout included), and
//!   [`Server`] is a TCP listener running that same loop
//!   thread-per-connection over the shared service, with a connection cap
//!   and graceful shutdown. Both surfaces answer a given request stream
//!   byte-identically;
//! * [`catalog`] — multi-tenancy: a [`Catalog`] hosts N named releases
//!   (each its own [`QueryService`] — caches, counters and streams are
//!   per-tenant by construction) with open/close/hot-reload lifecycle and
//!   lease-based drain, and [`CatalogSession`] routes the rp/3 verbs
//!   (`use`, `releases`, `reload`, `verb@release`) over either transport
//!   via [`serve_catalog()`](serve::serve_catalog) /
//!   [`Server::bind_catalog`];
//! * [`fault`] — deterministic fault injection: an injectable I/O
//!   facade ([`fault::FaultIo`], default passthrough) threaded through
//!   every durable writer, driven by a seeded counter-based schedule so
//!   EIO/ENOSPC/short-write/failed-fsync runs replay exactly from
//!   `(seed, op count)`. A failed WAL fsync *poisons* the stream
//!   (never retried, never falsely acked) and degrades its service to
//!   read-only; catalog `reload` is the recovery path;
//! * [`obs`] — observability: a process-global [`obs::Registry`]
//!   of atomic counters, log₂-bucketed latency histograms and a bounded
//!   trace ring, threaded through every layer above and exposed by the
//!   rp/5 `metrics` / `trace` verbs. Instrumentation changes zero response
//!   bytes of the other verbs, and every production clock read routes
//!   through [`obs::Clock`] (enforced by `rp-analyze`'s `obs-clock` rule).
//!
//! ## Quickstart
//!
//! ```
//! use rp_engine::{Publication, Publisher, QueryEngine};
//! use rp_table::{Attribute, Schema, TableBuilder};
//!
//! // A toy table: Gender is public, Disease sensitive.
//! let schema = Schema::new(vec![
//!     Attribute::new("Gender", ["male", "female"]),
//!     Attribute::new("Disease", ["flu", "hiv", "none"]),
//! ]);
//! let mut builder = TableBuilder::new(schema);
//! for i in 0..5000u32 {
//!     let gender = if i % 2 == 0 { "male" } else { "female" };
//!     let disease = if i % 10 < 8 { "none" } else { "flu" };
//!     builder.push_values(&[gender, disease]).unwrap();
//! }
//! let table = builder.build();
//!
//! // Publish once: grouping + the (0.3, 0.3) check + SPS in one call.
//! let publication = Publisher::new(table)
//!     .sa_named("Disease")
//!     .privacy(0.3, 0.3)
//!     .retention(0.5)
//!     .seed(1)
//!     .publish()
//!     .unwrap();
//! assert!(!publication.check().is_private(), "large groups violate");
//! assert!(publication.stats().groups_sampled > 0, "so SPS sampled them");
//!
//! // The release round-trips through its on-disk format...
//! let mut bytes = Vec::new();
//! publication.save(&mut bytes).unwrap();
//! let restored = Publication::load(&bytes[..]).unwrap();
//! assert_eq!(publication, restored);
//!
//! // ...and a long-lived engine answers count queries from it.
//! let engine = QueryEngine::new(&restored);
//! let query = engine
//!     .query_from_values(&[("Gender", "male"), ("Disease", "flu")])
//!     .unwrap();
//! let answer = engine.answer(&query).unwrap();
//! // SPS scaling restores the group size in expectation (2500 here).
//! assert!((answer.support as f64 - 2500.0).abs() < 250.0);
//! assert!(answer.ci.is_some(), "answers carry confidence intervals");
//! ```
//!
//! The primitive layer (perturbation matrices, MLE reconstruction, the
//! criterion, SPS itself) lives in `rp-core`; this crate composes it and
//! adds persistence plus the serving loop. Everything here is, like the
//! rest of the workspace, a pure function of its seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
mod codec;
pub mod engine;
pub mod fault;
mod fsutil;
pub mod obs;
pub mod protocol;
pub mod publication;
pub mod publisher;
pub mod serve;
pub mod server;
pub mod service;
pub mod stream;

pub use catalog::{Catalog, CatalogError, CatalogSession, Lease};
pub use engine::{Answer, EngineError, PreparedQueries, QueryEngine};
pub use fault::{FaultHandle, FaultIo, FaultKind, FaultSchedule};
pub use obs::{Clock, HistogramSummary, MockClock, MonotonicClock, Registry, TraceEvent};
pub use protocol::{
    ErrorCode, ProtocolError, ReleaseEntry, ReleaseMeta, Request, Response, StatsSnapshot,
    WireAnswer, WireQuery, WireRecord, PROTOCOL_VERSION,
};
pub use publication::{DesignCheck, LiveGroupSnapshot, LiveState, Publication, PublicationError};
pub use publisher::{PublishError, Publisher};
pub use serve::{serve, serve_catalog};
pub use server::{Server, ServerConfig, ServerHandle, ShutdownHandle};
pub use service::{QueryService, ServiceConfig, SessionStats};
pub use stream::{InsertOutcome, StreamConfig, StreamError, StreamPublisher};
