//! Crash-safe filesystem helpers shared by the persistent artifacts.
//!
//! Every durable file this crate owns (the publication artifact, the v2
//! snapshot, a compacted WAL) is replaced through the same three-step
//! dance: write the new content to a temporary sibling, force it to
//! stable storage, then atomically rename it over the target and sync
//! the parent directory so the *rename itself* is durable. A crash at
//! any byte of the sequence leaves either the complete old file or the
//! complete new one — never a torn mix, and never a clobbered
//! predecessor (`tests/stream_crash.rs` tortures this property).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::fault::{self, CheckedFile, FaultHandle};

/// The temporary sibling a pending atomic write goes to: `<path>.tmp`,
/// in the same directory so the final rename cannot cross filesystems.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Fsyncs the directory containing `path`, making a just-completed
/// rename (or file creation) durable. A path without a parent component
/// lives in the current directory.
pub(crate) fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(dir)?.sync_all()
}

/// [`sync_parent_dir`] behind the fault facade: the directory fsync is
/// a durability point like any other, so an injected schedule can fail
/// it too.
pub(crate) fn sync_parent_dir_with(path: &Path, faults: &FaultHandle) -> io::Result<()> {
    faults.check_sync()?;
    sync_parent_dir(path)
}

/// Writes a file atomically and durably: `write` produces the content
/// into a buffered temp file in the target's directory, which is then
/// flushed, fsynced, renamed over `path`, and the parent directory
/// fsynced. On any error the temp file is removed and the previous
/// target (if one existed) is left untouched.
pub(crate) fn write_atomic<E: From<io::Error>>(
    path: &Path,
    write: impl FnOnce(&mut BufWriter<CheckedFile>) -> Result<(), E>,
) -> Result<(), E> {
    write_atomic_with(path, &fault::passthrough(), write)
}

/// [`write_atomic`] behind the fault facade: every write to the temp
/// sibling, its fsync, and the directory fsync after the rename consult
/// `faults`. The failure contract is unchanged — on any error the temp
/// file is removed and the previous target is left untouched — which is
/// also what makes retrying a whole `write_atomic_with` safe: each
/// attempt starts from a fresh temp sibling.
pub(crate) fn write_atomic_with<E: From<io::Error>>(
    path: &Path,
    faults: &FaultHandle,
    write: impl FnOnce(&mut BufWriter<CheckedFile>) -> Result<(), E>,
) -> Result<(), E> {
    let tmp = tmp_sibling(path);
    let result = (|| {
        let file = CheckedFile::new(File::create(&tmp)?, std::sync::Arc::clone(faults));
        let mut writer = BufWriter::new(file);
        write(&mut writer)?;
        writer.flush()?;
        writer.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)?;
        sync_parent_dir_with(path, faults)?;
        Ok(())
    })();
    if result.is_err() {
        // Best-effort cleanup; the target was never touched.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rp-fsutil-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_replaces_and_survives_failures() {
        let path = tmp_dir().join("atomic.txt");
        write_atomic::<io::Error>(&path, |w| w.write_all(b"first")).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        // A failing writer leaves the old content and no temp litter.
        let err = write_atomic::<io::Error>(&path, |w| {
            w.write_all(b"partial")?;
            Err(io::Error::other("boom"))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "boom");
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        assert!(!tmp_sibling(&path).exists());
        // A second successful write replaces the content.
        write_atomic::<io::Error>(&path, |w| w.write_all(b"second")).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
    }

    #[test]
    fn write_atomic_with_an_injected_fault_leaves_the_target_untouched() {
        use crate::fault::{FaultKind, FaultSchedule};
        let path = tmp_dir().join("faulted.txt");
        write_atomic::<io::Error>(&path, |w| w.write_all(b"stable")).unwrap();
        let faults: FaultHandle =
            std::sync::Arc::new(FaultSchedule::write_at(1, FaultKind::Enospc));
        let err =
            write_atomic_with::<io::Error>(&path, &faults, |w| w.write_all(b"doomed")).unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert_eq!(std::fs::read(&path).unwrap(), b"stable", "old file intact");
        assert!(!tmp_sibling(&path).exists(), "no temp litter");
    }

    #[test]
    fn stale_tmp_from_a_crashed_writer_is_overwritten() {
        let path = tmp_dir().join("stale.txt");
        write_atomic::<io::Error>(&path, |w| w.write_all(b"good")).unwrap();
        // Simulate a crash that left a half-written temp sibling behind.
        std::fs::write(tmp_sibling(&path), b"torn garb").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"good", "target untouched");
        write_atomic::<io::Error>(&path, |w| w.write_all(b"newer")).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"newer");
        assert!(!tmp_sibling(&path).exists());
    }
}
