//! The multi-tenant publication [`Catalog`]: one server, many releases.
//!
//! A catalog owns N named releases, each a full [`QueryService`] with its
//! own answer cache, aggregate counters and (optionally) live stream —
//! per-tenant isolation is enforced by construction, because tenants
//! simply never share state. Sessions route by release name using the
//! rp/3 catalog verbs (see [`crate::protocol`]): `use` rebinds the
//! session, `verb@release` qualifies a single request, and un-qualified
//! verbs keep their rp/2 meaning against the session's current release
//! (initially the catalog's default), so old transcripts replay
//! unchanged.
//!
//! ## Leases and lifecycle
//!
//! Every request checks out a [`Lease`] on its target release: a cheap
//! `Arc` clone plus a busy count on the tenant. [`Catalog::close`] sets
//! the release *closing* (new checkouts are refused), then blocks until
//! the busy count drains to zero before dropping the tenant — a close can
//! therefore never race an in-flight request's `Arc`. Hot-reload
//! ([`Catalog::reload`] / [`Catalog::reload_from_source`]) is the
//! opposite trade: it atomically swaps the service `Arc` without waiting,
//! so sessions holding the old lease finish against the old release while
//! new checkouts see the new one — no tenant's session is ever dropped by
//! another tenant's reload. [`Catalog::reload_from_source`] on a
//! streaming release additionally **seals** the old service's WAL write
//! handle before reopening the log from disk ([`QueryService::seal`]):
//! old leaseholders keep querying but degrade to read-only, so the old
//! handle can never append concurrently with — or be truncated under —
//! the rebuilt release's writer. A concurrent reload of the same release
//! is refused ([`CatalogError::Reloading`]) for the same reason.
//!
//! ## The routing fast path
//!
//! A [`CatalogSession`] caches its current release's service and lease
//! accounting, validated per request against the catalog's *epoch* — a
//! counter bumped by every open, close and reload. A hit costs a handful
//! of uncontended atomic operations instead of the catalog lock; any
//! topology change invalidates the cache, and a close that races the
//! cache is caught by re-checking the closing flag *after* the busy
//! increment (the increment-then-check / flag-then-wait handshake with
//! [`Catalog::close`]), so the drain guarantee is identical to the slow
//! path's.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::protocol::{
    is_release_name, ErrorCode, ReleaseEntry, Request, Response, PROTOCOL_VERSION,
};
use crate::publication::Publication;
use crate::service::{QueryService, ServiceConfig, SessionStats};
use crate::stream::{StreamConfig, StreamError, StreamPublisher};

/// A failure of a catalog operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// No open release has this name.
    UnknownRelease(String),
    /// The release is draining towards [`Catalog::close`]; new checkouts
    /// (and a second concurrent close) are refused.
    Closing(String),
    /// [`Catalog::open`] was given a name that is already open.
    AlreadyOpen(String),
    /// The name does not satisfy [`is_release_name`].
    BadName(String),
    /// [`Catalog::close`] refused the default release — the anchor of
    /// every rp/2-compatible session.
    DefaultRelease(String),
    /// [`Catalog::reload_from_source`] on a release opened without a
    /// source artifact path.
    NoSource(String),
    /// Loading a source artifact failed (`name`, detail).
    Load(String, String),
    /// A concurrent [`Catalog::reload_from_source`] on the same release
    /// is still rebuilding it. Two rebuilds of a streaming release would
    /// race two write handles onto one WAL file, so the second caller is
    /// refused instead.
    Reloading(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::UnknownRelease(name) => write!(f, "no release named `{name}`"),
            CatalogError::Closing(name) => write!(f, "release `{name}` is closing"),
            CatalogError::AlreadyOpen(name) => write!(f, "release `{name}` is already open"),
            CatalogError::BadName(name) => write!(
                f,
                "bad release name `{name}`: need a token without whitespace, `;`, `=` or `@`"
            ),
            CatalogError::DefaultRelease(name) => {
                write!(f, "cannot close the default release `{name}`")
            }
            CatalogError::NoSource(name) => {
                write!(f, "release `{name}` has no source artifact to reload from")
            }
            CatalogError::Load(name, detail) => {
                write!(f, "reloading release `{name}` failed: {detail}")
            }
            CatalogError::Reloading(name) => {
                write!(f, "release `{name}` is already reloading")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

impl CatalogError {
    /// The wire error this failure maps to when it reaches a session.
    /// Only routing and reload failures can: the rest guard the
    /// programmatic `open`/`close` API.
    fn wire(self) -> Response {
        let code = match self {
            CatalogError::UnknownRelease(_) | CatalogError::Closing(_) => ErrorCode::UnknownRelease,
            _ => ErrorCode::Internal,
        };
        Response::Error {
            code,
            message: self.to_string(),
        }
    }
}

/// Where a release can be rebuilt from on
/// [`Catalog::reload_from_source`].
#[derive(Debug, Clone)]
enum TenantSource {
    /// A static publication artifact.
    Artifact {
        /// The `.rppub` file the release was loaded from.
        path: PathBuf,
        /// Service knobs to rebuild with.
        config: ServiceConfig,
    },
    /// A live stream: base artifact plus its WAL. Reloading reopens the
    /// stream from disk — replaying exactly the durable prefix — which
    /// is how a degraded release (poisoned WAL) recovers.
    Stream {
        /// The base `.rppub` artifact.
        artifact: PathBuf,
        /// The write-ahead log of the live release.
        wal: PathBuf,
        /// Stream knobs (residency bound, group commit) to reopen with.
        stream_config: StreamConfig,
        /// Where `flush` persists snapshots, if anywhere.
        state_out: Option<PathBuf>,
        /// Service knobs to rebuild with.
        config: ServiceConfig,
    },
}

/// One hosted release: its service, where it can be reloaded from, and
/// its lease accounting.
#[derive(Debug)]
struct Tenant {
    service: Arc<QueryService>,
    /// Source for [`Catalog::reload_from_source`]; `None` for
    /// programmatic opens.
    source: Option<TenantSource>,
    /// Outstanding [`Lease`]s (in-flight requests and session banners).
    /// Shared with leases and route caches so releasing one never takes
    /// the catalog lock.
    busy: Arc<AtomicU64>,
    /// Set by [`Catalog::close`]: refuse new checkouts, drain, drop.
    closing: Arc<AtomicBool>,
    /// Held by an in-flight [`Catalog::reload_from_source`] (which runs
    /// outside the catalog lock): a second concurrent reload is refused
    /// rather than racing a second rebuild onto the same WAL file.
    reloading: Arc<AtomicBool>,
}

/// A catalog of named releases behind one server. See the
/// [module docs](self) for the lease/close/reload lifecycle.
#[derive(Debug)]
pub struct Catalog {
    default: String,
    state: Mutex<BTreeMap<String, Tenant>>,
    drained: Condvar,
    /// Bumped by every open, close and reload; sessions revalidate their
    /// cached route against it (see the [module docs](self)).
    epoch: AtomicU64,
}

/// Drops one unit of lease accounting. Waking [`Catalog::close`] takes
/// the lock only on the transition to zero of a closing tenant — the
/// lock round-trip (not the notify itself) is what guarantees the waiter
/// is parked on the condvar before the wakeup fires.
fn release_unit(catalog: &Catalog, busy: &AtomicU64, closing: &AtomicBool) {
    if busy.fetch_sub(1, Ordering::SeqCst) == 1 && closing.load(Ordering::SeqCst) {
        drop(catalog.state_guard());
        catalog.drained.notify_all();
    }
}

impl Catalog {
    /// Acquires the catalog state lock, recovering from poison instead
    /// of propagating the panic to every session thread. Safe because
    /// every critical section over this lock is a single map operation
    /// plus atomic flag updates — there is no multi-step invariant a
    /// mid-section panic could tear — and [`Catalog::close`] re-checks
    /// its drain predicate in a loop after every wakeup.
    fn state_guard(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Tenant>> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.state.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    /// Creates an empty catalog whose sessions start on `default` (open
    /// it before serving). The default release can never be closed.
    ///
    /// # Errors
    ///
    /// [`CatalogError::BadName`] if `default` is not a release name.
    pub fn new(default: &str) -> Result<Self, CatalogError> {
        if !is_release_name(default) {
            return Err(CatalogError::BadName(default.to_string()));
        }
        Ok(Self {
            default: default.to_string(),
            state: Mutex::new(BTreeMap::new()),
            drained: Condvar::new(),
            epoch: AtomicU64::new(0),
        })
    }

    /// The current topology epoch (see the [module docs](self)).
    fn epoch_now(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Invalidates every session's cached route.
    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// The release every session starts bound to.
    pub fn default_name(&self) -> &str {
        &self.default
    }

    /// Opens `name` over an existing service (no reload source).
    ///
    /// # Errors
    ///
    /// [`CatalogError::BadName`] or [`CatalogError::AlreadyOpen`].
    pub fn open(&self, name: &str, service: Arc<QueryService>) -> Result<(), CatalogError> {
        self.insert(name, service, None)
    }

    /// Loads the artifact at `path` and opens it as `name`, remembering
    /// the path so [`Catalog::reload_from_source`] can hot-swap it later.
    ///
    /// # Errors
    ///
    /// [`CatalogError::BadName`], [`CatalogError::AlreadyOpen`] or
    /// [`CatalogError::Load`].
    pub fn open_path(
        &self,
        name: &str,
        path: &Path,
        config: ServiceConfig,
    ) -> Result<(), CatalogError> {
        let publication = Publication::load_from_path(path)
            .map_err(|e| CatalogError::Load(name.to_string(), e.to_string()))?;
        let service = Arc::new(QueryService::from_publication(&publication, config));
        self.insert(
            name,
            service,
            Some(TenantSource::Artifact {
                path: path.to_path_buf(),
                config,
            }),
        )
    }

    /// Opens a *streaming* release as `name`: loads the base artifact at
    /// `artifact`, attaches (creating or replaying) the WAL at `wal`,
    /// and remembers both so [`Catalog::reload_from_source`] can rebuild
    /// the release from disk — the recovery path when its stream
    /// degrades after a storage fault.
    ///
    /// # Errors
    ///
    /// [`CatalogError::BadName`], [`CatalogError::AlreadyOpen`] or
    /// [`CatalogError::Load`].
    pub fn open_stream_path(
        &self,
        name: &str,
        artifact: &Path,
        wal: &Path,
        stream_config: StreamConfig,
        state_out: Option<PathBuf>,
        config: ServiceConfig,
    ) -> Result<(), CatalogError> {
        let source = TenantSource::Stream {
            artifact: artifact.to_path_buf(),
            wal: wal.to_path_buf(),
            stream_config,
            state_out,
            config,
        };
        let service = build_source(name, &source)?;
        self.insert(name, service, Some(source))
    }

    fn insert(
        &self,
        name: &str,
        service: Arc<QueryService>,
        source: Option<TenantSource>,
    ) -> Result<(), CatalogError> {
        if !is_release_name(name) {
            return Err(CatalogError::BadName(name.to_string()));
        }
        let mut state = self.state_guard();
        if state.contains_key(name) {
            return Err(CatalogError::AlreadyOpen(name.to_string()));
        }
        state.insert(
            name.to_string(),
            Tenant {
                service,
                source,
                busy: Arc::new(AtomicU64::new(0)),
                closing: Arc::new(AtomicBool::new(false)),
                reloading: Arc::new(AtomicBool::new(false)),
            },
        );
        self.bump_epoch();
        Ok(())
    }

    /// Checks out a lease on `name` for one request (or session banner).
    /// The lease pins the release against [`Catalog::close`] until
    /// dropped; a reload does *not* wait for it (the lease keeps the old
    /// service alive through its `Arc`).
    ///
    /// # Errors
    ///
    /// [`CatalogError::UnknownRelease`] or [`CatalogError::Closing`].
    pub fn checkout(&self, name: &str) -> Result<Lease<'_>, CatalogError> {
        let state = self.state_guard();
        let tenant = state
            .get(name)
            .ok_or_else(|| CatalogError::UnknownRelease(name.to_string()))?;
        if tenant.closing.load(Ordering::SeqCst) {
            return Err(CatalogError::Closing(name.to_string()));
        }
        tenant.busy.fetch_add(1, Ordering::SeqCst);
        Ok(Lease {
            catalog: self,
            name: name.to_string(),
            service: Arc::clone(&tenant.service),
            busy: Arc::clone(&tenant.busy),
            closing: Arc::clone(&tenant.closing),
        })
    }

    /// Closes `name` gracefully: marks it closing (new checkouts answer
    /// `unknown-release`), *blocks* until every outstanding lease drops,
    /// then removes the tenant. In-flight requests therefore always
    /// finish against a live service — close never races the `Arc` drop.
    ///
    /// # Errors
    ///
    /// [`CatalogError::DefaultRelease`] (the default cannot close),
    /// [`CatalogError::UnknownRelease`] or [`CatalogError::Closing`]
    /// (a concurrent close is already draining it).
    pub fn close(&self, name: &str) -> Result<(), CatalogError> {
        if name == self.default {
            return Err(CatalogError::DefaultRelease(name.to_string()));
        }
        let mut state = self.state_guard();
        {
            let tenant = state
                .get(name)
                .ok_or_else(|| CatalogError::UnknownRelease(name.to_string()))?;
            if tenant.closing.swap(true, Ordering::SeqCst) {
                return Err(CatalogError::Closing(name.to_string()));
            }
        }
        self.bump_epoch();
        while state
            .get(name)
            .map(|t| t.busy.load(Ordering::SeqCst))
            .unwrap_or(0)
            > 0
        {
            state = match self.drained.wait(state) {
                Ok(guard) => guard,
                // The predicate loop re-checks the drain condition, so
                // recovering a poisoned wait cannot return early.
                Err(poisoned) => {
                    self.state.clear_poison();
                    poisoned.into_inner()
                }
            };
        }
        state.remove(name);
        Ok(())
    }

    /// Hot-swaps `name` to a new service without waiting: new checkouts
    /// see `service` immediately, outstanding leases finish against the
    /// old one (kept alive by their `Arc` clones). Returns the new
    /// `(records, groups)`. The reload source is left unchanged.
    ///
    /// # Errors
    ///
    /// [`CatalogError::UnknownRelease`] or [`CatalogError::Closing`].
    pub fn reload(
        &self,
        name: &str,
        service: Arc<QueryService>,
    ) -> Result<(u64, u64), CatalogError> {
        let summary = service.release_summary();
        let mut state = self.state_guard();
        let tenant = state
            .get_mut(name)
            .ok_or_else(|| CatalogError::UnknownRelease(name.to_string()))?;
        if tenant.closing.load(Ordering::SeqCst) {
            return Err(CatalogError::Closing(name.to_string()));
        }
        tenant.service = service;
        self.bump_epoch();
        Ok((summary.1, summary.2))
    }

    /// Reloads `name` from the source it was opened with
    /// ([`Catalog::open_path`] or [`Catalog::open_stream_path`]). The
    /// load runs *outside* the catalog lock, so a slow disk never stalls
    /// other tenants' routing; the swap itself is [`Catalog::reload`].
    ///
    /// For a streaming release this is the **recovery path**, and it is
    /// equally safe on a *healthy* live release: before the WAL is
    /// reopened from disk the old service is **sealed**
    /// ([`QueryService::seal`] — flush, then latch its write handle
    /// refused, atomically with respect to inserts). The old handle can
    /// therefore never append concurrently with the reopened one, and
    /// the reopen's end-of-log repositioning cannot truncate an
    /// acknowledged commit racing in through it. Sessions still leased
    /// to the old service keep querying it; their `insert`/`flush` get
    /// the degraded error until they route to the new service. On a
    /// degraded stream the seal's flush refuses — the poisoned WAL
    /// wrote its last good byte long ago — and the reopen recovers
    /// exactly the durable prefix.
    ///
    /// If the rebuild itself fails, the sealed old service stays
    /// installed: queries keep answering, writes refuse, and a later
    /// `reload` retries recovery — never a corrupt WAL.
    ///
    /// # Errors
    ///
    /// [`CatalogError::UnknownRelease`], [`CatalogError::Closing`],
    /// [`CatalogError::NoSource`], [`CatalogError::Reloading`] (a
    /// concurrent reload of the same release) or [`CatalogError::Load`].
    pub fn reload_from_source(&self, name: &str) -> Result<(u64, u64), CatalogError> {
        let (source, old_service, reloading) = {
            let state = self.state_guard();
            let tenant = state
                .get(name)
                .ok_or_else(|| CatalogError::UnknownRelease(name.to_string()))?;
            if tenant.closing.load(Ordering::SeqCst) {
                return Err(CatalogError::Closing(name.to_string()));
            }
            let source = tenant
                .source
                .clone()
                .ok_or_else(|| CatalogError::NoSource(name.to_string()))?;
            // Claim the rebuild before leaving the lock: two concurrent
            // rebuilds would race two write handles onto one WAL file.
            if tenant.reloading.swap(true, Ordering::SeqCst) {
                return Err(CatalogError::Reloading(name.to_string()));
            }
            (
                source,
                Arc::clone(&tenant.service),
                Arc::clone(&tenant.reloading),
            )
        };
        let result = (|| {
            if matches!(source, TenantSource::Stream { .. }) {
                // Quiesce before reopening: flush any open commit batch,
                // then seal the old write handle so nothing can append
                // to (or be truncated out of) the WAL while — and after
                // — the rebuild reopens it. Best-effort by design: a
                // degraded stream refuses the flush but is already
                // write-refusing, which is the property the reopen
                // needs.
                let _ = old_service.seal();
                let obs = crate::obs::global();
                obs.inc("catalog.seal");
                obs.trace("catalog.seal");
            }
            let service = build_source(name, &source)?;
            self.reload(name, service)
        })();
        reloading.store(false, Ordering::SeqCst);
        if result.is_ok() {
            let obs = crate::obs::global();
            obs.inc("catalog.reload");
            obs.trace("catalog.reload");
        }
        result
    }

    /// Lists the open (non-closing) releases, sorted by name.
    pub fn list(&self) -> Vec<ReleaseEntry> {
        let state = self.state_guard();
        state
            .iter()
            .filter(|(_, tenant)| !tenant.closing.load(Ordering::SeqCst))
            .map(|(name, tenant)| {
                let (sa, records, groups, _p) = tenant.service.release_summary();
                ReleaseEntry {
                    name: name.clone(),
                    sa,
                    records,
                    groups,
                    live: tenant.service.is_streaming(),
                }
            })
            .collect()
    }

    /// Outstanding leases on `name`, or `None` if it is not open. Meant
    /// for tests and monitoring of the close/drain lifecycle.
    pub fn busy(&self, name: &str) -> Option<u64> {
        let state = self.state_guard();
        state.get(name).map(|t| t.busy.load(Ordering::SeqCst))
    }

    /// Checkpoints every release that has a live stream (WAL sync +
    /// snapshot, exactly like a client `flush`), returning per-release
    /// outcomes. Server shutdown paths call this.
    pub fn checkpoint_all(&self) -> Vec<(String, Result<Option<u64>, StreamError>)> {
        let services: Vec<(String, Arc<QueryService>)> = {
            let state = self.state_guard();
            state
                .iter()
                .map(|(name, t)| (name.clone(), Arc::clone(&t.service)))
                .collect()
        };
        services
            .into_iter()
            .map(|(name, service)| {
                let outcome = service.checkpoint();
                (name, outcome)
            })
            .collect()
    }
}

/// Builds a fresh service from a tenant's reload source. Streams are
/// reopened with passthrough (fault-free) I/O: recovery must never
/// re-enter an injected schedule.
fn build_source(name: &str, source: &TenantSource) -> Result<Arc<QueryService>, CatalogError> {
    let load = |e: &dyn std::fmt::Display| CatalogError::Load(name.to_string(), e.to_string());
    match source {
        TenantSource::Artifact { path, config } => {
            let publication = Publication::load_from_path(path).map_err(|e| load(&e))?;
            Ok(Arc::new(QueryService::from_publication(
                &publication,
                *config,
            )))
        }
        TenantSource::Stream {
            artifact,
            wal,
            stream_config,
            state_out,
            config,
        } => {
            let publication = Publication::load_from_path(artifact).map_err(|e| load(&e))?;
            let stream =
                StreamPublisher::open(publication, wal, *stream_config).map_err(|e| load(&e))?;
            Ok(Arc::new(QueryService::streaming(
                stream,
                state_out.clone(),
                *config,
            )))
        }
    }
}

/// A checked-out release: dereferences to its [`QueryService`] and holds
/// the release open (against [`Catalog::close`]) until dropped.
#[derive(Debug)]
pub struct Lease<'a> {
    catalog: &'a Catalog,
    name: String,
    service: Arc<QueryService>,
    busy: Arc<AtomicU64>,
    closing: Arc<AtomicBool>,
}

impl Lease<'_> {
    /// The catalog name this lease was checked out under.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::ops::Deref for Lease<'_> {
    type Target = QueryService;

    fn deref(&self) -> &QueryService {
        &self.service
    }
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        release_unit(self.catalog, &self.busy, &self.closing);
    }
}

/// Counts a catalog-level response into the session counters only — the
/// routing layer has no tenant to charge, and per-tenant aggregates must
/// never mix tenants.
fn count_local(session: &mut SessionStats, response: &Response) {
    session.requests += 1;
    if response.is_error() {
        session.errors += 1;
    } else {
        session.answered += 1;
    }
}

/// One session's routing state over a [`Catalog`]: the current release
/// plus the rp/3 verb dispatch. Transports build one per connection and
/// feed it lines exactly like a bare [`QueryService`].
///
/// Tenant-bound requests are charged to the target release's own
/// aggregate counters (via [`QueryService::handle`]); catalog-level verbs
/// (`use`, `releases`, `reload`, routing failures, parse errors) are
/// counted in the [`SessionStats`] only.
#[derive(Debug)]
pub struct CatalogSession<'a> {
    catalog: &'a Catalog,
    current: String,
    /// Cached route for the current release, valid while its epoch
    /// matches the catalog's (see the [module docs](self)).
    route: Option<RouteCache>,
}

/// A session's memoised checkout target: the current release's service
/// and lease accounting, tagged with the catalog epoch it was read at.
#[derive(Debug)]
struct RouteCache {
    epoch: u64,
    service: Arc<QueryService>,
    busy: Arc<AtomicU64>,
    closing: Arc<AtomicBool>,
}

impl RouteCache {
    fn from_lease(epoch: u64, lease: &Lease<'_>) -> Self {
        Self {
            epoch,
            service: Arc::clone(&lease.service),
            busy: Arc::clone(&lease.busy),
            closing: Arc::clone(&lease.closing),
        }
    }
}

impl<'a> CatalogSession<'a> {
    /// Starts a session bound to the catalog's default release.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self {
            catalog,
            current: catalog.default_name().to_string(),
            route: None,
        }
    }

    /// The release un-qualified verbs currently route to.
    pub fn current(&self) -> &str {
        &self.current
    }

    /// The session banner: the current release's parameters plus its
    /// catalog name as the trailing `release=` token. An unopened default
    /// yields the routing error instead (the transport should close).
    pub fn hello(&self) -> Response {
        match self.catalog.checkout(&self.current) {
            Ok(lease) => {
                let (sa, records, groups, p) = lease.release_summary();
                Response::Hello {
                    version: PROTOCOL_VERSION,
                    sa,
                    records,
                    groups,
                    p,
                    release: Some(self.current.clone()),
                }
            }
            Err(e) => e.wire(),
        }
    }

    /// Handles one raw request line — the catalog counterpart of
    /// [`QueryService::handle_line`]. Returns `None` for blank lines.
    pub fn handle_line(&mut self, line: &str, session: &mut SessionStats) -> Option<Response> {
        match Request::parse(line) {
            Ok(None) => None,
            Ok(Some(request)) => Some(self.handle(&request, session)),
            Err(e) => {
                let response = Response::from(e);
                count_local(session, &response);
                Some(response)
            }
        }
    }

    /// Handles one typed request: catalog verbs are answered here,
    /// everything else checks out the target release and delegates.
    pub fn handle(&mut self, request: &Request, session: &mut SessionStats) -> Response {
        match request {
            Request::Use(name) => {
                // Epoch before checkout: if a reload slips in between,
                // the cache is tagged stale and the next request re-routes.
                let epoch = self.catalog.epoch_now();
                let response = match self.catalog.checkout(name) {
                    Ok(lease) => {
                        let (sa, records, groups, p) = lease.release_summary();
                        self.current = name.clone();
                        self.route = Some(RouteCache::from_lease(epoch, &lease));
                        Response::Using {
                            release: name.clone(),
                            sa,
                            records,
                            groups,
                            p,
                        }
                    }
                    Err(e) => e.wire(),
                };
                count_local(session, &response);
                response
            }
            Request::Releases => {
                let response = Response::Releases(self.catalog.list());
                count_local(session, &response);
                response
            }
            Request::Reload(name) => {
                let response = match self.catalog.reload_from_source(name) {
                    Ok((records, groups)) => Response::Reloaded {
                        release: name.clone(),
                        records,
                        groups,
                    },
                    Err(e) => e.wire(),
                };
                count_local(session, &response);
                response
            }
            Request::At { release, inner } => match self.catalog.checkout(release) {
                Ok(lease) => lease.handle(inner, session),
                Err(e) => {
                    let response = e.wire();
                    count_local(session, &response);
                    response
                }
            },
            unqualified => self.route_current(unqualified, session),
        }
    }

    /// Routes an un-qualified request to the current release: the cached
    /// fast path when the epoch still matches, a full checkout (which
    /// repopulates the cache) otherwise.
    fn route_current(&mut self, request: &Request, session: &mut SessionStats) -> Response {
        let epoch = self.catalog.epoch_now();
        if let Some(route) = self.route.as_ref().filter(|r| r.epoch == epoch) {
            route.busy.fetch_add(1, Ordering::SeqCst);
            // Re-check *after* the increment: a close that set the flag
            // before this point either saw our unit (and waits for the
            // release below) or we see its flag and back off to the slow
            // path, which answers `unknown-release`.
            if route.closing.load(Ordering::SeqCst) {
                release_unit(self.catalog, &route.busy, &route.closing);
            } else {
                crate::obs::global().inc("catalog.route_fast");
                let response = route.service.handle(request, session);
                release_unit(self.catalog, &route.busy, &route.closing);
                return response;
            }
        }
        self.route = None;
        crate::obs::global().inc("catalog.route_slow");
        match self.catalog.checkout(&self.current) {
            Ok(lease) => {
                self.route = Some(RouteCache::from_lease(epoch, &lease));
                lease.handle(request, session)
            }
            Err(e) => {
                let response = e.wire();
                count_local(session, &response);
                response
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publisher::Publisher;
    use rp_table::{Attribute, Schema, TableBuilder};
    use std::time::{Duration, Instant};

    /// Scales by group *count*, not group size: every group stays at 200
    /// records (under its Equation-10 threshold, so SPS degenerates to UP
    /// and published counts are exact) while total `records` distinguish
    /// the releases.
    fn publication(rows: u32) -> Publication {
        const JOBS: [&str; 6] = ["eng", "doc", "law", "art", "vet", "cop"];
        let groups = (rows / 200) as usize;
        let schema = Schema::new(vec![
            Attribute::new("Job", JOBS[..groups].iter().copied()),
            Attribute::new("Disease", ["flu", "none"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..rows {
            b.push_codes(&[i % groups as u32, (i / groups as u32) % 2])
                .unwrap();
        }
        Publisher::new(b.build()).sa(1).seed(3).publish().unwrap()
    }

    fn service(rows: u32) -> Arc<QueryService> {
        Arc::new(QueryService::from_publication(
            &publication(rows),
            ServiceConfig::default(),
        ))
    }

    fn two_tenant_catalog() -> Catalog {
        let catalog = Catalog::new("alpha").unwrap();
        catalog.open("alpha", service(400)).unwrap();
        catalog.open("beta", service(800)).unwrap();
        catalog
    }

    #[test]
    fn open_close_list_lifecycle() {
        let catalog = two_tenant_catalog();
        let names: Vec<String> = catalog.list().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["alpha", "beta"]);
        assert_eq!(catalog.list()[0].records, 400);
        assert_eq!(catalog.list()[1].records, 800);
        assert_eq!(
            catalog.open("beta", service(200)).unwrap_err(),
            CatalogError::AlreadyOpen("beta".into())
        );
        assert_eq!(
            catalog.open("not a token", service(200)).unwrap_err(),
            CatalogError::BadName("not a token".into())
        );
        assert_eq!(
            catalog.open("with@at", service(200)).unwrap_err(),
            CatalogError::BadName("with@at".into())
        );
        assert_eq!(
            catalog.close("alpha").unwrap_err(),
            CatalogError::DefaultRelease("alpha".into())
        );
        catalog.close("beta").unwrap();
        assert_eq!(
            catalog.close("beta").unwrap_err(),
            CatalogError::UnknownRelease("beta".into())
        );
        assert!(catalog.checkout("beta").is_err());
        assert_eq!(catalog.list().len(), 1);
    }

    #[test]
    fn session_routes_by_use_and_qualifier() {
        let catalog = two_tenant_catalog();
        let mut s = CatalogSession::new(&catalog);
        let mut stats = SessionStats::default();

        let Response::Hello {
            release, records, ..
        } = s.hello()
        else {
            panic!("expected hello");
        };
        assert_eq!(release.as_deref(), Some("alpha"));
        assert_eq!(records, 400);

        // Un-qualified: current (default) release. The SA-only query's
        // support is the whole release, so tenants are distinguishable.
        let r = s.handle_line("count Disease=flu", &mut stats).unwrap();
        let Response::Answer(a) = r else {
            panic!("{r:?}")
        };
        assert_eq!(a.support, 400);

        // Qualified: routes without rebinding.
        let r = s.handle_line("count@beta Disease=flu", &mut stats).unwrap();
        let Response::Answer(a) = r else {
            panic!("{r:?}")
        };
        assert_eq!(a.support, 800);
        assert_eq!(s.current(), "alpha");

        // `use` rebinds and reports the target's parameters.
        let r = s.handle_line("use beta", &mut stats).unwrap();
        let Response::Using {
            release,
            records,
            sa,
            ..
        } = r
        else {
            panic!("{r:?}")
        };
        assert_eq!(release, "beta");
        assert_eq!(records, 800);
        assert_eq!(sa, "Disease");
        assert_eq!(s.current(), "beta");
        let r = s.handle_line("count Disease=flu", &mut stats).unwrap();
        let Response::Answer(a) = r else {
            panic!("{r:?}")
        };
        assert_eq!(a.support, 800);

        // Unknown names are structured errors, session keeps serving.
        for line in ["use gamma", "count@gamma Disease=flu", "reload gamma"] {
            let r = s.handle_line(line, &mut stats).unwrap();
            let Response::Error { code, .. } = r else {
                panic!("{r:?}")
            };
            assert_eq!(code, ErrorCode::UnknownRelease, "line `{line}`");
        }
        assert_eq!(stats.errors, 3);
    }

    #[test]
    fn tenant_stats_and_caches_are_isolated() {
        let catalog = two_tenant_catalog();
        let alpha = catalog.checkout("alpha").unwrap();
        let beta = catalog.checkout("beta").unwrap();
        let mut s = CatalogSession::new(&catalog);
        let mut stats = SessionStats::default();

        // Same query twice on alpha (miss + hit), once on beta (miss):
        // identical canonical keys must not cross tenants.
        s.handle_line("count Job=eng Disease=flu", &mut stats);
        s.handle_line("count Job=eng Disease=flu", &mut stats);
        s.handle_line("count@beta Job=eng Disease=flu", &mut stats);
        assert_eq!(alpha.stats().cache_misses, 1);
        assert_eq!(alpha.stats().cache_hits, 1);
        assert_eq!(alpha.stats().requests, 2);
        assert_eq!(beta.stats().cache_misses, 1);
        assert_eq!(beta.stats().cache_hits, 0);
        assert_eq!(beta.stats().requests, 1);
        assert_eq!(alpha.cached_answers(), 1);
        assert_eq!(beta.cached_answers(), 1);

        // Catalog verbs charge no tenant.
        s.handle_line("releases", &mut stats);
        s.handle_line("use beta", &mut stats);
        assert_eq!(alpha.stats().requests, 2);
        assert_eq!(beta.stats().requests, 1);
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.answered, 5);
    }

    /// Regression (ISSUE 7 satellite): close on a release with live
    /// leases must drain — block until busy hits zero — instead of racing
    /// the Arc drop.
    #[test]
    fn close_drains_outstanding_leases() {
        let catalog = Arc::new({
            let c = Catalog::new("alpha").unwrap();
            c.open("alpha", service(400)).unwrap();
            c.open("beta", service(800)).unwrap();
            c
        });
        let hold = Duration::from_millis(200);
        let worker = {
            let catalog = Arc::clone(&catalog);
            std::thread::spawn(move || {
                let lease = catalog.checkout("beta").unwrap();
                // The request is "in flight" for `hold`; the service must
                // stay answerable the whole time.
                std::thread::sleep(hold);
                let mut stats = SessionStats::default();
                let r = lease.handle(
                    &Request::parse("count Job=eng Disease=flu")
                        .unwrap()
                        .unwrap(),
                    &mut stats,
                );
                assert!(!r.is_error(), "{r:?}");
            })
        };
        // Wait until the worker holds its lease, then close.
        let deadline = Instant::now() + Duration::from_secs(5);
        while catalog.busy("beta") != Some(1) {
            assert!(Instant::now() < deadline, "worker never checked out");
            std::thread::yield_now();
        }
        let started = Instant::now();
        catalog.close("beta").unwrap();
        assert!(
            started.elapsed() >= hold / 2,
            "close returned before the lease drained"
        );
        assert_eq!(catalog.busy("beta"), None, "tenant removed after drain");
        worker.join().unwrap();
        // While closing/closed, new checkouts answer unknown-release.
        let mut s = CatalogSession::new(&catalog);
        let mut stats = SessionStats::default();
        let r = s.handle_line("use beta", &mut stats).unwrap();
        assert!(matches!(
            r,
            Response::Error {
                code: ErrorCode::UnknownRelease,
                ..
            }
        ));
    }

    #[test]
    fn reload_swaps_without_dropping_outstanding_leases() {
        let catalog = two_tenant_catalog();
        let old_lease = catalog.checkout("beta").unwrap();
        let (records, _groups) = catalog.reload("beta", service(1200)).unwrap();
        assert_eq!(records, 1200);
        // The outstanding lease still answers against the old release...
        let mut stats = SessionStats::default();
        let q = Request::parse("count Disease=flu").unwrap().unwrap();
        let Response::Answer(a) = old_lease.handle(&q, &mut stats) else {
            panic!("old lease must keep answering");
        };
        assert_eq!(a.support, 800, "old view");
        // ...while new checkouts see the new one.
        let new_lease = catalog.checkout("beta").unwrap();
        let Response::Answer(a) = new_lease.handle(&q, &mut stats) else {
            panic!("expected answer");
        };
        assert_eq!(a.support, 1200, "new view");
        // And the other tenant never noticed.
        let alpha = catalog.checkout("alpha").unwrap();
        assert_eq!(alpha.stats().requests, 0);
    }

    #[test]
    fn reload_from_source_rereads_the_artifact() {
        let dir = std::env::temp_dir().join(format!("rp-catalog-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("beta.rppub");
        publication(400).save_to_path(&path).unwrap();

        let catalog = Catalog::new("alpha").unwrap();
        catalog.open("alpha", service(400)).unwrap();
        catalog
            .open_path("beta", &path, ServiceConfig::default())
            .unwrap();
        assert_eq!(catalog.list()[1].records, 400);

        // Republish the artifact in place, then hot-reload by name.
        publication(800).save_to_path(&path).unwrap();
        let mut s = CatalogSession::new(&catalog);
        let mut stats = SessionStats::default();
        let r = s.handle_line("reload beta", &mut stats).unwrap();
        let Response::Reloaded {
            release, records, ..
        } = r
        else {
            panic!("{r:?}");
        };
        assert_eq!(release, "beta");
        assert_eq!(records, 800);
        assert_eq!(catalog.list()[1].records, 800);

        // A programmatic open has no source.
        let r = s.handle_line("reload alpha", &mut stats).unwrap();
        let Response::Error { code, message } = r else {
            panic!("{r:?}")
        };
        assert_eq!(code, ErrorCode::Internal);
        assert!(message.contains("no source artifact"), "{message}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reload_recovers_a_degraded_streaming_tenant() {
        use crate::fault::{FaultHandle, FaultSchedule};
        let dir = std::env::temp_dir().join(format!("rp-catalog-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let artifact = dir.join("live.rppub");
        let wal = dir.join("live.rpwal");
        let _ = std::fs::remove_file(&wal);
        let _ = std::fs::remove_file(format!("{}.spill", wal.display()));
        publication(400).save_to_path(&artifact).unwrap();

        let catalog = Catalog::new("alpha").unwrap();
        catalog.open("alpha", service(400)).unwrap();
        catalog
            .open_stream_path(
                "live",
                &artifact,
                &wal,
                StreamConfig::default(),
                None,
                ServiceConfig::default(),
            )
            .unwrap();
        assert!(catalog.list()[1].live, "streaming tenant reports live");

        // Swap in a fault-injected replacement; the reload source stays
        // registered. The WAL already exists, so the reopened log's
        // first flush-time fsync is sync 1 on this schedule.
        let faults: FaultHandle = Arc::new(FaultSchedule::fsync_at(1));
        let base = Publication::load_from_path(&artifact).unwrap();
        let stream =
            StreamPublisher::open_with(base, &wal, StreamConfig::default(), faults).unwrap();
        catalog
            .reload(
                "live",
                Arc::new(QueryService::streaming(
                    stream,
                    None,
                    ServiceConfig::default(),
                )),
            )
            .unwrap();

        let mut s = CatalogSession::new(&catalog);
        let mut stats = SessionStats::default();
        // The insert is acked (buffered); the flush hits the scripted
        // fsync failure and the tenant degrades.
        let r = s
            .handle_line("insert@live Job=eng Disease=flu", &mut stats)
            .unwrap();
        assert!(!r.is_error(), "{r:?}");
        let r = s.handle_line("flush@live", &mut stats).unwrap();
        assert!(
            matches!(
                r,
                Response::Error {
                    code: ErrorCode::Degraded,
                    ..
                }
            ),
            "{r:?}"
        );
        // Degraded: writes refuse, queries keep answering, and the
        // other tenant is untouched.
        let r = s
            .handle_line("insert@live Job=eng Disease=flu", &mut stats)
            .unwrap();
        assert!(
            matches!(
                r,
                Response::Error {
                    code: ErrorCode::Degraded,
                    ..
                }
            ),
            "{r:?}"
        );
        let r = s
            .handle_line("count@live Job=eng Disease=flu", &mut stats)
            .unwrap();
        assert!(!r.is_error(), "{r:?}");
        let r = s
            .handle_line("count Job=eng Disease=flu", &mut stats)
            .unwrap();
        assert!(!r.is_error(), "default tenant unaffected: {r:?}");
        // `reload` rebuilds the stream from the artifact + WAL on disk:
        // the release accepts writes again.
        let r = s.handle_line("reload live", &mut stats).unwrap();
        assert!(matches!(r, Response::Reloaded { .. }), "{r:?}");
        let r = s
            .handle_line("insert@live Job=eng Disease=flu", &mut stats)
            .unwrap();
        assert!(!r.is_error(), "recovered release ingests: {r:?}");
        let r = s.handle_line("flush@live", &mut stats).unwrap();
        assert!(matches!(r, Response::Flushed { .. }), "{r:?}");
        let _ = std::fs::remove_file(&artifact);
    }

    #[test]
    fn reloading_a_healthy_streaming_tenant_seals_the_old_write_handle() {
        let dir = std::env::temp_dir().join(format!("rp-catalog-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let artifact = dir.join("healthy.rppub");
        let wal = dir.join("healthy.rpwal");
        let _ = std::fs::remove_file(&wal);
        let _ = std::fs::remove_file(format!("{}.spill", wal.display()));
        publication(400).save_to_path(&artifact).unwrap();

        let catalog = Catalog::new("alpha").unwrap();
        catalog.open("alpha", service(400)).unwrap();
        catalog
            .open_stream_path(
                "live",
                &artifact,
                &wal,
                StreamConfig::default(),
                None,
                ServiceConfig::default(),
            )
            .unwrap();

        let mut s = CatalogSession::new(&catalog);
        let mut stats = SessionStats::default();
        // Acked-but-unsynced tail (no flush): the reload must not lose it.
        for _ in 0..3 {
            let r = s
                .handle_line("insert@live Job=eng Disease=flu", &mut stats)
                .unwrap();
            assert!(!r.is_error(), "{r:?}");
        }
        // A lease checked out *before* the reload keeps the old service
        // alive — exactly the writer that must not race the reopened WAL.
        let old_lease = catalog.checkout("live").unwrap();
        let (records, _) = catalog.reload_from_source("live").unwrap();
        assert_eq!(records, 403, "the unsynced tail was flushed, not lost");

        // The old service is sealed: its leaseholder's writes refuse...
        let ins = Request::parse("insert Job=eng Disease=flu")
            .unwrap()
            .unwrap();
        let r = old_lease.handle(&ins, &mut stats);
        assert!(
            matches!(
                r,
                Response::Error {
                    code: ErrorCode::Degraded,
                    ..
                }
            ),
            "{r:?}"
        );
        // ...while its queries keep answering.
        let q = Request::parse("count Job=eng Disease=flu")
            .unwrap()
            .unwrap();
        assert!(!old_lease.handle(&q, &mut stats).is_error());
        // The reopened service owns the WAL exclusively: it ingests,
        // flushes, and serves the full durable history.
        let r = s
            .handle_line("insert@live Job=eng Disease=flu", &mut stats)
            .unwrap();
        assert!(!r.is_error(), "{r:?}");
        let r = s.handle_line("flush@live", &mut stats).unwrap();
        assert!(matches!(r, Response::Flushed { .. }), "{r:?}");
        assert_eq!(catalog.list()[1].records, 404);
        let _ = std::fs::remove_file(&artifact);
    }

    #[test]
    fn a_concurrent_reload_of_the_same_release_is_refused() {
        let dir = std::env::temp_dir().join(format!("rp-catalog-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("guard.rppub");
        publication(400).save_to_path(&path).unwrap();
        let catalog = Catalog::new("alpha").unwrap();
        catalog.open("alpha", service(400)).unwrap();
        catalog
            .open_path("beta", &path, ServiceConfig::default())
            .unwrap();
        // Simulate a rebuild still in flight on another thread.
        {
            let state = catalog.state.lock().unwrap();
            state
                .get("beta")
                .unwrap()
                .reloading
                .store(true, Ordering::SeqCst);
        }
        assert_eq!(
            catalog.reload_from_source("beta").unwrap_err(),
            CatalogError::Reloading("beta".into())
        );
        // The finished rebuild releases the claim; reload works again.
        {
            let state = catalog.state.lock().unwrap();
            state
                .get("beta")
                .unwrap()
                .reloading
                .store(false, Ordering::SeqCst);
        }
        catalog.reload_from_source("beta").unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn catalog_verbs_on_a_bare_service_answer_unknown_release() {
        let s = service(400);
        let mut stats = SessionStats::default();
        for line in [
            "use beta",
            "releases",
            "reload beta",
            "count@beta Job=eng Disease=flu",
        ] {
            let r = s.handle_line(line, &mut stats).unwrap();
            let Response::Error { code, .. } = r else {
                panic!("expected error for `{line}`, got {r:?}");
            };
            assert_eq!(code, ErrorCode::UnknownRelease, "line `{line}`");
        }
    }
}
