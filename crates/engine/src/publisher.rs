//! The builder-style [`Publisher`]: one call from a raw table to a
//! reconstruction-private [`Publication`].
//!
//! ```text
//! Publisher::new(table).sa(attr).privacy(0.3, 0.3).retention(0.5).seed(7).publish()
//! ```
//!
//! runs the paper's enforcement pipeline — personal grouping (Section 3.2),
//! the Equation-10 design check (Corollary 4), and SPS (Section 5) — and
//! returns the published table bundled with every parameter a query side
//! needs. Unlike the free functions in `rp-core`, the builder validates all
//! parameters up front and returns typed errors instead of panicking.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::groups::{PersonalGroups, SaSpec};
use rp_core::privacy::{check_groups, PrivacyParams};
use rp_core::sps::{sps, SpsConfig};
use rp_table::{AttrId, Table, TableError};

use crate::publication::{DesignCheck, Publication};

/// Default retention probability (the paper's Table 6 bold default).
pub const DEFAULT_P: f64 = 0.5;
/// Default relative-error threshold λ.
pub const DEFAULT_LAMBDA: f64 = 0.3;
/// Default probability floor δ.
pub const DEFAULT_DELTA: f64 = 0.3;
/// Default RNG seed (shared with `rpctl`).
pub const DEFAULT_SEED: u64 = 0x5EED_0C71;

#[derive(Debug, Clone)]
enum SaSelector {
    Id(AttrId),
    Name(String),
}

/// Builder for a reconstruction-private release of one table.
///
/// All setters are chainable; every parameter except the sensitive
/// attribute has the paper's default. [`Publisher::publish`] validates the
/// whole configuration and returns a [`Publication`].
#[derive(Debug, Clone)]
pub struct Publisher {
    table: Table,
    sa: Option<SaSelector>,
    p: f64,
    lambda: f64,
    delta: f64,
    seed: u64,
    shards: usize,
    threads: usize,
}

impl Publisher {
    /// Starts a release of `table` with the paper's default parameters
    /// (`p = 0.5`, `λ = δ = 0.3`).
    pub fn new(table: Table) -> Self {
        Self {
            table,
            sa: None,
            p: DEFAULT_P,
            lambda: DEFAULT_LAMBDA,
            delta: DEFAULT_DELTA,
            seed: DEFAULT_SEED,
            shards: 1,
            threads: 1,
        }
    }

    /// Runs the grouping stage in `shards` hash-disjoint shards on up to
    /// `threads` scoped workers. Purely an execution knob: the grouping
    /// merge is deterministic, so the publication is byte-identical for
    /// every `(shards, threads)` combination — including the single-shard
    /// default.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` (at publish time).
    pub fn parallelism(mut self, shards: usize, threads: usize) -> Self {
        self.shards = shards;
        self.threads = threads;
        self
    }

    /// Marks the attribute at `attr` sensitive (all others are public).
    pub fn sa(mut self, attr: AttrId) -> Self {
        self.sa = Some(SaSelector::Id(attr));
        self
    }

    /// Marks the attribute named `name` sensitive, resolved against the
    /// table's schema at publish time.
    pub fn sa_named(mut self, name: impl Into<String>) -> Self {
        self.sa = Some(SaSelector::Name(name.into()));
        self
    }

    /// Sets the `(λ, δ)`-reconstruction-privacy requirement to enforce.
    pub fn privacy(mut self, lambda: f64, delta: f64) -> Self {
        self.lambda = lambda;
        self.delta = delta;
        self
    }

    /// Sets the retention probability `p` of the underlying uniform
    /// perturbation.
    pub fn retention(mut self, p: f64) -> Self {
        self.p = p;
        self
    }

    /// Sets the RNG seed. The release is a pure function of the input
    /// table, the parameters and this seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs grouping, the Equation-10 check and SPS, returning the release.
    ///
    /// # Errors
    ///
    /// Returns a [`PublishError`] when the sensitive attribute is missing
    /// or unresolvable, a parameter is outside its valid range, or the
    /// table shape cannot support the criterion (no public attribute, or an
    /// SA domain smaller than 2).
    pub fn publish(self) -> Result<Publication, PublishError> {
        let sa = match self.sa.ok_or(PublishError::MissingSa)? {
            SaSelector::Id(id) => {
                self.table.schema().get(id)?;
                id
            }
            SaSelector::Name(name) => self.table.schema().attr_id(&name)?,
        };
        if !(self.p > 0.0 && self.p < 1.0) {
            return Err(PublishError::InvalidRetention(self.p));
        }
        if !(self.lambda > 0.0 && self.lambda.is_finite()) {
            return Err(PublishError::InvalidLambda(self.lambda));
        }
        if !(self.delta > 0.0 && self.delta <= 1.0) {
            return Err(PublishError::InvalidDelta(self.delta));
        }
        if self.table.schema().arity() < 2 {
            return Err(PublishError::NoPublicAttributes);
        }
        let m = self.table.schema().attribute(sa).domain_size();
        if m < 2 {
            return Err(PublishError::SaDomainTooSmall { m });
        }
        let params = PrivacyParams::new(self.lambda, self.delta);
        let spec = SaSpec::new(&self.table, sa);
        // `shards != 1` (not `> 1`) so the documented shards == 0 panic in
        // `build_sharded` actually fires instead of silently running the
        // unsharded path.
        let groups = if self.shards != 1 {
            PersonalGroups::build_sharded(&self.table, spec, self.shards, self.threads)
        } else {
            PersonalGroups::build(&self.table, spec)
        };
        let report = check_groups(&groups, self.p, params);
        let check = DesignCheck {
            total_groups: groups.len(),
            violating_groups: report.violating_groups(),
            total_records: report.total_records,
            violating_records: report.violating_records,
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        let out = sps(
            &mut rng,
            &self.table,
            &groups,
            SpsConfig { p: self.p, params },
        );
        Ok(Publication::from_parts(
            out.table, sa, self.p, params, self.seed, out.stats, check,
        ))
    }
}

/// Errors raised by [`Publisher::publish`].
#[derive(Debug)]
pub enum PublishError {
    /// No sensitive attribute was selected.
    MissingSa,
    /// The sensitive attribute name or index did not resolve.
    Table(TableError),
    /// Retention `p` outside `(0, 1)`.
    InvalidRetention(f64),
    /// `λ` not positive and finite.
    InvalidLambda(f64),
    /// `δ` outside `(0, 1]`.
    InvalidDelta(f64),
    /// The table has no public attribute besides SA.
    NoPublicAttributes,
    /// The SA domain has fewer than 2 values.
    SaDomainTooSmall {
        /// The offending domain size.
        m: usize,
    },
}

impl fmt::Display for PublishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PublishError::MissingSa => {
                write!(f, "no sensitive attribute selected (call .sa or .sa_named)")
            }
            PublishError::Table(e) => write!(f, "sensitive attribute: {e}"),
            PublishError::InvalidRetention(p) => {
                // rp-analyze: allow(canonical-floats, "human-facing error message, not artifact or wire bytes")
                write!(f, "retention p must lie in (0, 1), got {p}")
            }
            PublishError::InvalidLambda(l) => {
                write!(f, "lambda must be positive and finite, got {l}")
            }
            PublishError::InvalidDelta(d) => write!(f, "delta must lie in (0, 1], got {d}"),
            PublishError::NoPublicAttributes => {
                write!(f, "table needs at least one public attribute besides SA")
            }
            PublishError::SaDomainTooSmall { m } => {
                write!(f, "SA domain must have at least 2 values, got {m}")
            }
        }
    }
}

impl std::error::Error for PublishError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PublishError::Table(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TableError> for PublishError {
    fn from(e: TableError) -> Self {
        PublishError::Table(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_core::sps::uniform_perturb;
    use rp_table::{Attribute, Schema, TableBuilder};

    fn demo_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("G", ["a", "b"]),
            Attribute::new("SA", ["x", "y"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..5000u32 {
            b.push_codes(&[0, u32::from(i % 10 >= 7)]).unwrap();
        }
        for i in 0..20u32 {
            b.push_codes(&[1, i % 2]).unwrap();
        }
        b.build()
    }

    #[test]
    fn publish_matches_manual_pipeline_exactly() {
        let t = demo_table();
        let publication = Publisher::new(t.clone())
            .sa(1)
            .privacy(0.3, 0.3)
            .retention(0.5)
            .seed(77)
            .publish()
            .unwrap();
        // The legacy free-function path with the same seed.
        let spec = SaSpec::new(&t, 1);
        let groups = PersonalGroups::build(&t, spec);
        let mut rng = StdRng::seed_from_u64(77);
        let out = sps(
            &mut rng,
            &t,
            &groups,
            SpsConfig {
                p: 0.5,
                params: PrivacyParams::new(0.3, 0.3),
            },
        );
        assert_eq!(publication.table(), &out.table);
        assert_eq!(publication.stats(), out.stats);
        assert_eq!(publication.seed(), 77);
        assert!(!publication.check().is_private(), "big group violates");
    }

    #[test]
    fn sharded_publish_is_byte_identical() {
        let t = demo_table();
        let save = |p: &Publication| {
            let mut buf = Vec::new();
            p.save(&mut buf).expect("in-memory save cannot fail");
            buf
        };
        let reference = Publisher::new(t.clone()).sa(1).seed(77).publish().unwrap();
        for (shards, threads) in [(4, 1), (8, 3), (1, 4)] {
            let sharded = Publisher::new(t.clone())
                .sa(1)
                .seed(77)
                .parallelism(shards, threads)
                .publish()
                .unwrap();
            assert_eq!(
                save(&reference),
                save(&sharded),
                "shards={shards} threads={threads}"
            );
        }
    }

    #[test]
    fn sa_by_name_resolves() {
        let p = Publisher::new(demo_table())
            .sa_named("SA")
            .publish()
            .unwrap();
        assert_eq!(p.sa(), 1);
        assert_eq!(p.sa_name(), "SA");
        assert_eq!(p.p(), DEFAULT_P);
    }

    #[test]
    fn missing_and_unknown_sa_are_errors() {
        assert!(matches!(
            Publisher::new(demo_table()).publish(),
            Err(PublishError::MissingSa)
        ));
        assert!(matches!(
            Publisher::new(demo_table()).sa_named("Nope").publish(),
            Err(PublishError::Table(TableError::UnknownAttribute(_)))
        ));
        assert!(matches!(
            Publisher::new(demo_table()).sa(9).publish(),
            Err(PublishError::Table(
                TableError::AttributeIndexOutOfRange { .. }
            ))
        ));
    }

    #[test]
    fn invalid_parameters_are_errors() {
        let t = demo_table();
        assert!(matches!(
            Publisher::new(t.clone()).sa(1).retention(1.0).publish(),
            Err(PublishError::InvalidRetention(_))
        ));
        assert!(matches!(
            Publisher::new(t.clone()).sa(1).privacy(0.0, 0.3).publish(),
            Err(PublishError::InvalidLambda(_))
        ));
        assert!(matches!(
            Publisher::new(t).sa(1).privacy(0.3, 1.5).publish(),
            Err(PublishError::InvalidDelta(_))
        ));
    }

    #[test]
    fn private_design_degenerates_to_up() {
        // A table whose groups are all tiny: check passes, SPS == UP.
        let schema = Schema::new(vec![
            Attribute::new("G", ["a", "b"]),
            Attribute::new("SA", ["x", "y"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..40u32 {
            b.push_codes(&[i % 2, (i / 2) % 2]).unwrap();
        }
        let t = b.build();
        let publication = Publisher::new(t.clone()).sa(1).seed(5).publish().unwrap();
        assert!(publication.check().is_private());
        assert_eq!(publication.stats().groups_sampled, 0);
        // With no sampling, SPS is plain UP over the sorted groups — same
        // record count.
        assert_eq!(publication.table().rows(), t.rows());
        let spec = SaSpec::new(&t, 1);
        let mut rng = StdRng::seed_from_u64(5);
        let up = uniform_perturb(&mut rng, &t, &spec, DEFAULT_P);
        assert_eq!(up.rows(), publication.table().rows());
    }

    #[test]
    fn error_display_is_informative() {
        for (e, needle) in [
            (PublishError::MissingSa, "sensitive"),
            (PublishError::InvalidRetention(2.0), "(0, 1)"),
            (PublishError::NoPublicAttributes, "public attribute"),
            (PublishError::SaDomainTooSmall { m: 1 }, "at least 2"),
        ] {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
