//! Deterministic fault injection for the storage stack.
//!
//! The durability contract (see [`crate::stream`]) is only worth its
//! words if the code that upholds it is exercised *under failure*: an
//! `fsync` that returns `EIO`, a write cut short by a full disk, a torn
//! page. This module makes those failures part of the tested state
//! space without perturbing production behavior:
//!
//! * [`FaultIo`] — the injectable I/O facade every durable writer in
//!   this crate consults before touching the disk. The default handle
//!   ([`passthrough`]) approves everything.
//! * [`FaultSchedule`] — a seeded, counter-based schedule over the same
//!   SplitMix64 discipline as the stream's per-group RNG: whether
//!   operation index *i* faults (and how) is a pure function of
//!   `(seed, i)`, so a failing run is replayable from its seed and
//!   operation count alone.
//! * [`CheckedFile`] — a [`File`] wrapper that routes writes and syncs
//!   through a [`FaultIo`] handle, translating a scheduled fault into
//!   the failure shape the real world produces: an error before any
//!   byte moves (EIO/ENOSPC), a short write that tears the tail, or a
//!   failed fsync.
//! * [`with_retry`] — bounded retry with backoff for *transient* fault
//!   domains (spill page I/O, snapshot replacement). WAL fsync failures
//!   are **never** retried: a failed `sync_data` leaves the kernel's
//!   dirty-page state unknowable, so the log manager latches poisoned
//!   instead (the fsync-poisoning rule in [`crate::stream`]).

use std::fmt;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// SplitMix64's additive constant (the golden-ratio increment) — the
/// same discipline as the stream's per-group generator, so fault draws
/// are pure functions of `(seed, op index)`.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Finalizes one SplitMix64 output from a state word.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The draw deciding whether (and how) operation `op` faults under
/// `seed`. Counter-based: independent of call interleaving or wall
/// clock, so a schedule replays exactly from `(seed, op count)`.
fn fault_draw(seed: u64, op: u64) -> u64 {
    mix(seed.wrapping_add(GOLDEN.wrapping_mul(op.wrapping_add(1))))
}

/// How many attempts [`with_retry`] makes before giving up.
const RETRY_ATTEMPTS: u32 = 3;

/// The kind of failure an injected fault simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The device refuses the write outright (`EIO`): no bytes move.
    Eio,
    /// The volume is full (`ENOSPC`): no bytes move.
    Enospc,
    /// The write tears: a prefix reaches the disk, then the call fails.
    ShortWrite,
    /// `fsync`/`fdatasync` reports failure; dirty-page fate is unknown.
    FailedFsync,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultKind::Eio => "EIO",
            FaultKind::Enospc => "ENOSPC",
            FaultKind::ShortWrite => "short write",
            FaultKind::FailedFsync => "failed fsync",
        };
        f.write_str(name)
    }
}

/// The injectable I/O facade. Durable writers consult it immediately
/// before each write or sync; the passthrough implementation approves
/// everything, a [`FaultSchedule`] vetoes sampled operation indices.
pub trait FaultIo: Send + Sync + fmt::Debug {
    /// Called before writing `len` bytes. `Ok(n)` with `n >= len` means
    /// proceed; `n < len` instructs the wrapper to put exactly `n`
    /// bytes on disk, report the shorter count, and fail the *next*
    /// write (the torn-write shape — see [`CheckedFile`]); `Err`
    /// refuses the write before any byte moves (EIO/ENOSPC).
    fn check_write(&self, len: usize) -> io::Result<usize>;

    /// Called before `sync_data`/`sync_all` (including directory
    /// syncs). `Err` simulates a failed fsync: the wrapper must report
    /// the error *without* syncing, leaving durability unknown.
    fn check_sync(&self) -> io::Result<()>;
}

/// A shared, thread-safe handle to a fault policy.
pub type FaultHandle = Arc<dyn FaultIo>;

/// The default policy: every operation is approved, nothing faults.
#[derive(Debug)]
struct Passthrough;

impl FaultIo for Passthrough {
    fn check_write(&self, len: usize) -> io::Result<usize> {
        Ok(len)
    }

    fn check_sync(&self) -> io::Result<()> {
        Ok(())
    }
}

/// A handle that never injects anything — production default.
pub fn passthrough() -> FaultHandle {
    Arc::new(Passthrough)
}

/// How a [`FaultSchedule`] decides which operations fault.
#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Fault roughly one in `period` operations, chosen by the seeded
    /// SplitMix64 draw; the draw's high bits pick the [`FaultKind`].
    Sampled { seed: u64, period: u64 },
    /// Fail exactly the `nth` sync (1-based); writes pass through.
    SyncAt { nth: u64 },
    /// Fail exactly the `nth` write (1-based) with `kind`.
    WriteAt { nth: u64, kind: FaultKind },
}

/// A deterministic, counter-based fault schedule.
///
/// Every consultation (write or sync) advances a shared operation
/// counter; whether that operation faults is a pure function of the
/// schedule parameters and the counter value. Two runs driving the
/// same operation sequence through the same schedule therefore fault
/// identically — a failing run is replayable from `(seed, op count)`.
#[derive(Debug)]
pub struct FaultSchedule {
    mode: Mode,
    ops: AtomicU64,
    writes: AtomicU64,
    syncs: AtomicU64,
    injected: AtomicU64,
}

impl FaultSchedule {
    fn new(mode: Mode) -> Self {
        Self {
            mode,
            ops: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// A seeded sampling schedule: roughly one in `period` operations
    /// faults (writes draw EIO/ENOSPC/short-write, syncs fail their
    /// fsync). `period = 0` never faults.
    pub fn sampled(seed: u64, period: u64) -> Self {
        Self::new(Mode::Sampled { seed, period })
    }

    /// A scripted schedule failing exactly the `nth` sync (1-based).
    pub fn fsync_at(nth: u64) -> Self {
        Self::new(Mode::SyncAt { nth })
    }

    /// A scripted schedule failing exactly the `nth` write (1-based)
    /// with the given kind ([`FaultKind::FailedFsync`] is treated as
    /// EIO here — syncs are scripted via [`FaultSchedule::fsync_at`]).
    pub fn write_at(nth: u64, kind: FaultKind) -> Self {
        Self::new(Mode::WriteAt { nth, kind })
    }

    /// Total operations (writes + syncs) consulted so far — together
    /// with the seed, enough to replay the run.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// How many faults the schedule has injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn inject(&self, kind: FaultKind, op: u64) -> io::Error {
        self.injected.fetch_add(1, Ordering::Relaxed);
        let obs = crate::obs::global();
        obs.inc("fault.injected");
        obs.trace("fault.injected");
        io::Error::other(format!("injected {kind} (op {op})"))
    }
}

impl FaultIo for FaultSchedule {
    fn check_write(&self, len: usize) -> io::Result<usize> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let write = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        let kind = match self.mode {
            Mode::Sampled { seed, period } => {
                let draw = fault_draw(seed, op);
                if period == 0 || !draw.is_multiple_of(period) {
                    return Ok(len);
                }
                match (draw >> 32) % 3 {
                    0 => FaultKind::Eio,
                    1 => FaultKind::Enospc,
                    _ => FaultKind::ShortWrite,
                }
            }
            Mode::SyncAt { .. } => return Ok(len),
            Mode::WriteAt { nth, kind } => {
                if write != nth {
                    return Ok(len);
                }
                kind
            }
        };
        match kind {
            FaultKind::ShortWrite if len > 1 => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                let obs = crate::obs::global();
                obs.inc("fault.injected");
                obs.trace("fault.injected");
                Ok(len / 2)
            }
            // A 1-byte (or empty) write has no non-empty strict prefix
            // to tear: approving 0 bytes would surface as `WriteZero`
            // (or spin a raw retry loop) instead of the armed torn
            // error, so the tear degrades to a whole-write EIO.
            FaultKind::ShortWrite => Err(self.inject(FaultKind::Eio, op)),
            other => Err(self.inject(other, op)),
        }
    }

    fn check_sync(&self) -> io::Result<()> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let sync = self.syncs.fetch_add(1, Ordering::Relaxed) + 1;
        let fail = match self.mode {
            Mode::Sampled { seed, period } => {
                period > 0 && fault_draw(seed, op).is_multiple_of(period)
            }
            Mode::SyncAt { nth } => sync == nth,
            Mode::WriteAt { .. } => false,
        };
        if fail {
            Err(self.inject(FaultKind::FailedFsync, op))
        } else {
            Ok(())
        }
    }
}

/// A [`File`] whose writes and syncs consult a [`FaultIo`] handle.
///
/// Reads and seeks pass through untouched. A vetoed write fails before
/// any byte moves; a short write puts the approved prefix on disk and
/// honestly reports the shorter count — the *next* write on the file is
/// the one that fails, exactly like a disk that tore a write and then
/// refused the continuation. Looping callers (`write_all`,
/// `BufWriter::flush`) therefore always see the error before any sync
/// can acknowledge, while a buffered writer is never tricked into
/// re-writing a prefix that already landed (which would duplicate bytes
/// mid-file instead of tearing the tail). A vetoed sync fails without
/// syncing, so whether the data is durable is — exactly as with a real
/// fsync failure — unknowable to the caller.
#[derive(Debug)]
pub struct CheckedFile {
    file: File,
    faults: FaultHandle,
    /// Set by an injected short write; the next write fails and clears it.
    torn: bool,
}

impl CheckedFile {
    /// Wraps `file` so its writes and syncs consult `faults`.
    pub fn new(file: File, faults: FaultHandle) -> Self {
        Self {
            file,
            faults,
            torn: false,
        }
    }

    /// Flushes file data (not necessarily metadata) to the device,
    /// consulting the fault policy first.
    pub fn sync_data(&self) -> io::Result<()> {
        self.faults.check_sync()?;
        self.file.sync_data()
    }

    /// Flushes file data and metadata to the device, consulting the
    /// fault policy first.
    pub fn sync_all(&self) -> io::Result<()> {
        self.faults.check_sync()?;
        self.file.sync_all()
    }

    /// The fault policy this file consults.
    pub fn faults(&self) -> &FaultHandle {
        &self.faults
    }
}

impl Write for CheckedFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.torn {
            self.torn = false;
            return Err(io::Error::other(
                "injected short write: the continuation after the torn prefix fails",
            ));
        }
        let allowed = self.faults.check_write(buf.len())?;
        if allowed >= buf.len() {
            return self.file.write(buf);
        }
        // A short write: the approved prefix reaches the disk — that is
        // the tear recovery has to cope with — and the shorter count is
        // reported honestly, so a buffered caller drops exactly those
        // bytes from its buffer. The follow-up write delivers the error.
        self.file.write_all(&buf[..allowed])?;
        self.torn = true;
        Ok(allowed)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

impl Read for CheckedFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.file.read(buf)
    }
}

impl Seek for CheckedFile {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.file.seek(pos)
    }
}

/// Runs `op` up to 3 times with a short doubling backoff, returning
/// the first success or the last error.
///
/// Only for operations that are safe to repeat wholesale: spill page
/// writes (a page rewrite is idempotent) and atomic file replacement
/// (each attempt builds a fresh tmp sibling). Never used for WAL
/// fsync — see the fsync-poisoning rule in [`crate::stream`].
pub fn with_retry<T, E>(mut op: impl FnMut() -> Result<T, E>) -> Result<T, E> {
    let mut backoff = Duration::from_millis(1);
    let mut last = op();
    for _ in 1..RETRY_ATTEMPTS {
        if last.is_ok() {
            return last;
        }
        std::thread::sleep(backoff);
        backoff *= 2;
        last = op();
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rp-fault-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn sampled_schedule_is_a_pure_function_of_seed_and_op() {
        let a = FaultSchedule::sampled(42, 5);
        let b = FaultSchedule::sampled(42, 5);
        let mut outcomes_a = Vec::new();
        let mut outcomes_b = Vec::new();
        for _ in 0..200 {
            outcomes_a.push(a.check_write(64).map_err(|e| e.to_string()));
            outcomes_b.push(b.check_write(64).map_err(|e| e.to_string()));
            outcomes_a.push(a.check_sync().map_err(|e| e.to_string()).map(|()| 0));
            outcomes_b.push(b.check_sync().map_err(|e| e.to_string()).map(|()| 0));
        }
        assert_eq!(outcomes_a, outcomes_b);
        assert!(a.injected() > 0, "period 5 over 400 ops must fault");
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn sampled_schedule_draws_every_fault_kind() {
        let schedule = FaultSchedule::sampled(7, 3);
        let mut kinds = std::collections::BTreeSet::new();
        for _ in 0..500 {
            match schedule.check_write(64) {
                Ok(n) if n < 64 => {
                    kinds.insert("short");
                }
                Err(e) if e.to_string().contains("EIO") => {
                    kinds.insert("eio");
                }
                Err(_) => {
                    kinds.insert("enospc");
                }
                Ok(_) => {}
            }
            if schedule.check_sync().is_err() {
                kinds.insert("fsync");
            }
        }
        assert_eq!(kinds.len(), 4, "saw only {kinds:?}");
    }

    #[test]
    fn scripted_fsync_at_fails_exactly_the_nth_sync() {
        let schedule = FaultSchedule::fsync_at(3);
        assert!(schedule.check_write(10).is_ok(), "writes pass through");
        assert!(schedule.check_sync().is_ok());
        assert!(schedule.check_sync().is_ok());
        assert!(schedule.check_sync().is_err(), "third sync fails");
        assert!(schedule.check_sync().is_ok(), "and only the third");
        assert_eq!(schedule.injected(), 1);
    }

    #[test]
    fn checked_file_short_write_leaves_the_prefix_on_disk() {
        let path = tmp("short-write");
        let schedule = Arc::new(FaultSchedule::write_at(1, FaultKind::ShortWrite));
        let mut file = CheckedFile::new(std::fs::File::create(&path).unwrap(), schedule.clone());
        // The torn call reports the landed prefix honestly; the error
        // arrives on the continuation, before any sync could ack.
        let landed = file.write(b"0123456789").unwrap();
        assert_eq!(landed, 5, "the approved prefix is reported, not the ask");
        let err = file.write(b"56789").unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        // One failure per tear: a retried continuation goes through.
        file.write_all(b"56789").unwrap();
        file.flush().unwrap();
        drop(file);
        assert_eq!(std::fs::read(&path).unwrap(), b"0123456789");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn a_short_write_on_a_one_byte_buffer_fails_whole_instead_of_ok_zero() {
        // Ok(0) would surface as `WriteZero` from `write_all` (or spin a
        // raw retry loop) without ever reaching the armed torn error.
        let schedule = FaultSchedule::write_at(1, FaultKind::ShortWrite);
        let err = schedule.check_write(1).unwrap_err();
        assert!(err.to_string().contains("EIO"), "{err}");
        assert_eq!(schedule.injected(), 1);

        let path = tmp("short-write-one-byte");
        let schedule = Arc::new(FaultSchedule::write_at(1, FaultKind::ShortWrite));
        let mut file = CheckedFile::new(std::fs::File::create(&path).unwrap(), schedule);
        let err = file.write_all(b"x").unwrap_err();
        assert!(err.to_string().contains("EIO"), "{err}");
        file.write_all(b"x").unwrap();
        file.flush().unwrap();
        drop(file);
        assert_eq!(std::fs::read(&path).unwrap(), b"x");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn passthrough_checked_file_behaves_like_a_plain_file() {
        let path = tmp("passthrough");
        let mut file = CheckedFile::new(std::fs::File::create(&path).unwrap(), passthrough());
        file.write_all(b"hello").unwrap();
        file.flush().unwrap();
        file.sync_data().unwrap();
        file.sync_all().unwrap();
        drop(file);
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn with_retry_absorbs_transient_failures_and_reports_persistent_ones() {
        let mut attempts = 0;
        let result: Result<u32, &str> = with_retry(|| {
            attempts += 1;
            if attempts < 3 {
                Err("transient")
            } else {
                Ok(attempts)
            }
        });
        assert_eq!(result, Ok(3), "third attempt succeeds");

        let mut attempts = 0;
        let result: Result<u32, &str> = with_retry(|| {
            attempts += 1;
            Err("persistent")
        });
        assert_eq!(result, Err("persistent"));
        assert_eq!(attempts, 3, "bounded: exactly three attempts");
    }
}
