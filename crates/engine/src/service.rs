//! The transport-agnostic [`QueryService`]: one shared answering service
//! behind every serve surface.
//!
//! The service owns an `Arc<`[`QueryEngine`]`>` plus everything a session
//! needs that the engine itself does not carry: the release parameters for
//! `info`, a bounded deterministic answer cache keyed by the canonical
//! query form, and aggregate [`StatsSnapshot`] counters. Transports — the
//! stdio loop in [`crate::serve()`](crate::serve::serve) and the TCP
//! listener in [`crate::server`] — are thin: they frame lines and call
//! [`QueryService::handle_line`], so every transport provably speaks the
//! identical protocol.
//!
//! ## Caching
//!
//! Single-query answers are cached under their *canonical* form — the
//! resolved [`CountQuery`] with NA conditions sorted by attribute — so
//! `count A=a SA=s`, `A=a SA=s` and `count SA=s A=a` share one entry.
//! The cache is a bounded FIFO map: eviction depends only on the request
//! stream, never on wall-time or pointer order, keeping sessions
//! deterministic. Because the engine itself is deterministic, caching can
//! never change a response byte — only the `cache_hits` / `cache_misses`
//! counters observable through `stats`.
//!
//! Batches bypass the answer cache and instead reuse the engine's
//! prepared NA match index ([`QueryEngine::prepare`]), which touches each
//! group key once for the whole batch.
//!
//! ## Degradation
//!
//! A streaming service whose WAL poisons (a failed write or fsync — see
//! the fsync-poisoning rule in [`crate::stream`]) degrades to read-only:
//! `insert`/`flush` answer `error code=degraded` carrying the durable
//! sequence number, queries keep answering from the in-memory live view
//! (which may include acknowledged-but-lost events until recovery), and
//! the `degraded`/`faults` stats counters record every refusal. Recovery
//! is reopening the stream from disk — the catalog `reload` verb.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rp_table::CountQuery;

use crate::engine::{Answer, QueryEngine};
use crate::protocol::{
    ErrorCode, ProtocolError, ReleaseMeta, Request, Response, StatsSnapshot, WireAnswer, WireQuery,
    WireRecord, PROTOCOL_VERSION,
};
use crate::publication::Publication;
use crate::stream::{StreamError, StreamPublisher};

/// The error a checkpoint/seal returns when the publisher lock was
/// poisoned by an earlier panic: an I/O-classed stream failure, so the
/// wire mapping lands on `error code=internal` and the fault counter.
fn poisoned_stream() -> StreamError {
    StreamError::Io(std::io::Error::other(
        "stream state lock poisoned by an earlier panic",
    ))
}

/// Default answer-cache capacity of [`ServiceConfig`].
pub const DEFAULT_CACHE_ENTRIES: usize = 1024;

/// Tuning knobs of a [`QueryService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Maximum cached single-query answers; `0` disables the cache.
    pub cache_entries: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            cache_entries: DEFAULT_CACHE_ENTRIES,
        }
    }
}

/// Counters of one serve session (one stdio run or one TCP connection).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Non-empty request lines read.
    pub requests: u64,
    /// Requests answered successfully.
    pub answered: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Single-query answers this session served from the shared cache.
    pub cache_hits: u64,
    /// Single-query answers this session computed into the shared cache.
    pub cache_misses: u64,
    /// Records this session inserted into the live release.
    pub inserts: u64,
    /// Requests this session had refused because the live release is
    /// degraded (same meaning as [`StatsSnapshot::degraded`]).
    pub degraded: u64,
    /// Storage faults this session observed (same meaning as
    /// [`StatsSnapshot::faults`]; lock-poison refusals, which have no
    /// session context, count only in the aggregate).
    pub faults: u64,
}

/// Bounded FIFO answer cache. Insertion order alone decides eviction, so
/// behaviour is a pure function of the request stream.
#[derive(Debug)]
struct AnswerCache {
    capacity: usize,
    map: HashMap<CountQuery, Answer>,
    order: VecDeque<CountQuery>,
}

impl AnswerCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, key: &CountQuery) -> Option<Answer> {
        self.map.get(key).copied()
    }

    fn insert(&mut self, key: CountQuery, answer: Answer) {
        if self.capacity == 0 {
            return;
        }
        if self.map.len() == self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
        if self.map.insert(key.clone(), answer).is_none() {
            self.order.push_back(key);
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Drops every cached answer whose query satisfies `stale` — the
    /// insert path's surgical invalidation. Eviction order keeps the
    /// surviving entries' relative FIFO positions.
    fn invalidate_matching(&mut self, stale: impl Fn(&CountQuery) -> bool) {
        self.map.retain(|query, _| !stale(query));
        self.order.retain(|query| self.map.contains_key(query));
    }
}

/// Aggregate counters shared by all sessions of one service.
#[derive(Debug, Default)]
struct AggregateStats {
    requests: AtomicU64,
    answered: AtomicU64,
    errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    sessions: AtomicU64,
    inserts: AtomicU64,
    degraded: AtomicU64,
    faults: AtomicU64,
}

/// The live half of a streaming service: the stream publisher behind a
/// lock, plus where `flush` persists snapshots.
#[derive(Debug)]
struct StreamBackend {
    publisher: Mutex<StreamPublisher>,
    state_out: Option<PathBuf>,
}

/// Histogram handles resolved once at construction. The per-request path
/// runs for every line of every session, so it pays atomics only — never
/// a registry name lookup.
struct HotPathObs {
    handle: &'static crate::obs::Histogram,
    parse: &'static crate::obs::Histogram,
    execute: &'static crate::obs::Histogram,
    cache_lookup: &'static crate::obs::Histogram,
}

impl HotPathObs {
    fn resolve() -> Self {
        let obs = crate::obs::global();
        Self {
            handle: obs.histogram("service.handle"),
            parse: obs.histogram("service.parse"),
            execute: obs.histogram("service.execute"),
            cache_lookup: obs.histogram("service.cache_lookup"),
        }
    }
}

impl std::fmt::Debug for HotPathObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("HotPathObs")
    }
}

/// The shared query-answering service every transport runs over.
///
/// Cheap to share: transports hold an `Arc<QueryService>` and call
/// [`QueryService::handle_line`] per request line. All interior state
/// (cache, counters) is synchronized, so concurrent sessions are safe.
#[derive(Debug)]
pub struct QueryService {
    engine: Arc<QueryEngine>,
    release: Option<ReleaseMeta>,
    /// The live stream behind `insert`/`flush`; `None` for a static
    /// (batch-artifact) service, which answers them `read-only`.
    stream: Option<StreamBackend>,
    /// Mirrors the cache's capacity so a disabled cache (capacity 0)
    /// never takes the lock on the hot path.
    cache_capacity: usize,
    cache: Mutex<AnswerCache>,
    stats: AggregateStats,
    obs: HotPathObs,
}

impl QueryService {
    /// Builds a service over an existing engine. `release` supplies the
    /// artifact parameters reported by `info` (pass `None` for engines
    /// built from raw histograms).
    pub fn new(
        engine: Arc<QueryEngine>,
        release: Option<ReleaseMeta>,
        config: ServiceConfig,
    ) -> Self {
        Self {
            engine,
            release,
            stream: None,
            cache_capacity: config.cache_entries,
            cache: Mutex::new(AnswerCache::new(config.cache_entries)),
            stats: AggregateStats::default(),
            obs: HotPathObs::resolve(),
        }
    }

    /// Builds a *streaming* service: the engine answers the immutable
    /// base of `stream` and every answer is merged with the live view,
    /// so `insert`/`flush` work and queries see new records immediately.
    /// `state_out` is where `flush` writes the v2 snapshot (WAL sync
    /// alone when `None`).
    ///
    /// Cache coherence is surgical: an insert to group *g* invalidates
    /// exactly the cached answers whose NA match set contains *g* —
    /// other entries keep serving hits.
    pub fn streaming(
        stream: StreamPublisher,
        state_out: Option<PathBuf>,
        config: ServiceConfig,
    ) -> Self {
        let base = stream.base();
        let release = ReleaseMeta {
            lambda: base.params().lambda(),
            delta: base.params().delta(),
            seed: base.seed(),
        };
        let mut service = Self::new(Arc::new(QueryEngine::new(base)), Some(release), config);
        service.stream = Some(StreamBackend {
            publisher: Mutex::new(stream),
            state_out,
        });
        service
    }

    /// Whether this service accepts `insert`/`flush`.
    pub fn is_streaming(&self) -> bool {
        self.stream.is_some()
    }

    /// Syncs the WAL and writes the snapshot (when configured), exactly
    /// like a client `flush`. Transport shutdown paths call this so a
    /// server never exits with acknowledged-but-unsynced events. Returns
    /// the durable event count, or `None` on a static service.
    ///
    /// # Errors
    ///
    /// Returns the stream failure (I/O, snapshot serialization).
    pub fn checkpoint(&self) -> Result<Option<u64>, StreamError> {
        let Some(backend) = &self.stream else {
            return Ok(None);
        };
        let mut publisher = backend.publisher.lock().map_err(|_| poisoned_stream())?;
        let events = publisher.flush()?;
        if let Some(path) = &backend.state_out {
            publisher.save_snapshot(path)?;
        }
        Ok(Some(events))
    }

    /// Like [`QueryService::checkpoint`], but additionally **seals** the
    /// live stream's WAL write handle: after this returns, no code path
    /// through this service can ever write the WAL file again —
    /// `insert`/`flush` refuse with the degraded error — while queries
    /// keep answering from memory. The flush and the seal latch happen
    /// under one publisher lock acquisition, so no insert can slip
    /// between them. The catalog calls this before rebuilding a
    /// streaming release from disk; a static service seals trivially.
    ///
    /// # Errors
    ///
    /// The stream failure; an already-degraded stream refuses the flush
    /// but stays sealed by its own poison either way.
    pub fn seal(&self) -> Result<Option<u64>, StreamError> {
        let Some(backend) = &self.stream else {
            return Ok(None);
        };
        let mut publisher = backend.publisher.lock().map_err(|_| poisoned_stream())?;
        let events = publisher.seal()?;
        if let Some(path) = &backend.state_out {
            publisher.save_snapshot(path)?;
        }
        Ok(Some(events))
    }

    /// Builds the engine from a publication artifact and wraps it in a
    /// service carrying the artifact's `(λ, δ, seed)` for `info`.
    pub fn from_publication(publication: &Publication, config: ServiceConfig) -> Self {
        let release = ReleaseMeta {
            lambda: publication.params().lambda(),
            delta: publication.params().delta(),
            seed: publication.seed(),
        };
        Self::new(
            Arc::new(QueryEngine::new(publication)),
            Some(release),
            config,
        )
    }

    /// The engine answering for this service.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// Records and groups of the served view: the base release plus, on
    /// a streaming service, the live records and the live groups whose
    /// key the base does not already contain (a shared key is one group,
    /// not two).
    fn records_groups(&self) -> (u64, u64) {
        let mut records = self.engine.records();
        let mut groups = self.engine.groups() as u64;
        if let Some(backend) = &self.stream {
            // A poisoned stream lock degrades `hello`/`info` to the
            // base view rather than killing the session thread.
            if let Ok(publisher) = backend.publisher.lock() {
                records += publisher.live_records();
                groups += publisher.novel_live_groups() as u64;
            }
        }
        (records, groups)
    }

    /// The versioned banner a transport must send when a session opens.
    pub fn hello(&self) -> Response {
        let (records, groups) = self.records_groups();
        Response::Hello {
            version: PROTOCOL_VERSION,
            sa: self.sa_name().to_string(),
            records,
            groups,
            p: self.engine.p(),
            release: None,
        }
    }

    /// The banner-level parameters of the served view, as reported by
    /// [`Response::Using`] when a catalog session binds this release:
    /// `(sa, records, groups, p)`.
    pub fn release_summary(&self) -> (String, u64, u64, f64) {
        let (records, groups) = self.records_groups();
        (self.sa_name().to_string(), records, groups, self.engine.p())
    }

    /// The sensitive attribute's name in the served schema.
    pub fn sa_name(&self) -> &str {
        self.engine.schema().attribute(self.engine.sa()).name()
    }

    /// Registers one session start (transports call this once per
    /// connection or stdio run).
    pub fn session_started(&self) {
        self.stats.sessions.fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot of the aggregate counters across all sessions.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.stats.requests.load(Ordering::Relaxed),
            answered: self.stats.answered.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.stats.cache_misses.load(Ordering::Relaxed),
            sessions: self.stats.sessions.load(Ordering::Relaxed),
            inserts: self.stats.inserts.load(Ordering::Relaxed),
            degraded: self.stats.degraded.load(Ordering::Relaxed),
            faults: self.stats.faults.load(Ordering::Relaxed),
        }
    }

    /// Whether the live stream behind this service is degraded (its WAL
    /// poisoned after a failed write or fsync). Always `false` on a
    /// static service.
    pub fn is_degraded(&self) -> bool {
        self.stream
            .as_ref()
            .is_some_and(|b| match b.publisher.lock() {
                Ok(publisher) => publisher.degraded().is_some(),
                // A lock poisoned by a panicking writer *is* a degraded
                // stream: the WAL's true state is unknowable.
                Err(_) => true,
            })
    }

    /// Cached single-query answers currently held.
    pub fn cached_answers(&self) -> usize {
        self.cache_guard().len()
    }

    /// Handles one raw request line: parse, dispatch, count. Returns
    /// `None` for blank lines (not counted as requests). This is the
    /// single entry point every transport uses, so a request line maps to
    /// the same response bytes on every transport.
    pub fn handle_line(&self, line: &str, session: &mut SessionStats) -> Option<Response> {
        // Sampled stage timing (1-in-8 requests; see `crate::obs`), via
        // the handles resolved at construction. The three stages share
        // one clock-read pair per boundary: parse = t1-t0,
        // execute = t2-t1, handle = t2-t0.
        let obs = crate::obs::global();
        let t0 = (obs.enabled() && self.obs.handle.tick_sampled()).then(|| obs.now_ns());
        let parsed = Request::parse(line);
        let t1 = t0.map(|_| obs.now_ns());
        let response = match parsed {
            Ok(None) => None,
            Ok(Some(request)) => Some(self.handle(&request, session)),
            Err(e) => {
                let response = Response::from(e);
                self.count(&response, session);
                Some(response)
            }
        };
        if let (Some(t0), Some(t1), Some(_)) = (t0, t1, response.as_ref()) {
            let t2 = obs.now_ns();
            self.obs.parse.record(t1.saturating_sub(t0));
            self.obs.execute.record(t2.saturating_sub(t1));
            self.obs.handle.record(t2.saturating_sub(t0));
        }
        response
    }

    /// Handles one typed request (already parsed). Exposed for clients
    /// that build [`Request`] values directly, e.g. benches. Counts the
    /// request exactly like [`QueryService::handle_line`].
    pub fn handle(&self, request: &Request, session: &mut SessionStats) -> Response {
        let response = self.dispatch(request, session);
        self.count(&response, session);
        response
    }

    fn count(&self, response: &Response, session: &mut SessionStats) {
        session.requests += 1;
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        if response.is_error() {
            session.errors += 1;
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
        } else {
            session.answered += 1;
            self.stats.answered.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn dispatch(&self, request: &Request, session: &mut SessionStats) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::Quit => Response::Bye,
            Request::Info => {
                let (records, groups) = self.records_groups();
                Response::Info {
                    sa: self.sa_name().to_string(),
                    records,
                    groups,
                    p: self.engine.p(),
                    release: self.release,
                }
            }
            // Snapshot precedes counting, so a `stats` response reports
            // the totals as of just before the request itself.
            Request::Stats => Response::Stats(self.stats()),
            Request::Metrics => self.metrics(),
            Request::Trace(n) => {
                let obs = crate::obs::global();
                let limit = n
                    .map(|n| usize::try_from(n).unwrap_or(usize::MAX))
                    .unwrap_or(usize::MAX);
                Response::Trace(
                    obs.trace_recent(limit)
                        .into_iter()
                        .map(|e| crate::protocol::WireTraceEvent {
                            seq: e.seq,
                            label: e.label,
                        })
                        .collect(),
                )
            }
            Request::Query(q) => match self.answer_single(q, session) {
                Ok(a) => Response::Answer(a),
                Err(e) => Response::from(e),
            },
            Request::Batch(queries) => match self.answer_batch(queries) {
                Ok(answers) => Response::Batch(answers),
                Err(e) => Response::from(e),
            },
            Request::Insert(record) => match self.insert(record, session) {
                Ok(r) => r,
                Err(e) => Response::from(e),
            },
            Request::Flush => match self.flush(session) {
                Ok(r) => r,
                Err(e) => Response::from(e),
            },
            // Catalog verbs (rp/3) are routed by a
            // [`crate::catalog::CatalogSession`] before they ever reach a
            // service; a bare single-release service refuses them.
            Request::Use(_) | Request::Releases | Request::Reload(_) | Request::At { .. } => {
                Response::Error {
                    code: ErrorCode::UnknownRelease,
                    message:
                        "this server hosts a single release; catalog verbs need `rpctl serve --release NAME=PATH ...`"
                            .to_string(),
                }
            }
        }
    }

    /// Renders the rp/5 `metrics` response: the process-global
    /// observability registry merged with this service's own
    /// [`StatsSnapshot`] exposed under `service.*` names, everything
    /// sorted by name within its class. Like `stats`, the snapshot is
    /// taken before the in-flight request is counted.
    fn metrics(&self) -> Response {
        let obs = crate::obs::global();
        let stats = self.stats();
        let mut counters: Vec<(String, u64)> = obs
            .counter_values()
            .into_iter()
            .map(|(name, value)| (name.to_string(), value))
            .collect();
        counters.extend([
            ("service.answered".to_string(), stats.answered),
            ("service.cache_hits".to_string(), stats.cache_hits),
            ("service.cache_misses".to_string(), stats.cache_misses),
            ("service.degraded".to_string(), stats.degraded),
            ("service.errors".to_string(), stats.errors),
            ("service.faults".to_string(), stats.faults),
            ("service.inserts".to_string(), stats.inserts),
            ("service.requests".to_string(), stats.requests),
            ("service.sessions".to_string(), stats.sessions),
        ]);
        counters.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let histograms = obs
            .histogram_summaries()
            .into_iter()
            .map(|(name, s)| crate::protocol::WireHistogram {
                name: name.to_string(),
                count: s.count,
                p50: s.p50,
                p90: s.p90,
                p99: s.p99,
                max: s.max,
                mean: if s.count == 0 {
                    0.0
                } else {
                    s.sum as f64 / s.count as f64
                },
            })
            .collect();
        Response::Metrics {
            counters,
            histograms,
        }
    }

    /// Acquires the stream publisher lock, converting poison into a
    /// typed `error code=internal` response. The publisher owns
    /// multi-step WAL/commit state, so a thread that panicked while
    /// holding this lock may have left that state inconsistent — the
    /// only safe serving behavior is to refuse stream operations (the
    /// fault counter records each refusal) while static queries keep
    /// answering.
    fn publisher_guard<'a>(
        &self,
        backend: &'a StreamBackend,
    ) -> Result<std::sync::MutexGuard<'a, StreamPublisher>, ProtocolError> {
        backend.publisher.lock().map_err(|_| {
            self.stats.faults.fetch_add(1, Ordering::Relaxed);
            ProtocolError {
                code: ErrorCode::Internal,
                message:
                    "stream state lock poisoned by an earlier panic; restart or reload the release"
                        .to_string(),
            }
        })
    }

    /// Acquires the answer-cache lock. The cache is correctness-
    /// transparent — it only ever re-serves answers the deterministic
    /// engine already computed — so poison is recovered by resetting to
    /// an empty cache and continuing, never by failing the request.
    fn cache_guard(&self) -> std::sync::MutexGuard<'_, AnswerCache> {
        match self.cache.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.cache.clear_poison();
                let mut guard = poisoned.into_inner();
                *guard = AnswerCache::new(self.cache_capacity);
                guard
            }
        }
    }

    /// The streaming backend, or the `read-only` refusal.
    fn backend(&self) -> Result<&StreamBackend, ProtocolError> {
        self.stream.as_ref().ok_or_else(|| ProtocolError {
            code: ErrorCode::ReadOnly,
            message: "serving a static artifact; restart `rpctl serve` with --wal to ingest"
                .to_string(),
        })
    }

    /// One insert: log + apply under the stream lock, then surgically
    /// drop exactly the cached answers whose match set contains the
    /// record's group.
    fn insert(
        &self,
        record: &WireRecord,
        session: &mut SessionStats,
    ) -> Result<Response, ProtocolError> {
        let backend = self.backend()?;
        let mut publisher = self.publisher_guard(backend)?;
        let values: Vec<(&str, &str)> = record
            .fields
            .iter()
            .map(|(c, v)| (c.as_str(), v.as_str()))
            .collect();
        let outcome = publisher
            .insert_values(&values)
            .map_err(|e| self.stream_error(e, session))?;
        if self.cache_capacity > 0 {
            self.cache_guard()
                .invalidate_matching(|query| publisher.key_matches(&outcome.key, query));
        }
        session.inserts += 1;
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        Ok(Response::Inserted {
            group_size: outcome.group_size,
            republished: outcome.republished,
        })
    }

    /// One flush: WAL sync plus snapshot (when configured). This is the
    /// durability barrier that closes any open group-commit batch —
    /// inserts are acknowledged when logged, durable when flushed.
    fn flush(&self, session: &mut SessionStats) -> Result<Response, ProtocolError> {
        self.backend()?; // read-only refusal before any I/O
        let events = self
            .checkpoint()
            .map_err(|e| self.stream_error(e, session))?
            .ok_or_else(|| ProtocolError {
                code: ErrorCode::Internal,
                message: "stream backend vanished during flush".to_string(),
            })?;
        Ok(Response::Flushed { events })
    }

    /// Maps a stream failure to its wire error, recording the fault
    /// counters (aggregate *and* per-session): a degradation counts
    /// under both `degraded` and `faults`, any other I/O failure under
    /// `faults` alone, and validation failures (bad column, unknown
    /// value) under neither.
    fn stream_error(&self, e: StreamError, session: &mut SessionStats) -> ProtocolError {
        let code = match &e {
            StreamError::Degraded { .. } => ErrorCode::Degraded,
            StreamError::Io(_) => ErrorCode::Internal,
            _ => ErrorCode::BadQuery,
        };
        match code {
            ErrorCode::Degraded => {
                session.degraded += 1;
                session.faults += 1;
                self.stats.degraded.fetch_add(1, Ordering::Relaxed);
                self.stats.faults.fetch_add(1, Ordering::Relaxed);
            }
            ErrorCode::Internal => {
                session.faults += 1;
                self.stats.faults.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        ProtocolError {
            code,
            message: e.to_string(),
        }
    }

    /// Resolves a wire query against the engine schema, splitting the SA
    /// condition out of the NA conditions.
    fn resolve(&self, q: &WireQuery) -> Result<CountQuery, ProtocolError> {
        let conditions: Vec<(&str, &str)> = q
            .conditions
            .iter()
            .map(|(c, v)| (c.as_str(), v.as_str()))
            .collect();
        self.engine
            .query_from_values(&conditions)
            .map_err(|e| ProtocolError {
                code: ErrorCode::BadQuery,
                message: e.to_string(),
            })
    }

    /// The canonical cache key of a resolved query: NA conditions sorted
    /// by `(attribute, code)`, so condition order on the wire is
    /// irrelevant to cache identity.
    fn canonical_key(query: &CountQuery) -> Result<CountQuery, ProtocolError> {
        let mut na: Vec<(rp_table::AttrId, u32)> = query
            .na_pattern()
            .terms()
            .iter()
            .filter_map(|&(attr, term)| match term {
                rp_table::Term::Value(code) => Some((attr, code)),
                rp_table::Term::Wildcard => None,
            })
            .collect();
        na.sort_unstable();
        CountQuery::new(na, query.sa_attr(), query.sa_value()).map_err(|e| ProtocolError {
            code: ErrorCode::Internal,
            message: format!("canonicalization produced an invalid query: {e}"),
        })
    }

    /// The base-release counts for a canonical query.
    fn base_counts(&self, key: &CountQuery) -> Result<(u64, u64), ProtocolError> {
        self.engine.counts(key).map_err(|e| ProtocolError {
            code: ErrorCode::BadQuery,
            message: e.to_string(),
        })
    }

    /// Answers one canonical query against the served view: base-release
    /// counts (bitmap-indexed) plus, on a streaming service, the live
    /// groups' counts, estimated over the union.
    fn compute(&self, key: &CountQuery) -> Result<Answer, ProtocolError> {
        let (mut support, mut observed) = self.base_counts(key)?;
        if let Some(backend) = &self.stream {
            let publisher = self.publisher_guard(backend)?;
            let (live_support, live_observed) = publisher.live_support_observed(key);
            support += live_support;
            observed += live_observed;
        }
        Ok(self.engine.answer_from_counts(support, observed))
    }

    /// Records a cache miss and stores the freshly computed answer.
    fn cache_miss(&self, key: CountQuery, answer: Answer, session: &mut SessionStats) {
        session.cache_misses += 1;
        self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.cache_guard().insert(key, answer);
    }

    fn answer_single(
        &self,
        q: &WireQuery,
        session: &mut SessionStats,
    ) -> Result<WireAnswer, ProtocolError> {
        let query = self.resolve(q)?;
        let key = Self::canonical_key(&query)?;
        if self.cache_capacity > 0 {
            // Sampled lookup timing; the same 1-in-8 decision gates the
            // cache hit/miss trace events so tracing stays off the
            // steady-state hot path.
            let obs = crate::obs::global();
            let t0 = (obs.enabled() && self.obs.cache_lookup.tick_sampled()).then(|| obs.now_ns());
            let hit = self.cache_guard().get(&key);
            if let Some(t0) = t0 {
                self.obs
                    .cache_lookup
                    .record(obs.now_ns().saturating_sub(t0));
                obs.trace(if hit.is_some() {
                    "cache.hit"
                } else {
                    "cache.miss"
                });
            }
            if let Some(hit) = hit {
                session.cache_hits += 1;
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(WireAnswer::from(&hit));
            }
        }
        let answer = match &self.stream {
            None => {
                // Static release: the engine is immutable, so computing
                // and caching need no coordination.
                let (support, observed) = self.base_counts(&key)?;
                let answer = self.engine.answer_from_counts(support, observed);
                if self.cache_capacity > 0 {
                    self.cache_miss(key, answer, session);
                }
                answer
            }
            Some(backend) => {
                // Streaming: compute AND cache under the stream lock.
                // Releasing it in between would race with a concurrent
                // insert — its surgical invalidation could run before
                // this (pre-insert) answer lands in the cache, leaving a
                // stale entry behind. The insert path takes the locks in
                // the same stream→cache order, so no deadlock.
                let publisher = self.publisher_guard(backend)?;
                let (mut support, mut observed) = self.base_counts(&key)?;
                let (live_support, live_observed) = publisher.live_support_observed(&key);
                support += live_support;
                observed += live_observed;
                let answer = self.engine.answer_from_counts(support, observed);
                if self.cache_capacity > 0 {
                    self.cache_miss(key, answer, session);
                }
                answer
            }
        };
        Ok(WireAnswer::from(&answer))
    }

    fn answer_batch(&self, queries: &[WireQuery]) -> Result<Vec<WireAnswer>, ProtocolError> {
        let mut resolved = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            resolved.push(self.resolve(q).map_err(|e| ProtocolError {
                code: e.code,
                message: format!("query {}: {}", i + 1, e.message),
            })?);
        }
        if self.stream.is_some() {
            // The live view has no prepared index (its group set mutates
            // under inserts); answer query by query over base + live.
            return resolved
                .iter()
                .map(|q| self.compute(q).map(|a| WireAnswer::from(&a)))
                .collect();
        }
        let prepared = self.engine.prepare(&resolved).map_err(|e| ProtocolError {
            code: ErrorCode::Internal,
            message: e.to_string(),
        })?;
        let answers = self
            .engine
            .answer_batch(&resolved, &prepared)
            .map_err(|e| ProtocolError {
                code: ErrorCode::Internal,
                message: e.to_string(),
            })?;
        Ok(answers.iter().map(WireAnswer::from).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publisher::Publisher;
    use rp_table::{Attribute, Schema, TableBuilder};

    fn fixture_publication() -> Publication {
        let schema = Schema::new(vec![
            Attribute::new("Job", ["eng", "doc"]),
            Attribute::new("Disease", ["flu", "none"]),
        ]);
        // Balanced SA frequencies keep both 200-record groups under their
        // Equation-10 threshold, so SPS degenerates to UP and published
        // record counts stay exact — the protocol tests rely on that.
        let mut b = TableBuilder::new(schema);
        for i in 0..400u32 {
            b.push_codes(&[i % 2, (i / 2) % 2]).unwrap();
        }
        Publisher::new(b.build()).sa(1).seed(3).publish().unwrap()
    }

    fn service(cache_entries: usize) -> QueryService {
        QueryService::from_publication(&fixture_publication(), ServiceConfig { cache_entries })
    }

    fn query(line: &str) -> Request {
        Request::parse(line).unwrap().unwrap()
    }

    #[test]
    fn single_query_answers_and_counts() {
        let s = service(8);
        let mut session = SessionStats::default();
        let r = s
            .handle_line("count Job=eng Disease=flu", &mut session)
            .unwrap();
        let Response::Answer(a) = r else {
            panic!("expected answer, got {r:?}");
        };
        assert_eq!(a.support, 200);
        assert!(a.ci.is_some());
        assert_eq!(session.requests, 1);
        assert_eq!(session.answered, 1);
        assert_eq!(session.cache_misses, 1);
        assert_eq!(s.stats().answered, 1);
    }

    #[test]
    fn cache_hits_on_canonical_form() {
        let s = service(8);
        let mut session = SessionStats::default();
        let first = s.handle_line("count Job=eng Disease=flu", &mut session);
        // Same query: no verb, reordered conditions — still one entry.
        let second = s.handle_line("Disease=flu Job=eng", &mut session);
        assert_eq!(first, second);
        assert_eq!(session.cache_misses, 1);
        assert_eq!(session.cache_hits, 1);
        assert_eq!(s.cached_answers(), 1);
    }

    #[test]
    fn disabled_cache_counts_nothing_and_answers_identically() {
        let cached = service(8);
        let uncached = service(0);
        let mut sc = SessionStats::default();
        let mut su = SessionStats::default();
        for line in ["count Job=eng Disease=flu", "count Job=eng Disease=flu"] {
            let a = cached.handle_line(line, &mut sc).unwrap();
            let b = uncached.handle_line(line, &mut su).unwrap();
            assert_eq!(a.encode(), b.encode(), "cache changed response bytes");
        }
        assert_eq!(sc.cache_hits, 1);
        assert_eq!(su.cache_hits, 0);
        assert_eq!(su.cache_misses, 0);
        assert_eq!(uncached.cached_answers(), 0);
    }

    #[test]
    fn cache_eviction_is_fifo_and_bounded() {
        let s = service(2);
        let mut session = SessionStats::default();
        s.handle_line("Job=eng Disease=flu", &mut session);
        s.handle_line("Job=doc Disease=flu", &mut session);
        s.handle_line("Job=eng Disease=none", &mut session); // evicts the first
        assert_eq!(s.cached_answers(), 2);
        s.handle_line("Job=eng Disease=flu", &mut session); // must recompute
        assert_eq!(session.cache_misses, 4);
        assert_eq!(session.cache_hits, 0);
    }

    #[test]
    fn batch_reuses_prepared_index_and_matches_singles() {
        let s = service(0);
        let mut session = SessionStats::default();
        let batch = s.handle(
            &query("batch Job=eng Disease=flu; Job=doc Disease=none"),
            &mut session,
        );
        let Response::Batch(answers) = batch else {
            panic!("expected batch, got {batch:?}");
        };
        assert_eq!(answers.len(), 2);
        for (q, expected) in [
            ("count Job=eng Disease=flu", answers[0]),
            ("count Job=doc Disease=none", answers[1]),
        ] {
            let Response::Answer(single) = s.handle(&query(q), &mut session) else {
                panic!("expected answer");
            };
            assert_eq!(single, expected);
        }
    }

    #[test]
    fn batch_errors_name_the_failing_query() {
        let s = service(0);
        let mut session = SessionStats::default();
        let r = s.handle(&query("batch Job=eng Disease=flu; Job=doc"), &mut session);
        let Response::Error { code, message } = r else {
            panic!("expected error, got {r:?}");
        };
        assert_eq!(code, ErrorCode::BadQuery);
        assert!(message.starts_with("query 2:"), "{message}");
    }

    #[test]
    fn error_codes_distinguish_failure_classes() {
        let s = service(0);
        let mut session = SessionStats::default();
        for (line, want) in [
            ("garbage", ErrorCode::UnknownCommand),
            ("count Job", ErrorCode::Parse),
            ("count Job=eng", ErrorCode::BadQuery), // missing SA condition
            ("count Nope=1 Disease=flu", ErrorCode::BadQuery),
            ("count Job=zzz Disease=flu", ErrorCode::BadQuery),
            // Duplicated column: typed error, never the Pattern panic.
            ("count Job=eng Job=doc Disease=flu", ErrorCode::BadQuery),
        ] {
            let r = s.handle_line(line, &mut session).unwrap();
            let Response::Error { code, .. } = r else {
                panic!("expected error for `{line}`, got {r:?}");
            };
            assert_eq!(code, want, "line `{line}`");
        }
        assert_eq!(session.errors, 6);
        assert_eq!(s.stats().errors, 6);
    }

    #[test]
    fn info_reports_release_parameters() {
        let s = service(0);
        let mut session = SessionStats::default();
        let r = s.handle(&Request::Info, &mut session);
        let Response::Info {
            sa,
            records,
            p,
            release,
            ..
        } = r
        else {
            panic!("expected info");
        };
        assert_eq!(sa, "Disease");
        assert_eq!(records, 400);
        assert_eq!(p, 0.5);
        let meta = release.expect("built from a publication");
        assert_eq!(meta.lambda, 0.3);
        assert_eq!(meta.seed, 3);
    }

    #[test]
    fn stats_snapshot_counts_sessions() {
        let s = service(4);
        s.session_started();
        s.session_started();
        let mut session = SessionStats::default();
        s.handle_line("ping", &mut session);
        let Some(Response::Stats(snap)) = s.handle_line("stats", &mut session) else {
            panic!("expected stats");
        };
        assert_eq!(snap.sessions, 2);
        // The snapshot is taken before the in-flight `stats` request is
        // counted, so it reports only the ping.
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.answered, 1);
    }

    fn stream_tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rp-service-stream-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(format!("{}.spill", path.display()));
        path
    }

    fn streaming_service(name: &str, cache_entries: usize) -> QueryService {
        let stream = StreamPublisher::open(
            fixture_publication(),
            &stream_tmp(name),
            crate::stream::StreamConfig::default(),
        )
        .unwrap();
        QueryService::streaming(stream, None, ServiceConfig { cache_entries })
    }

    #[test]
    fn static_service_answers_insert_and_flush_read_only() {
        let s = service(4);
        let mut session = SessionStats::default();
        for line in ["insert Job=eng Disease=flu", "flush"] {
            let r = s.handle_line(line, &mut session).unwrap();
            let Response::Error { code, .. } = r else {
                panic!("expected read-only error for `{line}`, got {r:?}");
            };
            assert_eq!(code, ErrorCode::ReadOnly, "line `{line}`");
        }
        assert!(!s.is_streaming());
        assert_eq!(s.checkpoint().unwrap(), None);
    }

    #[test]
    fn streaming_service_merges_live_records_into_answers() {
        let s = streaming_service("merge.rpwal", 8);
        assert!(s.is_streaming());
        let mut session = SessionStats::default();
        let before = s.handle_line("count Job=eng Disease=flu", &mut session);
        let Some(Response::Answer(a0)) = before else {
            panic!("expected answer, got {before:?}");
        };
        assert_eq!(a0.support, 200, "base-only before any insert");
        // Three inserts into the queried group: the next answer must see
        // exactly them (the fixture's SPS degenerated to UP, and inserts
        // retain published size exactly).
        for _ in 0..3 {
            let r = s
                .handle_line("insert Job=eng Disease=flu", &mut session)
                .unwrap();
            assert!(
                matches!(
                    r,
                    Response::Inserted {
                        group_size: _,
                        republished: false
                    }
                ),
                "{r:?}"
            );
        }
        let after = s.handle_line("count Job=eng Disease=flu", &mut session);
        let Some(Response::Answer(a1)) = after else {
            panic!("expected answer, got {after:?}");
        };
        assert_eq!(a1.support, 203, "live records joined the support");
        assert_eq!(session.inserts, 3);
        assert_eq!(s.stats().inserts, 3);
        // The banner and info also report the live view — records grow,
        // but inserts into existing base keys add no new groups.
        let Response::Hello {
            records, groups, ..
        } = s.hello()
        else {
            panic!("expected hello");
        };
        assert_eq!(records, 403);
        assert_eq!(groups, 2, "shared keys must not double-count");
        // Batches agree with singles on the merged view.
        let batch = s.handle_line(
            "batch Job=eng Disease=flu; Job=doc Disease=none",
            &mut session,
        );
        let Some(Response::Batch(answers)) = batch else {
            panic!("expected batch, got {batch:?}");
        };
        assert_eq!(answers[0], a1);
    }

    #[test]
    fn insert_invalidates_exactly_the_intersecting_cache_entries() {
        let s = streaming_service("invalidate.rpwal", 16);
        let mut session = SessionStats::default();
        // Warm three entries: two touching Job=eng, one disjoint.
        s.handle_line("count Job=eng Disease=flu", &mut session);
        s.handle_line("count Disease=flu", &mut session); // wildcard Job: intersects every group
        s.handle_line("count Job=doc Disease=none", &mut session);
        assert_eq!(s.cached_answers(), 3);
        assert_eq!(session.cache_misses, 3);
        // Insert into (Job=eng): must evict the two intersecting entries
        // and keep the doc-only one.
        s.handle_line("insert Job=eng Disease=none", &mut session)
            .unwrap();
        assert_eq!(s.cached_answers(), 1, "only the disjoint entry survives");
        s.handle_line("count Job=doc Disease=none", &mut session);
        assert_eq!(session.cache_hits, 1, "disjoint entry still serves hits");
        // The invalidated query recomputes against the live view.
        let r = s.handle_line("count Job=eng Disease=flu", &mut session);
        let Some(Response::Answer(a)) = r else {
            panic!("expected answer");
        };
        assert_eq!(a.support, 201);
        assert_eq!(session.cache_misses, 4);
    }

    #[test]
    fn flush_syncs_and_writes_the_snapshot() {
        let state_out = stream_tmp("flush-state.rppub");
        let stream = StreamPublisher::open(
            fixture_publication(),
            &stream_tmp("flush.rpwal"),
            crate::stream::StreamConfig::default(),
        )
        .unwrap();
        let s = QueryService::streaming(stream, Some(state_out.clone()), ServiceConfig::default());
        let mut session = SessionStats::default();
        s.handle_line("insert Job=eng Disease=flu", &mut session)
            .unwrap();
        let r = s.handle_line("flush", &mut session).unwrap();
        let Response::Flushed { events } = r else {
            panic!("expected flushed, got {r:?}");
        };
        assert_eq!(events, 1);
        let snapshot = Publication::load_from_path(&state_out).unwrap();
        assert_eq!(snapshot.live().unwrap().inserted, 1);
        assert_eq!(snapshot.table().rows(), 401);
    }

    #[test]
    fn a_degraded_stream_refuses_writes_but_keeps_answering() {
        use crate::fault::{FaultHandle, FaultSchedule};
        // `Wal::create_with` consumes syncs 1–2, so the first flush-time
        // fsync is sync 3 — scripted to fail.
        let faults: FaultHandle = Arc::new(FaultSchedule::fsync_at(3));
        let stream = StreamPublisher::open_with(
            fixture_publication(),
            &stream_tmp("degraded.rpwal"),
            crate::stream::StreamConfig::default(),
            faults,
        )
        .unwrap();
        let s = QueryService::streaming(stream, None, ServiceConfig::default());
        let mut session = SessionStats::default();
        s.handle_line("insert Job=eng Disease=flu", &mut session)
            .unwrap();
        // The flush hits the scripted fsync failure: the stream poisons
        // and the response reports the durable boundary.
        let r = s.handle_line("flush", &mut session).unwrap();
        let Response::Error { code, message } = r else {
            panic!("expected degraded error, got {r:?}");
        };
        assert_eq!(code, ErrorCode::Degraded);
        assert!(message.contains("durable through event 0"), "{message}");
        assert!(s.is_degraded());
        // Writes keep refusing — the fsync is never retried-and-acked...
        let r = s
            .handle_line("insert Job=eng Disease=flu", &mut session)
            .unwrap();
        assert!(
            matches!(
                r,
                Response::Error {
                    code: ErrorCode::Degraded,
                    ..
                }
            ),
            "{r:?}"
        );
        // ...while queries keep answering from the in-memory live view.
        let r = s
            .handle_line("count Job=eng Disease=flu", &mut session)
            .unwrap();
        let Response::Answer(a) = r else {
            panic!("expected answer, got {r:?}");
        };
        assert_eq!(a.support, 201, "the acked insert still answers");
        let snap = s.stats();
        assert_eq!(snap.degraded, 2);
        assert_eq!(snap.faults, 2);
        // Per-session stats carry the same schema as the aggregate.
        assert_eq!(session.degraded, 2);
        assert_eq!(session.faults, 2);
    }

    #[test]
    fn bad_insert_records_are_typed_errors() {
        let s = streaming_service("bad-insert.rpwal", 4);
        let mut session = SessionStats::default();
        for line in [
            "insert Job=eng",                     // missing columns
            "insert Job=eng Job=doc Disease=flu", // duplicate
            "insert Job=zzz Disease=flu",         // unknown value
            "insert Nope=1 Job=eng Disease=flu",  // unknown column
        ] {
            let r = s.handle_line(line, &mut session).unwrap();
            let Response::Error { code, .. } = r else {
                panic!("expected error for `{line}`, got {r:?}");
            };
            assert_eq!(code, ErrorCode::BadQuery, "line `{line}`");
        }
        assert_eq!(s.stats().inserts, 0, "failed inserts are not counted");
    }

    #[test]
    fn metrics_merges_service_counters_sorted() {
        let s = service(4);
        let mut session = SessionStats::default();
        s.handle_line("ping", &mut session);
        s.handle_line("count Job=eng Disease=flu", &mut session);
        let Some(r) = s.handle_line("metrics", &mut session) else {
            panic!("expected metrics response");
        };
        let Response::Metrics {
            counters,
            histograms,
        } = &r
        else {
            panic!("expected metrics, got {r:?}");
        };
        // Sorted by name within each class, and the service.* counters
        // report this service's own snapshot (taken before the metrics
        // request itself is counted).
        let names: Vec<&str> = counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "counters must be sorted");
        let lookup = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .1
        };
        assert_eq!(lookup("service.requests"), 2);
        assert_eq!(lookup("service.answered"), 2);
        assert_eq!(lookup("service.cache_misses"), 1);
        let hist_names: Vec<&str> = histograms.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(hist_names, crate::obs::HISTOGRAMS.to_vec());
        // The response is wire-canonical: parse ∘ encode = id.
        assert_eq!(Response::parse(&r.encode()).unwrap(), r);
        // `trace` answers a canonical line too.
        let Some(t) = s.handle_line("trace 4", &mut session) else {
            panic!("expected trace response");
        };
        assert!(matches!(t, Response::Trace(_)), "{t:?}");
        assert_eq!(Response::parse(&t.encode()).unwrap(), t);
    }

    #[test]
    fn hello_is_versioned() {
        let s = service(0);
        let Response::Hello {
            version,
            sa,
            records,
            ..
        } = s.hello()
        else {
            panic!("expected hello");
        };
        assert_eq!(version, PROTOCOL_VERSION);
        assert_eq!(sa, "Disease");
        assert_eq!(records, 400);
    }
}
