//! The transport-agnostic [`QueryService`]: one shared answering service
//! behind every serve surface.
//!
//! The service owns an `Arc<`[`QueryEngine`]`>` plus everything a session
//! needs that the engine itself does not carry: the release parameters for
//! `info`, a bounded deterministic answer cache keyed by the canonical
//! query form, and aggregate [`StatsSnapshot`] counters. Transports — the
//! stdio loop in [`crate::serve()`](crate::serve::serve) and the TCP
//! listener in [`crate::server`] — are thin: they frame lines and call
//! [`QueryService::handle_line`], so every transport provably speaks the
//! identical protocol.
//!
//! ## Caching
//!
//! Single-query answers are cached under their *canonical* form — the
//! resolved [`CountQuery`] with NA conditions sorted by attribute — so
//! `count A=a SA=s`, `A=a SA=s` and `count SA=s A=a` share one entry.
//! The cache is a bounded FIFO map: eviction depends only on the request
//! stream, never on wall-time or pointer order, keeping sessions
//! deterministic. Because the engine itself is deterministic, caching can
//! never change a response byte — only the `cache_hits` / `cache_misses`
//! counters observable through `stats`.
//!
//! Batches bypass the answer cache and instead reuse the engine's
//! prepared NA match index ([`QueryEngine::prepare`]), which touches each
//! group key once for the whole batch.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rp_table::CountQuery;

use crate::engine::{Answer, QueryEngine};
use crate::protocol::{
    ErrorCode, ProtocolError, ReleaseMeta, Request, Response, StatsSnapshot, WireAnswer, WireQuery,
    PROTOCOL_VERSION,
};
use crate::publication::Publication;

/// Default answer-cache capacity of [`ServiceConfig`].
pub const DEFAULT_CACHE_ENTRIES: usize = 1024;

/// Tuning knobs of a [`QueryService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Maximum cached single-query answers; `0` disables the cache.
    pub cache_entries: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            cache_entries: DEFAULT_CACHE_ENTRIES,
        }
    }
}

/// Counters of one serve session (one stdio run or one TCP connection).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Non-empty request lines read.
    pub requests: u64,
    /// Requests answered successfully.
    pub answered: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Single-query answers this session served from the shared cache.
    pub cache_hits: u64,
    /// Single-query answers this session computed into the shared cache.
    pub cache_misses: u64,
}

/// Bounded FIFO answer cache. Insertion order alone decides eviction, so
/// behaviour is a pure function of the request stream.
#[derive(Debug)]
struct AnswerCache {
    capacity: usize,
    map: HashMap<CountQuery, Answer>,
    order: VecDeque<CountQuery>,
}

impl AnswerCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, key: &CountQuery) -> Option<Answer> {
        self.map.get(key).copied()
    }

    fn insert(&mut self, key: CountQuery, answer: Answer) {
        if self.capacity == 0 {
            return;
        }
        if self.map.len() == self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
        if self.map.insert(key.clone(), answer).is_none() {
            self.order.push_back(key);
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Aggregate counters shared by all sessions of one service.
#[derive(Debug, Default)]
struct AggregateStats {
    requests: AtomicU64,
    answered: AtomicU64,
    errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    sessions: AtomicU64,
}

/// The shared query-answering service every transport runs over.
///
/// Cheap to share: transports hold an `Arc<QueryService>` and call
/// [`QueryService::handle_line`] per request line. All interior state
/// (cache, counters) is synchronized, so concurrent sessions are safe.
#[derive(Debug)]
pub struct QueryService {
    engine: Arc<QueryEngine>,
    release: Option<ReleaseMeta>,
    /// Mirrors the cache's capacity so a disabled cache (capacity 0)
    /// never takes the lock on the hot path.
    cache_capacity: usize,
    cache: Mutex<AnswerCache>,
    stats: AggregateStats,
}

impl QueryService {
    /// Builds a service over an existing engine. `release` supplies the
    /// artifact parameters reported by `info` (pass `None` for engines
    /// built from raw histograms).
    pub fn new(
        engine: Arc<QueryEngine>,
        release: Option<ReleaseMeta>,
        config: ServiceConfig,
    ) -> Self {
        Self {
            engine,
            release,
            cache_capacity: config.cache_entries,
            cache: Mutex::new(AnswerCache::new(config.cache_entries)),
            stats: AggregateStats::default(),
        }
    }

    /// Builds the engine from a publication artifact and wraps it in a
    /// service carrying the artifact's `(λ, δ, seed)` for `info`.
    pub fn from_publication(publication: &Publication, config: ServiceConfig) -> Self {
        let release = ReleaseMeta {
            lambda: publication.params().lambda(),
            delta: publication.params().delta(),
            seed: publication.seed(),
        };
        Self::new(
            Arc::new(QueryEngine::new(publication)),
            Some(release),
            config,
        )
    }

    /// The engine answering for this service.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// The versioned banner a transport must send when a session opens.
    pub fn hello(&self) -> Response {
        Response::Hello {
            version: PROTOCOL_VERSION,
            sa: self.sa_name().to_string(),
            records: self.engine.records(),
            groups: self.engine.groups() as u64,
            p: self.engine.p(),
        }
    }

    /// The sensitive attribute's name in the served schema.
    pub fn sa_name(&self) -> &str {
        self.engine.schema().attribute(self.engine.sa()).name()
    }

    /// Registers one session start (transports call this once per
    /// connection or stdio run).
    pub fn session_started(&self) {
        self.stats.sessions.fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot of the aggregate counters across all sessions.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.stats.requests.load(Ordering::Relaxed),
            answered: self.stats.answered.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.stats.cache_misses.load(Ordering::Relaxed),
            sessions: self.stats.sessions.load(Ordering::Relaxed),
        }
    }

    /// Cached single-query answers currently held.
    pub fn cached_answers(&self) -> usize {
        self.cache.lock().expect("cache lock poisoned").len()
    }

    /// Handles one raw request line: parse, dispatch, count. Returns
    /// `None` for blank lines (not counted as requests). This is the
    /// single entry point every transport uses, so a request line maps to
    /// the same response bytes on every transport.
    pub fn handle_line(&self, line: &str, session: &mut SessionStats) -> Option<Response> {
        match Request::parse(line) {
            Ok(None) => None,
            Ok(Some(request)) => Some(self.handle(&request, session)),
            Err(e) => {
                let response = Response::from(e);
                self.count(&response, session);
                Some(response)
            }
        }
    }

    /// Handles one typed request (already parsed). Exposed for clients
    /// that build [`Request`] values directly, e.g. benches. Counts the
    /// request exactly like [`QueryService::handle_line`].
    pub fn handle(&self, request: &Request, session: &mut SessionStats) -> Response {
        let response = self.dispatch(request, session);
        self.count(&response, session);
        response
    }

    fn count(&self, response: &Response, session: &mut SessionStats) {
        session.requests += 1;
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        if response.is_error() {
            session.errors += 1;
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
        } else {
            session.answered += 1;
            self.stats.answered.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn dispatch(&self, request: &Request, session: &mut SessionStats) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::Quit => Response::Bye,
            Request::Info => Response::Info {
                sa: self.sa_name().to_string(),
                records: self.engine.records(),
                groups: self.engine.groups() as u64,
                p: self.engine.p(),
                release: self.release,
            },
            // Snapshot precedes counting, so a `stats` response reports
            // the totals as of just before the request itself.
            Request::Stats => Response::Stats(self.stats()),
            Request::Query(q) => match self.answer_single(q, session) {
                Ok(a) => Response::Answer(a),
                Err(e) => Response::from(e),
            },
            Request::Batch(queries) => match self.answer_batch(queries) {
                Ok(answers) => Response::Batch(answers),
                Err(e) => Response::from(e),
            },
        }
    }

    /// Resolves a wire query against the engine schema, splitting the SA
    /// condition out of the NA conditions.
    fn resolve(&self, q: &WireQuery) -> Result<CountQuery, ProtocolError> {
        let conditions: Vec<(&str, &str)> = q
            .conditions
            .iter()
            .map(|(c, v)| (c.as_str(), v.as_str()))
            .collect();
        self.engine
            .query_from_values(&conditions)
            .map_err(|e| ProtocolError {
                code: ErrorCode::BadQuery,
                message: e.to_string(),
            })
    }

    /// The canonical cache key of a resolved query: NA conditions sorted
    /// by `(attribute, code)`, so condition order on the wire is
    /// irrelevant to cache identity.
    fn canonical_key(query: &CountQuery) -> CountQuery {
        let mut na: Vec<(rp_table::AttrId, u32)> = query
            .na_pattern()
            .terms()
            .iter()
            .filter_map(|&(attr, term)| match term {
                rp_table::Term::Value(code) => Some((attr, code)),
                rp_table::Term::Wildcard => None,
            })
            .collect();
        na.sort_unstable();
        CountQuery::new(na, query.sa_attr(), query.sa_value())
            .expect("canonicalizing a valid query cannot re-introduce the SA")
    }

    fn answer_single(
        &self,
        q: &WireQuery,
        session: &mut SessionStats,
    ) -> Result<WireAnswer, ProtocolError> {
        let query = self.resolve(q)?;
        let key = Self::canonical_key(&query);
        if self.cache_capacity > 0 {
            if let Some(hit) = self.cache.lock().expect("cache lock poisoned").get(&key) {
                session.cache_hits += 1;
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(WireAnswer::from(&hit));
            }
        }
        let answer = self.engine.answer(&key).map_err(|e| ProtocolError {
            code: ErrorCode::BadQuery,
            message: e.to_string(),
        })?;
        if self.cache_capacity > 0 {
            session.cache_misses += 1;
            self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            self.cache
                .lock()
                .expect("cache lock poisoned")
                .insert(key, answer);
        }
        Ok(WireAnswer::from(&answer))
    }

    fn answer_batch(&self, queries: &[WireQuery]) -> Result<Vec<WireAnswer>, ProtocolError> {
        let mut resolved = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            resolved.push(self.resolve(q).map_err(|e| ProtocolError {
                code: e.code,
                message: format!("query {}: {}", i + 1, e.message),
            })?);
        }
        let prepared = self.engine.prepare(&resolved).map_err(|e| ProtocolError {
            code: ErrorCode::Internal,
            message: e.to_string(),
        })?;
        let answers = self
            .engine
            .answer_batch(&resolved, &prepared)
            .map_err(|e| ProtocolError {
                code: ErrorCode::Internal,
                message: e.to_string(),
            })?;
        Ok(answers.iter().map(WireAnswer::from).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publisher::Publisher;
    use rp_table::{Attribute, Schema, TableBuilder};

    fn fixture_publication() -> Publication {
        let schema = Schema::new(vec![
            Attribute::new("Job", ["eng", "doc"]),
            Attribute::new("Disease", ["flu", "none"]),
        ]);
        // Balanced SA frequencies keep both 200-record groups under their
        // Equation-10 threshold, so SPS degenerates to UP and published
        // record counts stay exact — the protocol tests rely on that.
        let mut b = TableBuilder::new(schema);
        for i in 0..400u32 {
            b.push_codes(&[i % 2, (i / 2) % 2]).unwrap();
        }
        Publisher::new(b.build()).sa(1).seed(3).publish().unwrap()
    }

    fn service(cache_entries: usize) -> QueryService {
        QueryService::from_publication(&fixture_publication(), ServiceConfig { cache_entries })
    }

    fn query(line: &str) -> Request {
        Request::parse(line).unwrap().unwrap()
    }

    #[test]
    fn single_query_answers_and_counts() {
        let s = service(8);
        let mut session = SessionStats::default();
        let r = s
            .handle_line("count Job=eng Disease=flu", &mut session)
            .unwrap();
        let Response::Answer(a) = r else {
            panic!("expected answer, got {r:?}");
        };
        assert_eq!(a.support, 200);
        assert!(a.ci.is_some());
        assert_eq!(session.requests, 1);
        assert_eq!(session.answered, 1);
        assert_eq!(session.cache_misses, 1);
        assert_eq!(s.stats().answered, 1);
    }

    #[test]
    fn cache_hits_on_canonical_form() {
        let s = service(8);
        let mut session = SessionStats::default();
        let first = s.handle_line("count Job=eng Disease=flu", &mut session);
        // Same query: no verb, reordered conditions — still one entry.
        let second = s.handle_line("Disease=flu Job=eng", &mut session);
        assert_eq!(first, second);
        assert_eq!(session.cache_misses, 1);
        assert_eq!(session.cache_hits, 1);
        assert_eq!(s.cached_answers(), 1);
    }

    #[test]
    fn disabled_cache_counts_nothing_and_answers_identically() {
        let cached = service(8);
        let uncached = service(0);
        let mut sc = SessionStats::default();
        let mut su = SessionStats::default();
        for line in ["count Job=eng Disease=flu", "count Job=eng Disease=flu"] {
            let a = cached.handle_line(line, &mut sc).unwrap();
            let b = uncached.handle_line(line, &mut su).unwrap();
            assert_eq!(a.encode(), b.encode(), "cache changed response bytes");
        }
        assert_eq!(sc.cache_hits, 1);
        assert_eq!(su.cache_hits, 0);
        assert_eq!(su.cache_misses, 0);
        assert_eq!(uncached.cached_answers(), 0);
    }

    #[test]
    fn cache_eviction_is_fifo_and_bounded() {
        let s = service(2);
        let mut session = SessionStats::default();
        s.handle_line("Job=eng Disease=flu", &mut session);
        s.handle_line("Job=doc Disease=flu", &mut session);
        s.handle_line("Job=eng Disease=none", &mut session); // evicts the first
        assert_eq!(s.cached_answers(), 2);
        s.handle_line("Job=eng Disease=flu", &mut session); // must recompute
        assert_eq!(session.cache_misses, 4);
        assert_eq!(session.cache_hits, 0);
    }

    #[test]
    fn batch_reuses_prepared_index_and_matches_singles() {
        let s = service(0);
        let mut session = SessionStats::default();
        let batch = s.handle(
            &query("batch Job=eng Disease=flu; Job=doc Disease=none"),
            &mut session,
        );
        let Response::Batch(answers) = batch else {
            panic!("expected batch, got {batch:?}");
        };
        assert_eq!(answers.len(), 2);
        for (q, expected) in [
            ("count Job=eng Disease=flu", answers[0]),
            ("count Job=doc Disease=none", answers[1]),
        ] {
            let Response::Answer(single) = s.handle(&query(q), &mut session) else {
                panic!("expected answer");
            };
            assert_eq!(single, expected);
        }
    }

    #[test]
    fn batch_errors_name_the_failing_query() {
        let s = service(0);
        let mut session = SessionStats::default();
        let r = s.handle(&query("batch Job=eng Disease=flu; Job=doc"), &mut session);
        let Response::Error { code, message } = r else {
            panic!("expected error, got {r:?}");
        };
        assert_eq!(code, ErrorCode::BadQuery);
        assert!(message.starts_with("query 2:"), "{message}");
    }

    #[test]
    fn error_codes_distinguish_failure_classes() {
        let s = service(0);
        let mut session = SessionStats::default();
        for (line, want) in [
            ("garbage", ErrorCode::UnknownCommand),
            ("count Job", ErrorCode::Parse),
            ("count Job=eng", ErrorCode::BadQuery), // missing SA condition
            ("count Nope=1 Disease=flu", ErrorCode::BadQuery),
            ("count Job=zzz Disease=flu", ErrorCode::BadQuery),
            // Duplicated column: typed error, never the Pattern panic.
            ("count Job=eng Job=doc Disease=flu", ErrorCode::BadQuery),
        ] {
            let r = s.handle_line(line, &mut session).unwrap();
            let Response::Error { code, .. } = r else {
                panic!("expected error for `{line}`, got {r:?}");
            };
            assert_eq!(code, want, "line `{line}`");
        }
        assert_eq!(session.errors, 6);
        assert_eq!(s.stats().errors, 6);
    }

    #[test]
    fn info_reports_release_parameters() {
        let s = service(0);
        let mut session = SessionStats::default();
        let r = s.handle(&Request::Info, &mut session);
        let Response::Info {
            sa,
            records,
            p,
            release,
            ..
        } = r
        else {
            panic!("expected info");
        };
        assert_eq!(sa, "Disease");
        assert_eq!(records, 400);
        assert_eq!(p, 0.5);
        let meta = release.expect("built from a publication");
        assert_eq!(meta.lambda, 0.3);
        assert_eq!(meta.seed, 3);
    }

    #[test]
    fn stats_snapshot_counts_sessions() {
        let s = service(4);
        s.session_started();
        s.session_started();
        let mut session = SessionStats::default();
        s.handle_line("ping", &mut session);
        let Some(Response::Stats(snap)) = s.handle_line("stats", &mut session) else {
            panic!("expected stats");
        };
        assert_eq!(snap.sessions, 2);
        // The snapshot is taken before the in-flight `stats` request is
        // counted, so it reports only the ping.
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.answered, 1);
    }

    #[test]
    fn hello_is_versioned() {
        let s = service(0);
        let Response::Hello {
            version,
            sa,
            records,
            ..
        } = s.hello()
        else {
            panic!("expected hello");
        };
        assert_eq!(version, PROTOCOL_VERSION);
        assert_eq!(sa, "Disease");
        assert_eq!(records, 400);
    }
}
