//! The line-oriented session loop: one transport function shared by
//! every surface.
//!
//! [`serve`] drives a [`QueryService`] over any `BufRead`/`Write` pair —
//! stdin/stdout for `rpctl serve`, a `TcpStream` for each connection of
//! [`crate::server::Server`]. Because both surfaces run this exact
//! function over the same shared service, a given request stream produces
//! byte-identical response bytes on either transport (the root
//! integration suite proves it).
//!
//! A session opens with the versioned `HELLO` banner, then answers one
//! request per line until `quit` or end of input:
//!
//! ```text
//! HELLO rp/5 sa=Disease records=6000 groups=6 p=0.5
//! > info
//! publication sa=Disease records=6000 groups=6 p=0.5 lambda=0.3 delta=0.3 seed=7
//! > count Job=engineer Disease=asthma
//! est=412.331 support=2000 observed=309 f=0.2061655 ci95=0.162,0.249
//! > garbage
//! error code=unknown-command unknown command `garbage`; try count/batch/info/stats/ping/quit
//! > quit
//! bye
//! ```
//!
//! Protocol-level failures answer a structured `error code=...` line and
//! the loop keeps serving — a bad request must never take a session down.
//! Only transport I/O errors abort the session. That includes the
//! per-connection read/write deadlines [`crate::server::Server`] may arm:
//! when a socket read times out, the blocking read surfaces
//! `WouldBlock`/`TimedOut`, the server treats the session as idle and
//! reaps it cleanly (the connection slot is released; nothing is logged
//! as a failure). Degraded backends still serve — writes answer
//! `error code=degraded` while reads keep flowing (see
//! [`crate::service::QueryService`]).

use std::io::{self, BufRead, Write};

use crate::catalog::{Catalog, CatalogSession};
use crate::service::{QueryService, SessionStats};

/// Runs one serve session: `HELLO` banner, then request/response lines
/// from `input` to `output` until `quit` or end of input. Returns the
/// session counters (aggregate counters accumulate on `service`).
///
/// # Errors
///
/// Returns only I/O errors on the transport; protocol-level problems are
/// reported to the client as `error code=...` lines.
pub fn serve<R: BufRead, W: Write>(
    service: &QueryService,
    input: R,
    mut output: W,
) -> io::Result<SessionStats> {
    let obs = crate::obs::global();
    let session_start = obs.now_ns();
    obs.inc("serve.sessions_opened");
    obs.trace("session.open");
    service.session_started();
    let mut session = SessionStats::default();
    writeln!(output, "{}", service.hello().encode())?;
    output.flush()?;
    for line in input.lines() {
        let line = line?;
        // Always-on per-request latency (parse through write+flush):
        // records into `serve.request` when the guard drops at the end
        // of this iteration — including the `bye` break path.
        let _request_span = obs.span("serve.request");
        let Some(response) = service.handle_line(&line, &mut session) else {
            continue; // blank line
        };
        let t0 = obs.sampled_start("serve.encode");
        let text = response.encode();
        if let Some(t0) = t0 {
            obs.record("serve.encode", obs.now_ns().saturating_sub(t0));
        }
        writeln!(output, "{text}")?;
        output.flush()?;
        if matches!(response, crate::protocol::Response::Bye) {
            break;
        }
    }
    obs.inc("serve.sessions_closed");
    obs.trace("session.close");
    obs.record("serve.session", obs.now_ns().saturating_sub(session_start));
    Ok(session)
}

/// Runs one *catalog* serve session: the same loop as [`serve`], but
/// requests route through a [`CatalogSession`] so the rp/3 verbs
/// (`use`/`releases`/`reload`/`verb@release`) work and un-qualified verbs
/// hit the catalog's default release. The session start is charged to the
/// default release's counters.
///
/// If the catalog's default release is not open, the banner position
/// carries the routing error and the session ends immediately.
///
/// # Errors
///
/// Returns only I/O errors on the transport; protocol-level problems are
/// reported to the client as `error code=...` lines.
pub fn serve_catalog<R: BufRead, W: Write>(
    catalog: &Catalog,
    input: R,
    mut output: W,
) -> io::Result<SessionStats> {
    let obs = crate::obs::global();
    let session_start = obs.now_ns();
    obs.inc("serve.sessions_opened");
    obs.trace("session.open");
    let mut routing = CatalogSession::new(catalog);
    let mut session = SessionStats::default();
    let banner = routing.hello();
    let banner_is_error = banner.is_error();
    if let Ok(lease) = catalog.checkout(routing.current()) {
        lease.session_started();
    }
    writeln!(output, "{}", banner.encode())?;
    output.flush()?;
    if banner_is_error {
        obs.inc("serve.sessions_closed");
        obs.trace("session.close");
        return Ok(session);
    }
    for line in input.lines() {
        let line = line?;
        let _request_span = obs.span("serve.request");
        let Some(response) = routing.handle_line(&line, &mut session) else {
            continue; // blank line
        };
        let t0 = obs.sampled_start("serve.encode");
        let text = response.encode();
        if let Some(t0) = t0 {
            obs.record("serve.encode", obs.now_ns().saturating_sub(t0));
        }
        writeln!(output, "{text}")?;
        output.flush()?;
        if matches!(response, crate::protocol::Response::Bye) {
            break;
        }
    }
    obs.inc("serve.sessions_closed");
    obs.trace("session.close");
    obs.record("serve.session", obs.now_ns().saturating_sub(session_start));
    Ok(session)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Response, PROTOCOL_VERSION};
    use crate::publisher::Publisher;
    use crate::service::ServiceConfig;
    use rp_table::{Attribute, Schema, TableBuilder};

    fn fixture_service() -> QueryService {
        let schema = Schema::new(vec![
            Attribute::new("Job", ["eng", "doc"]),
            Attribute::new("Disease", ["flu", "none"]),
        ]);
        // Balanced SA frequencies keep both 200-record groups under their
        // Equation-10 threshold, so SPS degenerates to UP and the
        // published record counts stay exact — the tests rely on that.
        let mut b = TableBuilder::new(schema);
        for i in 0..400u32 {
            b.push_codes(&[i % 2, (i / 2) % 2]).unwrap();
        }
        let publication = Publisher::new(b.build()).sa(1).seed(3).publish().unwrap();
        QueryService::from_publication(&publication, ServiceConfig::default())
    }

    fn run(input: &str) -> (String, SessionStats) {
        let service = fixture_service();
        let mut out = Vec::new();
        let stats = serve(&service, input.as_bytes(), &mut out).unwrap();
        (String::from_utf8(out).unwrap(), stats)
    }

    #[test]
    fn session_opens_with_versioned_hello() {
        let (out, stats) = run("quit\n");
        let banner = out.lines().next().unwrap();
        let parsed = Response::parse(banner).unwrap();
        assert!(
            matches!(parsed, Response::Hello { version, .. } if version == PROTOCOL_VERSION),
            "{banner}"
        );
        assert!(out.ends_with("bye\n"), "{out}");
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn answers_count_lines() {
        let (out, stats) = run("count Job=eng Disease=flu\nquit\n");
        let answer = out.lines().nth(1).unwrap();
        assert!(answer.starts_with("est="), "{answer}");
        assert!(answer.contains("support=200"), "{answer}");
        assert!(answer.contains("ci95="), "{answer}");
        assert_eq!(stats.answered, 2); // the query + quit's bye
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn verb_is_optional_and_blank_lines_skipped() {
        let (out, stats) = run("\n\nJob=doc Disease=none\n");
        assert!(out.lines().nth(1).unwrap().starts_with("est="), "{out}");
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn info_reports_parameters() {
        let (out, _) = run("info\nquit\n");
        let info = out.lines().nth(1).unwrap();
        assert!(info.contains("sa=Disease"), "{info}");
        assert!(info.contains("records=400"), "{info}");
        assert!(info.contains("p=0.5"), "{info}");
        assert!(info.contains("lambda=0.3"), "{info}");
        assert!(info.contains("seed=3"), "{info}");
    }

    #[test]
    fn errors_do_not_stop_the_loop() {
        let (out, stats) = run("garbage\nJob=eng\ncount Job=eng Disease=flu\n");
        let lines: Vec<&str> = out.lines().skip(1).collect();
        assert!(lines[0].starts_with("error code=unknown-command"), "{out}");
        assert!(lines[1].starts_with("error code=bad-query"), "{out}");
        assert!(lines[2].starts_with("est="), "{out}");
        assert_eq!(stats.errors, 2);
        assert_eq!(stats.answered, 1);
    }

    #[test]
    fn batch_answers_on_one_line() {
        let (out, stats) = run("batch Job=eng Disease=flu; Job=doc Disease=none\nquit\n");
        let line = out.lines().nth(1).unwrap();
        let parsed = Response::parse(line).unwrap();
        let Response::Batch(answers) = parsed else {
            panic!("expected batch response: {line}");
        };
        assert_eq!(answers.len(), 2);
        assert_eq!(stats.answered, 2);
    }

    #[test]
    fn input_end_without_quit_is_a_clean_session() {
        let (out, stats) = run("ping\n");
        assert!(out.ends_with("pong\n"), "{out}");
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn engine_without_publication_serves_too() {
        use crate::engine::QueryEngine;
        use std::sync::Arc;

        let schema = Schema::new(vec![
            Attribute::new("Job", ["eng", "doc"]),
            Attribute::new("Disease", ["flu", "none"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..400u32 {
            b.push_codes(&[i % 2, (i / 2) % 2]).unwrap();
        }
        let publication = Publisher::new(b.build()).sa(1).seed(3).publish().unwrap();
        let service = QueryService::new(
            Arc::new(QueryEngine::new(&publication)),
            None,
            ServiceConfig::default(),
        );
        let mut out = Vec::new();
        let stats = serve(&service, &b"info\n"[..], &mut out).unwrap();
        assert_eq!(stats.answered, 1);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("records=400"), "{text}");
        assert!(!text.contains("seed="), "{text}");
    }
}
