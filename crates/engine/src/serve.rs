//! A line-protocol query loop over a [`QueryEngine`] — the first
//! long-lived traffic surface of the reproduction.
//!
//! The protocol is one request per line, one response per line, designed
//! to be driven by `rpctl serve` over stdin/stdout (and trivially by a
//! socket once one exists):
//!
//! ```text
//! > info
//! publication sa=Disease records=6000 groups=6 p=0.5 lambda=0.3 delta=0.3
//! > count Job=engineer Disease=asthma
//! est=412.0 support=2000 observed=309 f=0.2060 ci95=0.1621,0.2499
//! > Job=doctor Disease=flu            (the `count` verb is optional)
//! est=...
//! > quit
//! bye
//! ```
//!
//! Conditions are whitespace-separated `Column=value` pairs; exactly one
//! must name the SA column. Malformed requests answer `error: ...` and the
//! loop keeps serving — a bad query must not take the service down.

use std::io::{self, BufRead, Write};

use crate::engine::QueryEngine;
use crate::publication::Publication;

/// Counters of one serve session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Non-empty request lines read.
    pub requests: u64,
    /// Requests answered with an estimate.
    pub answered: u64,
    /// Requests answered with an error line.
    pub errors: u64,
}

/// Serves queries from `input` to `output` until `quit` or end of input.
/// Returns the session counters.
///
/// # Errors
///
/// Returns only I/O errors on the transport; protocol-level problems are
/// reported to the client as `error: ...` lines.
pub fn serve<R: BufRead, W: Write>(
    engine: &QueryEngine,
    publication: Option<&Publication>,
    input: R,
    mut output: W,
) -> io::Result<ServeStats> {
    let mut stats = ServeStats::default();
    for line in input.lines() {
        let line = line?;
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        stats.requests += 1;
        match request {
            "quit" | "exit" => {
                writeln!(output, "bye")?;
                output.flush()?;
                break;
            }
            "info" => {
                let sa_name = engine.schema().attribute(engine.sa()).name();
                match publication {
                    Some(p) => writeln!(
                        output,
                        "publication sa={sa_name} records={} groups={} p={} lambda={} delta={} seed={}",
                        engine.records(),
                        engine.groups(),
                        engine.p(),
                        p.params().lambda(),
                        p.params().delta(),
                        p.seed()
                    )?,
                    None => writeln!(
                        output,
                        "publication sa={sa_name} records={} groups={} p={}",
                        engine.records(),
                        engine.groups(),
                        engine.p()
                    )?,
                }
                stats.answered += 1;
            }
            _ => match answer_line(engine, request) {
                Ok(response) => {
                    writeln!(output, "{response}")?;
                    stats.answered += 1;
                }
                Err(message) => {
                    writeln!(output, "error: {message}")?;
                    stats.errors += 1;
                }
            },
        }
        output.flush()?;
    }
    Ok(stats)
}

/// Parses one request line and answers it. The `count` verb is optional.
fn answer_line(engine: &QueryEngine, request: &str) -> Result<String, String> {
    let body = request.strip_prefix("count ").unwrap_or(request);
    let mut conditions = Vec::new();
    for token in body.split_whitespace() {
        let (col, value) = token
            .split_once('=')
            .ok_or_else(|| format!("expected Column=value, got `{token}`"))?;
        conditions.push((col, value));
    }
    if conditions.is_empty() {
        return Err("empty query; try `count Column=value ... SA=value`".to_string());
    }
    let query = engine
        .query_from_values(&conditions)
        .map_err(|e| e.to_string())?;
    let a = engine.answer(&query).map_err(|e| e.to_string())?;
    let mut response = format!(
        "est={:.1} support={} observed={} f={:.4}",
        a.estimate, a.support, a.observed, a.frequency
    );
    if let Some(ci) = a.ci {
        response.push_str(&format!(" ci95={:.4},{:.4}", ci.lo, ci.hi));
    }
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publisher::Publisher;
    use rp_table::{Attribute, Schema, TableBuilder};

    fn fixture() -> (Publication, QueryEngine) {
        let schema = Schema::new(vec![
            Attribute::new("Job", ["eng", "doc"]),
            Attribute::new("Disease", ["flu", "none"]),
        ]);
        // Balanced SA frequencies keep both 200-record groups under their
        // Equation-10 threshold, so SPS degenerates to UP and the published
        // record counts stay exact — the protocol tests rely on that.
        let mut b = TableBuilder::new(schema);
        for i in 0..400u32 {
            b.push_codes(&[i % 2, (i / 2) % 2]).unwrap();
        }
        let publication = Publisher::new(b.build()).sa(1).seed(3).publish().unwrap();
        let engine = QueryEngine::new(&publication);
        (publication, engine)
    }

    fn run(input: &str) -> (String, ServeStats) {
        let (publication, engine) = fixture();
        let mut out = Vec::new();
        let stats = serve(&engine, Some(&publication), input.as_bytes(), &mut out).unwrap();
        (String::from_utf8(out).unwrap(), stats)
    }

    #[test]
    fn answers_count_lines() {
        let (out, stats) = run("count Job=eng Disease=flu\nquit\n");
        assert!(out.starts_with("est="), "{out}");
        assert!(out.contains("support=200"), "{out}");
        assert!(out.contains("ci95="), "{out}");
        assert!(out.ends_with("bye\n"), "{out}");
        assert_eq!(stats.answered, 1);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn verb_is_optional_and_blank_lines_skipped() {
        let (out, stats) = run("\n\nJob=doc Disease=none\n");
        assert!(out.starts_with("est="), "{out}");
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn info_reports_parameters() {
        let (out, _) = run("info\nquit\n");
        assert!(out.contains("sa=Disease"), "{out}");
        assert!(out.contains("records=400"), "{out}");
        assert!(out.contains("p=0.5"), "{out}");
        assert!(out.contains("lambda=0.3"), "{out}");
    }

    #[test]
    fn errors_do_not_stop_the_loop() {
        let (out, stats) = run("garbage\nJob=eng\ncount Job=eng Disease=flu\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("error:"), "{out}");
        assert!(lines[1].starts_with("error:"), "{out}");
        assert!(lines[2].starts_with("est="), "{out}");
        assert_eq!(stats.errors, 2);
        assert_eq!(stats.answered, 1);
    }

    #[test]
    fn engine_without_publication_serves_too() {
        let (_, engine) = fixture();
        let mut out = Vec::new();
        let stats = serve(&engine, None, &b"info\n"[..], &mut out).unwrap();
        assert_eq!(stats.answered, 1);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("records=400"), "{text}");
        assert!(!text.contains("seed="), "{text}");
    }
}
