//! The typed wire protocol of the query service: [`Request`] and
//! [`Response`] enums with a canonical line-oriented encoding.
//!
//! One request per line, one response per line. Every transport — the
//! stdio loop of [`crate::serve::serve`] and the TCP listener of
//! [`crate::server::Server`] — speaks exactly this grammar, so a session
//! transcript is transport-independent byte for byte:
//!
//! ```text
//! request  := "ping" | "quit" | "info" | "stats" | "flush"
//!           | "metrics" | "trace" [" " N]
//!           | ["count "] cond (" " cond)*
//!           | "batch " query ("; " query)*
//!           | "insert " cond (" " cond)*      (one cond per schema column)
//!           | "use " RELEASE | "releases" | "reload " RELEASE
//!           | qverb "@" RELEASE rest          (qverb: count|batch|insert|flush|info)
//! cond     := COLUMN "=" VALUE              (tokens: no whitespace / ";")
//! query    := ["count "] cond (" " cond)*
//! RELEASE  := token without "@"
//!
//! response := "HELLO rp/5 sa=" NAME " records=" N " groups=" N " p=" P
//!             [" release=" RELEASE]
//!           | "pong" | "bye"
//!           | "publication sa=" NAME " records=" N " groups=" N " p=" P
//!             [" lambda=" L " delta=" D " seed=" S]
//!           | "est=" E " support=" N " observed=" N " f=" F
//!             [" ci95=" LO "," HI]
//!           | "batch " N "; " answer ("; " answer)*
//!           | "inserted group_size=" N " republished=" ("true"|"false")
//!           | "flushed events=" N
//!           | "using release=" RELEASE " sa=" NAME " records=" N " groups=" N " p=" P
//!           | "releases " N "; " entry ("; " entry)*
//!             entry := "name=" RELEASE " sa=" NAME " records=" N " groups=" N
//!                      " live=" ("true"|"false")
//!           | "reloaded release=" RELEASE " records=" N " groups=" N
//!           | "stats requests=" N " answered=" N " errors=" N
//!             " cache_hits=" N " cache_misses=" N " sessions=" N
//!             " inserts=" N " degraded=" N " faults=" N
//!           | "metrics counters=" N " hists=" N (" c:" NAME "=" N)*
//!             (" h:" NAME "=" COUNT ":" P50 ":" P90 ":" P99 ":" MAX ":" MEAN)*
//!           | "trace n=" N (" seq=" N " label=" LABEL)*
//!           | "error code=" CODE " " MESSAGE
//! ```
//!
//! `insert` and `flush` are the streaming pair (rp/2): they mutate the
//! live release behind a [`crate::QueryService`] opened in streaming
//! mode, and answer `error code=read-only` on a static artifact.
//!
//! The catalog verbs (rp/3) route a session among the named releases of a
//! [`crate::catalog::Catalog`]: `use` rebinds the session's default
//! release, `releases` lists the open ones, `reload` hot-swaps one from
//! its source artifact, and a `verb@release` qualifier answers a single
//! request against a named release without rebinding. Un-qualified verbs
//! keep their rp/2 meaning against the session's current (initially the
//! catalog's default) release, so an rp/2 transcript replayed against a
//! catalog session still parses and routes. On a single-release server
//! the catalog verbs answer `error code=unknown-release`.
//!
//! The degradation surface (rp/4): a release whose WAL poisoned after a
//! failed write or fsync answers `insert`/`flush` with
//! `error code=degraded` — the message reports the durable sequence
//! number, the loss boundary a client can trust — while queries keep
//! answering from the in-memory state. `stats` gained the `degraded`
//! and `faults` counters, and catalog `reload` is the recovery path.
//!
//! The observability surface (rp/5): `metrics` renders the process-wide
//! [`crate::obs`] registry — counters as `c:name=value`, histograms as
//! `h:name=count:p50:p90:p99:max:mean` (nanoseconds; `mean` is the one
//! float, canonically encoded) — merged with the serving counters of the
//! answering service under `service.*` names, all sorted by name.
//! `trace [N]` returns the most recent `N` ring-buffered trace events
//! (all buffered events when `N` is omitted), oldest first. Both verbs
//! only *read* instrumentation: they change zero response bytes of every
//! other verb.
//!
//! Parsing and encoding are exact inverses over the canonical forms:
//! `parse(encode(x)) == x` for every value expressible in the token
//! grammar (floats are encoded with Rust's shortest round-trip
//! `Display`). Names and values containing whitespace, `;`, or newlines
//! cannot be framed on this line protocol: a schema whose SA column name
//! is not a token produces an unparseable `HELLO` banner, and such
//! values cannot be queried over the wire (use [`is_token`] to check;
//! `rpctl serve` warns about non-token schemas at startup). The parser
//! additionally accepts
//! a few human conveniences — the optional `count` verb, the `exit` alias
//! for `quit`, surrounding whitespace — which normalize into the same
//! typed values. Errors are structured: every failure carries an
//! [`ErrorCode`] so clients can distinguish a malformed line from an
//! invalid query without string matching.

use std::fmt;

use crate::codec::canon_f64;

/// Protocol revision spoken by this build, advertised in the
/// [`Response::Hello`] banner as `rp/<version>`. Revision 2 added the
/// streaming pair (`insert`/`flush`, `inserted`/`flushed`), the
/// `read-only` error code and the `inserts` stats counter. Revision 3
/// added the catalog verbs (`use`/`releases`/`reload`, the `verb@release`
/// qualifier, the `using`/`releases`/`reloaded` responses), the optional
/// `release=` token on the banner and the `unknown-release` error code.
/// Revision 4 added the `degraded` error code (a poisoned live release
/// refusing writes after a failed WAL write or fsync) and the `degraded`
/// and `faults` stats counters. Revision 5 added the observability pair
/// (`metrics`/`trace [N]`, the `metrics`/`trace` responses) exposing the
/// [`crate::obs`] registry.
pub const PROTOCOL_VERSION: u32 = 5;

/// Whether `s` can ride the line protocol as a single token in any
/// position (non-empty, no whitespace, no `;`, no `=`). Column names and
/// values that fail this cannot be framed in requests, and a non-token
/// SA column name breaks the `HELLO` / `publication` response lines.
/// (`=` is conservative: a value containing `=` happens to survive the
/// first-`=` condition split, but a column name never does.)
pub fn is_token(s: &str) -> bool {
    !s.is_empty() && !s.contains(char::is_whitespace) && !s.contains([';', '='])
}

/// Whether `s` can name a catalog release on the wire: a [token](is_token)
/// that additionally contains no `@` (the qualifier separator in
/// `count@release ...`).
pub fn is_release_name(s: &str) -> bool {
    is_token(s) && !s.contains('@')
}

/// Machine-readable failure classes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The request line did not parse (bad token, empty batch, ...).
    Parse,
    /// The first token is neither a known verb nor a `Column=value` pair.
    UnknownCommand,
    /// The request parsed but the query failed engine validation
    /// (unknown column or value, missing or duplicate SA condition).
    BadQuery,
    /// The server refused the connection at its concurrency cap.
    Busy,
    /// The service failed internally; the session stays up.
    Internal,
    /// An `insert`/`flush` reached a service without a live stream
    /// behind it (static artifact, no WAL).
    ReadOnly,
    /// A catalog verb named a release the server does not host — or
    /// reached a single-release server with no catalog at all.
    UnknownRelease,
    /// An `insert`/`flush` reached a live release whose WAL poisoned
    /// after a failed write or fsync: the release is read-only until it
    /// is reloaded from disk. The message reports the durable sequence
    /// number — everything past it should be considered lost.
    Degraded,
}

impl ErrorCode {
    /// The wire token of this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::UnknownCommand => "unknown-command",
            ErrorCode::BadQuery => "bad-query",
            ErrorCode::Busy => "busy",
            ErrorCode::Internal => "internal",
            ErrorCode::ReadOnly => "read-only",
            ErrorCode::UnknownRelease => "unknown-release",
            ErrorCode::Degraded => "degraded",
        }
    }

    /// Parses a wire token back into a code.
    pub fn from_str_token(s: &str) -> Option<Self> {
        Some(match s {
            "parse" => ErrorCode::Parse,
            "unknown-command" => ErrorCode::UnknownCommand,
            "bad-query" => ErrorCode::BadQuery,
            "busy" => ErrorCode::Busy,
            "internal" => ErrorCode::Internal,
            "read-only" => ErrorCode::ReadOnly,
            "unknown-release" => ErrorCode::UnknownRelease,
            "degraded" => ErrorCode::Degraded,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A protocol-level failure: what went wrong and which [`ErrorCode`] the
/// service should answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// The failure class.
    pub code: ErrorCode,
    /// Human-readable single-line detail.
    pub message: String,
}

impl ProtocolError {
    fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// One count query as it appears on the wire: unresolved
/// `(column, value)` string conditions. Resolution against the release
/// schema (and the SA split) happens in the service layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WireQuery {
    /// Equality conditions in request order.
    pub conditions: Vec<(String, String)>,
}

impl WireQuery {
    /// Builds a wire query from `(column, value)` pairs.
    pub fn new<C: Into<String>, V: Into<String>>(conditions: Vec<(C, V)>) -> Self {
        Self {
            conditions: conditions
                .into_iter()
                .map(|(c, v)| (c.into(), v.into()))
                .collect(),
        }
    }

    fn encode_into(&self, out: &mut String) {
        out.push_str("count");
        for (col, value) in &self.conditions {
            out.push(' ');
            out.push_str(col);
            out.push('=');
            out.push_str(value);
        }
    }

    /// Parses the body of a query (the `count` verb already stripped if
    /// present). At least one condition is required.
    fn parse_body(body: &str) -> Result<Self, ProtocolError> {
        let mut conditions = Vec::new();
        for token in body.split_whitespace() {
            let (col, value) = token.split_once('=').ok_or_else(|| {
                ProtocolError::new(
                    ErrorCode::Parse,
                    format!("expected Column=value, got `{token}`"),
                )
            })?;
            if col.is_empty() || value.is_empty() {
                return Err(ProtocolError::new(
                    ErrorCode::Parse,
                    format!("empty column or value in `{token}`"),
                ));
            }
            conditions.push((col.to_string(), value.to_string()));
        }
        if conditions.is_empty() {
            return Err(ProtocolError::new(
                ErrorCode::Parse,
                "empty query; try `count Column=value ... SA=value`",
            ));
        }
        Ok(Self { conditions })
    }
}

/// One record to insert, as it appears on the wire: unresolved
/// `(column, value)` string fields. The service resolves them against
/// the live schema — every column must appear exactly once.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WireRecord {
    /// `(column, value)` fields in request order.
    pub fields: Vec<(String, String)>,
}

impl WireRecord {
    /// Builds a wire record from `(column, value)` pairs.
    pub fn new<C: Into<String>, V: Into<String>>(fields: Vec<(C, V)>) -> Self {
        Self {
            fields: fields
                .into_iter()
                .map(|(c, v)| (c.into(), v.into()))
                .collect(),
        }
    }

    fn encode_into(&self, out: &mut String) {
        out.push_str("insert");
        for (col, value) in &self.fields {
            out.push(' ');
            out.push_str(col);
            out.push('=');
            out.push_str(value);
        }
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Request {
    /// Answer one count query.
    Query(WireQuery),
    /// Answer several queries through one prepared match index.
    Batch(Vec<WireQuery>),
    /// Insert one record into the live release (streaming services).
    Insert(WireRecord),
    /// Commit the live release: sync the WAL (and write the snapshot,
    /// when the server is configured with one).
    Flush,
    /// Describe the release being served.
    Info,
    /// Report aggregate service counters.
    Stats,
    /// Render the process-wide observability registry (rp/5): counters
    /// and histogram summaries, merged with the answering service's own
    /// counters under `service.*` names.
    Metrics,
    /// Return the most recent `N` trace events from the observability
    /// ring buffer, oldest first (`None` = all buffered events) (rp/5).
    Trace(Option<u64>),
    /// Liveness probe.
    Ping,
    /// End the session.
    Quit,
    /// Rebind the session's default release (catalog sessions, rp/3).
    Use(String),
    /// List the releases the catalog hosts (rp/3).
    Releases,
    /// Hot-swap a release from its source artifact (rp/3).
    Reload(String),
    /// Answer one request against a named release without rebinding the
    /// session, encoded as `verb@release ...` (rp/3). Only
    /// [`Request::Query`], [`Request::Batch`], [`Request::Insert`],
    /// [`Request::Flush`] and [`Request::Info`] can be qualified; an
    /// `At` wrapping any other variant (or a nested `At`) is outside the
    /// wire grammar and encodes to a line the parser rejects.
    At {
        /// The release the inner request is routed to.
        release: String,
        /// The qualified request.
        inner: Box<Request>,
    },
}

impl Request {
    /// Encodes the canonical line for this request (no trailing newline).
    ///
    /// Encoding never fails, but only values inside the wire grammar
    /// produce parseable lines: a [`Request::Batch`] with no queries, a
    /// [`WireQuery`] with no conditions, or names/values that are not
    /// tokens (see [`is_token`]) encode to lines the parser — and thus
    /// the server — rejects.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        match self {
            Request::Query(q) => q.encode_into(&mut out),
            Request::Batch(queries) => {
                out.push_str("batch ");
                for (i, q) in queries.iter().enumerate() {
                    if i > 0 {
                        out.push_str("; ");
                    }
                    q.encode_into(&mut out);
                }
            }
            Request::Insert(record) => record.encode_into(&mut out),
            Request::Flush => out.push_str("flush"),
            Request::Info => out.push_str("info"),
            Request::Stats => out.push_str("stats"),
            Request::Metrics => out.push_str("metrics"),
            Request::Trace(n) => {
                out.push_str("trace");
                if let Some(n) = n {
                    put(&mut out, format_args!(" {n}"));
                }
            }
            Request::Ping => out.push_str("ping"),
            Request::Quit => out.push_str("quit"),
            Request::Use(release) => {
                out.push_str("use ");
                out.push_str(release);
            }
            Request::Releases => out.push_str("releases"),
            Request::Reload(release) => {
                out.push_str("reload ");
                out.push_str(release);
            }
            Request::At { release, inner } => {
                // Splice `@release` onto the inner verb token: `count
                // Job=eng` becomes `count@alpha Job=eng`. Inner variants
                // outside the qualifiable set produce out-of-grammar
                // lines, like other unencodable values.
                let line = inner.encode();
                match line.split_once(' ') {
                    Some((verb, rest)) => {
                        out.push_str(verb);
                        out.push('@');
                        out.push_str(release);
                        out.push(' ');
                        out.push_str(rest);
                    }
                    None => {
                        out.push_str(&line);
                        out.push('@');
                        out.push_str(release);
                    }
                }
            }
        }
        out
    }

    fn parse_insert_body(rest: &str) -> Result<Self, ProtocolError> {
        if rest.trim().is_empty() {
            return Err(ProtocolError::new(
                ErrorCode::Parse,
                "empty record; try `insert Column=value ...` covering every column",
            ));
        }
        Ok(Request::Insert(WireRecord {
            fields: WireQuery::parse_body(rest)?.conditions,
        }))
    }

    fn parse_batch_body(rest: &str) -> Result<Self, ProtocolError> {
        if rest.trim().is_empty() {
            return Err(ProtocolError::new(ErrorCode::Parse, "empty batch"));
        }
        let mut queries = Vec::new();
        for part in rest.split(';') {
            let part = part.trim();
            let body = part.strip_prefix("count ").unwrap_or(part);
            queries.push(WireQuery::parse_body(body)?);
        }
        Ok(Request::Batch(queries))
    }

    /// Parses one request line. Returns `Ok(None)` for blank lines (the
    /// serve loops skip them without counting a request).
    ///
    /// rp/3 reserves `@` in the verb position for the release qualifier,
    /// so an un-verbed condition query whose *first column name* contains
    /// `@` must spell the `count` verb explicitly; `@` anywhere else
    /// (values, later columns) is unaffected.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] with [`ErrorCode::Parse`] on malformed
    /// lines and [`ErrorCode::UnknownCommand`] when the first token is
    /// neither a verb nor a `Column=value` condition.
    pub fn parse(line: &str) -> Result<Option<Self>, ProtocolError> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(None);
        }
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim_start()),
            None => (line, ""),
        };
        // `verb@release` qualifier (rp/3). A `=` before the `@` means the
        // token is really a condition like `Job=a@b`; fall through.
        if let Some((base, release)) = verb.split_once('@') {
            if !base.contains('=') {
                if !is_release_name(release) {
                    return Err(ProtocolError::new(
                        ErrorCode::Parse,
                        format!("bad release name `{release}` in `{verb}`"),
                    ));
                }
                let inner = match base {
                    "count" => Request::Query(WireQuery::parse_body(rest)?),
                    "batch" => Request::parse_batch_body(rest)?,
                    "insert" => Request::parse_insert_body(rest)?,
                    "flush" | "info" => {
                        if !rest.is_empty() {
                            return Err(ProtocolError::new(
                                ErrorCode::Parse,
                                format!("`{base}@{release}` takes no arguments"),
                            ));
                        }
                        if base == "flush" {
                            Request::Flush
                        } else {
                            Request::Info
                        }
                    }
                    _ => {
                        return Err(ProtocolError::new(
                            ErrorCode::UnknownCommand,
                            format!(
                                "unknown qualified command `{base}`; only count/batch/insert/flush/info take @{release}"
                            ),
                        ));
                    }
                };
                return Ok(Some(Request::At {
                    release: release.to_string(),
                    inner: Box::new(inner),
                }));
            }
        }
        let no_args = |req: Request| {
            if rest.is_empty() {
                Ok(Some(req))
            } else {
                Err(ProtocolError::new(
                    ErrorCode::Parse,
                    format!("`{verb}` takes no arguments"),
                ))
            }
        };
        let release_arg = || {
            if !is_release_name(rest) {
                return Err(ProtocolError::new(
                    ErrorCode::Parse,
                    format!("`{verb}` expects one release name, got `{rest}`"),
                ));
            }
            Ok(rest.to_string())
        };
        match verb {
            "quit" | "exit" => no_args(Request::Quit),
            "ping" => no_args(Request::Ping),
            "info" => no_args(Request::Info),
            "stats" => no_args(Request::Stats),
            "metrics" => no_args(Request::Metrics),
            "trace" => {
                if rest.is_empty() {
                    Ok(Some(Request::Trace(None)))
                } else {
                    Ok(Some(Request::Trace(Some(parse_u64(rest)?))))
                }
            }
            "flush" => no_args(Request::Flush),
            "releases" => no_args(Request::Releases),
            "use" => Ok(Some(Request::Use(release_arg()?))),
            "reload" => Ok(Some(Request::Reload(release_arg()?))),
            "count" => Ok(Some(Request::Query(WireQuery::parse_body(rest)?))),
            "insert" => Ok(Some(Request::parse_insert_body(rest)?)),
            "batch" => Ok(Some(Request::parse_batch_body(rest)?)),
            _ if verb.contains('=') => Ok(Some(Request::Query(WireQuery::parse_body(line)?))),
            _ => Err(ProtocolError::new(
                ErrorCode::UnknownCommand,
                format!(
                    "unknown command `{verb}`; try count/batch/insert/flush/info/stats/metrics/trace/ping/quit/use/releases/reload"
                ),
            )),
        }
    }
}

/// One answered query as encoded on the wire. Mirrors
/// [`crate::Answer`] but keeps only the wire-visible fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireAnswer {
    /// The Section-6 estimate `est = |S*| · F′`.
    pub estimate: f64,
    /// Published records matching the NA conditions.
    pub support: u64,
    /// Matching records carrying the queried SA value.
    pub observed: u64,
    /// The reconstructed frequency `F′`.
    pub frequency: f64,
    /// 95% confidence interval `(lo, hi)` for `F′`, absent on empty
    /// support.
    pub ci: Option<(f64, f64)>,
}

impl From<&crate::Answer> for WireAnswer {
    fn from(a: &crate::Answer) -> Self {
        Self {
            estimate: a.estimate,
            support: a.support,
            observed: a.observed,
            frequency: a.frequency,
            ci: a.ci.map(|ci| (ci.lo, ci.hi)),
        }
    }
}

impl WireAnswer {
    fn encode_into(&self, out: &mut String) {
        put(
            out,
            format_args!(
                "est={} support={} observed={} f={}",
                canon_f64(self.estimate),
                self.support,
                self.observed,
                canon_f64(self.frequency)
            ),
        );
        if let Some((lo, hi)) = self.ci {
            put(
                out,
                format_args!(" ci95={},{}", canon_f64(lo), canon_f64(hi)),
            );
        }
    }

    fn parse_body(part: &str) -> Result<Self, ProtocolError> {
        let bad = |msg: &str| ProtocolError::new(ErrorCode::Parse, format!("answer: {msg}"));
        let mut estimate = None;
        let mut support = None;
        let mut observed = None;
        let mut frequency = None;
        let mut ci = None;
        for token in part.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| bad(&format!("expected key=value, got `{token}`")))?;
            match key {
                "est" => estimate = Some(parse_f64(value)?),
                "support" => support = Some(parse_u64(value)?),
                "observed" => observed = Some(parse_u64(value)?),
                "f" => frequency = Some(parse_f64(value)?),
                "ci95" => {
                    let (lo, hi) = value
                        .split_once(',')
                        .ok_or_else(|| bad("ci95 expects lo,hi"))?;
                    ci = Some((parse_f64(lo)?, parse_f64(hi)?));
                }
                _ => return Err(bad(&format!("unknown field `{key}`"))),
            }
        }
        Ok(Self {
            estimate: estimate.ok_or_else(|| bad("missing est"))?,
            support: support.ok_or_else(|| bad("missing support"))?,
            observed: observed.ok_or_else(|| bad("missing observed"))?,
            frequency: frequency.ok_or_else(|| bad("missing f"))?,
            ci,
        })
    }
}

/// Release parameters reported by [`Response::Info`] when the service was
/// built from a full [`crate::Publication`] artifact (absent for bare
/// histogram-level engines).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReleaseMeta {
    /// The enforced relative-error threshold λ.
    pub lambda: f64,
    /// The enforced probability floor δ.
    pub delta: f64,
    /// The publication seed.
    pub seed: u64,
}

/// One catalog release as listed by [`Response::Releases`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseEntry {
    /// The release's catalog name.
    pub name: String,
    /// The sensitive attribute's name.
    pub sa: String,
    /// Records in the release.
    pub records: u64,
    /// Personal groups in the release.
    pub groups: u64,
    /// Whether the release has a live stream behind it (accepts
    /// `insert`/`flush`).
    pub live: bool,
}

/// Aggregate service counters reported by [`Response::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Non-empty request lines received.
    pub requests: u64,
    /// Requests answered successfully.
    pub answered: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Single-query answers served from the cache.
    pub cache_hits: u64,
    /// Single-query answers computed and inserted into the cache.
    pub cache_misses: u64,
    /// Sessions started (stdio runs and TCP connections alike).
    pub sessions: u64,
    /// Records inserted into the live release.
    pub inserts: u64,
    /// Requests refused because a live release is degraded (its WAL
    /// poisoned after a failed write or fsync).
    pub degraded: u64,
    /// Storage faults observed by the service: every degradation plus
    /// internal I/O errors on insert/flush/checkpoint paths.
    pub faults: u64,
}

/// One histogram summary as rendered by [`Response::Metrics`]:
/// `h:name=count:p50:p90:p99:max:mean`. Latency histograms are in
/// nanoseconds; `mean` is `sum / count` (0 when empty) and the only
/// float on the metrics line.
#[derive(Debug, Clone, PartialEq)]
pub struct WireHistogram {
    /// The histogram's registry name, e.g. `wal.sync`.
    pub name: String,
    /// Recorded observations.
    pub count: u64,
    /// Derived median upper bound (see [`crate::obs::HistogramSummary`]).
    pub p50: u64,
    /// Derived 90th-percentile upper bound.
    pub p90: u64,
    /// Derived 99th-percentile upper bound.
    pub p99: u64,
    /// Exact observed maximum.
    pub max: u64,
    /// Mean observation (`sum / count`, 0 when empty).
    pub mean: f64,
}

/// One trace-ring entry as rendered by [`Response::Trace`]:
/// `seq=N label=LABEL`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireTraceEvent {
    /// Position in the process-wide event stream.
    pub seq: u64,
    /// The sanitized event label, e.g. `session.open`.
    pub label: String,
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The versioned banner sent when a session opens.
    Hello {
        /// Protocol revision (see [`PROTOCOL_VERSION`]).
        version: u32,
        /// The sensitive attribute's name.
        sa: String,
        /// Records in the release.
        records: u64,
        /// Personal groups in the release.
        groups: u64,
        /// Retention probability used by the estimator.
        p: f64,
        /// The catalog name of the session's initial release (catalog
        /// servers only; `None` on single-release servers).
        release: Option<String>,
    },
    /// Answer to a [`Request::Query`].
    Answer(WireAnswer),
    /// Answers to a [`Request::Batch`], aligned with the request.
    Batch(Vec<WireAnswer>),
    /// Answer to [`Request::Info`].
    Info {
        /// The sensitive attribute's name.
        sa: String,
        /// Records in the release.
        records: u64,
        /// Personal groups in the release.
        groups: u64,
        /// Retention probability used by the estimator.
        p: f64,
        /// Artifact parameters when served from a [`crate::Publication`].
        release: Option<ReleaseMeta>,
    },
    /// Answer to a [`Request::Insert`].
    Inserted {
        /// Raw size of the record's group after the insert.
        group_size: u64,
        /// Whether the insert pushed the group past `sg` and it was
        /// re-sampled through SPS.
        republished: bool,
    },
    /// Answer to [`Request::Flush`]: the WAL is durable through this
    /// many events.
    ///
    /// Flush is the protocol's durability barrier. Under group commit
    /// an `inserted` response only acknowledges that the event is
    /// *logged* — it may sit in the commit batch's OS buffer until the
    /// batch fills, the commit window expires, or this request forces
    /// the sync. A client that needs an insert to survive a crash sends
    /// `flush` and waits for `flushed` before acting on it.
    Flushed {
        /// Sequence number of the last durable event.
        events: u64,
    },
    /// Answer to a [`Request::Use`]: the session is now bound to this
    /// release, whose banner-level parameters follow so clients can
    /// retarget (notably the SA name for un-columned query values).
    Using {
        /// The release the session now speaks to.
        release: String,
        /// The sensitive attribute's name.
        sa: String,
        /// Records in the release.
        records: u64,
        /// Personal groups in the release.
        groups: u64,
        /// Retention probability used by the estimator.
        p: f64,
    },
    /// Answer to [`Request::Releases`].
    Releases(Vec<ReleaseEntry>),
    /// Answer to a [`Request::Reload`]: the release was hot-swapped from
    /// its source artifact.
    Reloaded {
        /// The reloaded release's catalog name.
        release: String,
        /// Records in the freshly loaded artifact.
        records: u64,
        /// Personal groups in the freshly loaded artifact.
        groups: u64,
    },
    /// Answer to [`Request::Stats`].
    Stats(StatsSnapshot),
    /// Answer to [`Request::Metrics`] (rp/5): every counter and histogram
    /// summary, sorted by name within each class.
    Metrics {
        /// `c:name=value` counters, sorted by name.
        counters: Vec<(String, u64)>,
        /// `h:name=...` histogram summaries, sorted by name.
        histograms: Vec<WireHistogram>,
    },
    /// Answer to a [`Request::Trace`] (rp/5): the requested tail of the
    /// trace ring, oldest first.
    Trace(Vec<WireTraceEvent>),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Session farewell (answer to [`Request::Quit`]).
    Bye,
    /// A structured failure; the session keeps serving.
    Error {
        /// The failure class.
        code: ErrorCode,
        /// Single-line human-readable detail.
        message: String,
    },
}

fn parse_f64(s: &str) -> Result<f64, ProtocolError> {
    s.parse()
        .map_err(|_| ProtocolError::new(ErrorCode::Parse, format!("bad float `{s}`")))
}

fn parse_u64(s: &str) -> Result<u64, ProtocolError> {
    s.parse()
        .map_err(|_| ProtocolError::new(ErrorCode::Parse, format!("bad integer `{s}`")))
}

/// Splits `key=value` asserting the expected key.
fn expect_kv<'a>(token: Option<&'a str>, key: &str) -> Result<&'a str, ProtocolError> {
    let token =
        token.ok_or_else(|| ProtocolError::new(ErrorCode::Parse, format!("missing {key}=")))?;
    token
        .strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| {
            ProtocolError::new(
                ErrorCode::Parse,
                format!("expected {key}=..., got `{token}`"),
            )
        })
}

/// Appends formatted text to a response buffer. Every encoder routes
/// through here so the serving stack carries exactly one waived panic
/// site for the infallible `fmt::Write`-to-`String` case.
fn put(out: &mut String, args: fmt::Arguments<'_>) {
    use fmt::Write;
    // rp-analyze: allow(no-panic-serving, "fmt::Write to a String is infallible; sole waived expect for all wire encoders")
    out.write_fmt(args).expect("infallible String write");
}

impl Response {
    /// Encodes the canonical line for this response (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        match self {
            Response::Hello {
                version,
                sa,
                records,
                groups,
                p,
                release,
            } => {
                put(
                    &mut out,
                    format_args!(
                        "HELLO rp/{version} sa={sa} records={records} groups={groups} p={}",
                        canon_f64(*p)
                    ),
                );
                if let Some(release) = release {
                    put(&mut out, format_args!(" release={release}"));
                }
            }
            Response::Answer(a) => a.encode_into(&mut out),
            Response::Batch(answers) => {
                put(&mut out, format_args!("batch {}", answers.len()));
                for a in answers {
                    out.push_str("; ");
                    a.encode_into(&mut out);
                }
            }
            Response::Info {
                sa,
                records,
                groups,
                p,
                release,
            } => {
                put(
                    &mut out,
                    format_args!(
                        "publication sa={sa} records={records} groups={groups} p={}",
                        canon_f64(*p)
                    ),
                );
                if let Some(meta) = release {
                    put(
                        &mut out,
                        format_args!(
                            " lambda={} delta={} seed={}",
                            canon_f64(meta.lambda),
                            canon_f64(meta.delta),
                            meta.seed
                        ),
                    );
                }
            }
            Response::Inserted {
                group_size,
                republished,
            } => {
                put(
                    &mut out,
                    format_args!("inserted group_size={group_size} republished={republished}"),
                );
            }
            Response::Flushed { events } => {
                put(&mut out, format_args!("flushed events={events}"));
            }
            Response::Using {
                release,
                sa,
                records,
                groups,
                p,
            } => {
                put(
                    &mut out,
                    format_args!(
                        "using release={release} sa={sa} records={records} groups={groups} p={}",
                        canon_f64(*p)
                    ),
                );
            }
            Response::Releases(entries) => {
                put(&mut out, format_args!("releases {}", entries.len()));
                for e in entries {
                    put(
                        &mut out,
                        format_args!(
                            "; name={} sa={} records={} groups={} live={}",
                            e.name, e.sa, e.records, e.groups, e.live
                        ),
                    );
                }
            }
            Response::Reloaded {
                release,
                records,
                groups,
            } => {
                put(
                    &mut out,
                    format_args!("reloaded release={release} records={records} groups={groups}"),
                );
            }
            Response::Stats(s) => {
                put(
                    &mut out,
                    format_args!(
                        "stats requests={} answered={} errors={} cache_hits={} cache_misses={} sessions={} inserts={} degraded={} faults={}",
                        s.requests, s.answered, s.errors, s.cache_hits, s.cache_misses, s.sessions, s.inserts, s.degraded, s.faults
                    ),
                );
            }
            Response::Metrics {
                counters,
                histograms,
            } => {
                put(
                    &mut out,
                    format_args!(
                        "metrics counters={} hists={}",
                        counters.len(),
                        histograms.len()
                    ),
                );
                for (name, value) in counters {
                    put(&mut out, format_args!(" c:{name}={value}"));
                }
                for h in histograms {
                    put(
                        &mut out,
                        format_args!(
                            " h:{}={}:{}:{}:{}:{}:{}",
                            h.name,
                            h.count,
                            h.p50,
                            h.p90,
                            h.p99,
                            h.max,
                            canon_f64(h.mean)
                        ),
                    );
                }
            }
            Response::Trace(events) => {
                put(&mut out, format_args!("trace n={}", events.len()));
                for e in events {
                    put(&mut out, format_args!(" seq={} label={}", e.seq, e.label));
                }
            }
            Response::Pong => out.push_str("pong"),
            Response::Bye => out.push_str("bye"),
            Response::Error { code, message } => {
                put(&mut out, format_args!("error code={code} {message}"));
            }
        }
        out
    }

    /// Parses one response line (the client side of the protocol).
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] with [`ErrorCode::Parse`] on anything
    /// that is not a canonical response line.
    pub fn parse(line: &str) -> Result<Self, ProtocolError> {
        let line = line.trim();
        let bad = |msg: String| ProtocolError::new(ErrorCode::Parse, msg);
        if line == "pong" {
            return Ok(Response::Pong);
        }
        if line == "bye" {
            return Ok(Response::Bye);
        }
        if let Some(rest) = line.strip_prefix("HELLO ") {
            let mut tokens = rest.split_whitespace();
            let proto = tokens
                .next()
                .ok_or_else(|| bad("missing protocol tag".into()))?;
            let version = proto
                .strip_prefix("rp/")
                .ok_or_else(|| bad(format!("expected rp/<version>, got `{proto}`")))?
                .parse()
                .map_err(|_| bad(format!("bad protocol version in `{proto}`")))?;
            let sa = expect_kv(tokens.next(), "sa")?.to_string();
            let records = parse_u64(expect_kv(tokens.next(), "records")?)?;
            let groups = parse_u64(expect_kv(tokens.next(), "groups")?)?;
            let p = parse_f64(expect_kv(tokens.next(), "p")?)?;
            let release = match tokens.next() {
                None => None,
                token => Some(expect_kv(token, "release")?.to_string()),
            };
            return Ok(Response::Hello {
                version,
                sa,
                records,
                groups,
                p,
                release,
            });
        }
        if line.starts_with("est=") {
            return Ok(Response::Answer(WireAnswer::parse_body(line)?));
        }
        if let Some(rest) = line.strip_prefix("batch ") {
            let mut parts = rest.split(';');
            let count: usize = parts
                .next()
                .and_then(|n| n.trim().parse().ok())
                .ok_or_else(|| bad("batch response needs a count".into()))?;
            let answers: Vec<WireAnswer> = parts
                .map(|p| WireAnswer::parse_body(p.trim()))
                .collect::<Result<_, _>>()?;
            if answers.len() != count {
                return Err(bad(format!(
                    "batch count {count} does not match {} answers",
                    answers.len()
                )));
            }
            return Ok(Response::Batch(answers));
        }
        if let Some(rest) = line.strip_prefix("publication ") {
            let mut tokens = rest.split_whitespace();
            let sa = expect_kv(tokens.next(), "sa")?.to_string();
            let records = parse_u64(expect_kv(tokens.next(), "records")?)?;
            let groups = parse_u64(expect_kv(tokens.next(), "groups")?)?;
            let p = parse_f64(expect_kv(tokens.next(), "p")?)?;
            let release = match tokens.next() {
                None => None,
                lambda_token => Some(ReleaseMeta {
                    lambda: parse_f64(expect_kv(lambda_token, "lambda")?)?,
                    delta: parse_f64(expect_kv(tokens.next(), "delta")?)?,
                    seed: parse_u64(expect_kv(tokens.next(), "seed")?)?,
                }),
            };
            return Ok(Response::Info {
                sa,
                records,
                groups,
                p,
                release,
            });
        }
        if let Some(rest) = line.strip_prefix("inserted ") {
            let mut tokens = rest.split_whitespace();
            let group_size = parse_u64(expect_kv(tokens.next(), "group_size")?)?;
            let republished = match expect_kv(tokens.next(), "republished")? {
                "true" => true,
                "false" => false,
                other => return Err(bad(format!("bad republished flag `{other}`"))),
            };
            return Ok(Response::Inserted {
                group_size,
                republished,
            });
        }
        if let Some(rest) = line.strip_prefix("flushed ") {
            let mut tokens = rest.split_whitespace();
            let events = parse_u64(expect_kv(tokens.next(), "events")?)?;
            return Ok(Response::Flushed { events });
        }
        if let Some(rest) = line.strip_prefix("using ") {
            let mut tokens = rest.split_whitespace();
            return Ok(Response::Using {
                release: expect_kv(tokens.next(), "release")?.to_string(),
                sa: expect_kv(tokens.next(), "sa")?.to_string(),
                records: parse_u64(expect_kv(tokens.next(), "records")?)?,
                groups: parse_u64(expect_kv(tokens.next(), "groups")?)?,
                p: parse_f64(expect_kv(tokens.next(), "p")?)?,
            });
        }
        if let Some(rest) = line.strip_prefix("releases ") {
            let mut parts = rest.split(';');
            let count: usize = parts
                .next()
                .and_then(|n| n.trim().parse().ok())
                .ok_or_else(|| bad("releases response needs a count".into()))?;
            let entries: Vec<ReleaseEntry> = parts
                .map(|part| {
                    let mut tokens = part.split_whitespace();
                    Ok(ReleaseEntry {
                        name: expect_kv(tokens.next(), "name")?.to_string(),
                        sa: expect_kv(tokens.next(), "sa")?.to_string(),
                        records: parse_u64(expect_kv(tokens.next(), "records")?)?,
                        groups: parse_u64(expect_kv(tokens.next(), "groups")?)?,
                        live: match expect_kv(tokens.next(), "live")? {
                            "true" => true,
                            "false" => false,
                            other => return Err(bad(format!("bad live flag `{other}`"))),
                        },
                    })
                })
                .collect::<Result<_, _>>()?;
            if entries.len() != count {
                return Err(bad(format!(
                    "releases count {count} does not match {} entries",
                    entries.len()
                )));
            }
            return Ok(Response::Releases(entries));
        }
        if let Some(rest) = line.strip_prefix("reloaded ") {
            let mut tokens = rest.split_whitespace();
            return Ok(Response::Reloaded {
                release: expect_kv(tokens.next(), "release")?.to_string(),
                records: parse_u64(expect_kv(tokens.next(), "records")?)?,
                groups: parse_u64(expect_kv(tokens.next(), "groups")?)?,
            });
        }
        if let Some(rest) = line.strip_prefix("stats ") {
            let mut tokens = rest.split_whitespace();
            return Ok(Response::Stats(StatsSnapshot {
                requests: parse_u64(expect_kv(tokens.next(), "requests")?)?,
                answered: parse_u64(expect_kv(tokens.next(), "answered")?)?,
                errors: parse_u64(expect_kv(tokens.next(), "errors")?)?,
                cache_hits: parse_u64(expect_kv(tokens.next(), "cache_hits")?)?,
                cache_misses: parse_u64(expect_kv(tokens.next(), "cache_misses")?)?,
                sessions: parse_u64(expect_kv(tokens.next(), "sessions")?)?,
                inserts: parse_u64(expect_kv(tokens.next(), "inserts")?)?,
                degraded: parse_u64(expect_kv(tokens.next(), "degraded")?)?,
                faults: parse_u64(expect_kv(tokens.next(), "faults")?)?,
            }));
        }
        if let Some(rest) = line.strip_prefix("metrics ") {
            let mut tokens = rest.split_whitespace();
            let counter_count: usize = parse_u64(expect_kv(tokens.next(), "counters")?)?
                .try_into()
                .map_err(|_| bad("counter count does not fit".into()))?;
            let hist_count: usize = parse_u64(expect_kv(tokens.next(), "hists")?)?
                .try_into()
                .map_err(|_| bad("histogram count does not fit".into()))?;
            let mut counters = Vec::with_capacity(counter_count);
            let mut histograms = Vec::with_capacity(hist_count);
            for token in tokens {
                if let Some(pair) = token.strip_prefix("c:") {
                    let (name, value) = pair
                        .split_once('=')
                        .ok_or_else(|| bad(format!("expected c:name=value, got `{token}`")))?;
                    if name.is_empty() {
                        return Err(bad(format!("empty counter name in `{token}`")));
                    }
                    counters.push((name.to_string(), parse_u64(value)?));
                } else if let Some(pair) = token.strip_prefix("h:") {
                    let (name, value) = pair
                        .split_once('=')
                        .ok_or_else(|| bad(format!("expected h:name=summary, got `{token}`")))?;
                    if name.is_empty() {
                        return Err(bad(format!("empty histogram name in `{token}`")));
                    }
                    let mut fields = value.split(':');
                    let mut next = |what: &str| -> Result<&str, ProtocolError> {
                        fields
                            .next()
                            .ok_or_else(|| bad(format!("histogram `{name}` missing {what}")))
                    };
                    let histogram = WireHistogram {
                        name: name.to_string(),
                        count: parse_u64(next("count")?)?,
                        p50: parse_u64(next("p50")?)?,
                        p90: parse_u64(next("p90")?)?,
                        p99: parse_u64(next("p99")?)?,
                        max: parse_u64(next("max")?)?,
                        mean: parse_f64(next("mean")?)?,
                    };
                    if fields.next().is_some() {
                        return Err(bad(format!("trailing fields on histogram `{name}`")));
                    }
                    histograms.push(histogram);
                } else {
                    return Err(bad(format!("expected c: or h: token, got `{token}`")));
                }
            }
            if counters.len() != counter_count || histograms.len() != hist_count {
                return Err(bad(format!(
                    "metrics counts {counter_count}/{hist_count} do not match {}/{} tokens",
                    counters.len(),
                    histograms.len()
                )));
            }
            return Ok(Response::Metrics {
                counters,
                histograms,
            });
        }
        if let Some(rest) = line.strip_prefix("trace ") {
            let mut tokens = rest.split_whitespace();
            let count: usize = parse_u64(expect_kv(tokens.next(), "n")?)?
                .try_into()
                .map_err(|_| bad("trace count does not fit".into()))?;
            let mut events = Vec::with_capacity(count.min(4096));
            while let Some(token) = tokens.next() {
                events.push(WireTraceEvent {
                    seq: parse_u64(expect_kv(Some(token), "seq")?)?,
                    label: expect_kv(tokens.next(), "label")?.to_string(),
                });
            }
            if events.len() != count {
                return Err(bad(format!(
                    "trace count {count} does not match {} events",
                    events.len()
                )));
            }
            return Ok(Response::Trace(events));
        }
        if let Some(rest) = line.strip_prefix("error ") {
            let (code_token, message) = match rest.split_once(char::is_whitespace) {
                Some((c, m)) => (c, m),
                None => (rest, ""),
            };
            let code_str = code_token
                .strip_prefix("code=")
                .ok_or_else(|| bad(format!("expected code=..., got `{code_token}`")))?;
            let code = ErrorCode::from_str_token(code_str)
                .ok_or_else(|| bad(format!("unknown error code `{code_str}`")))?;
            return Ok(Response::Error {
                code,
                message: message.to_string(),
            });
        }
        Err(bad(format!("unrecognized response line `{line}`")))
    }

    /// Whether this response reports a failure.
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error { .. })
    }
}

impl From<ProtocolError> for Response {
    fn from(e: ProtocolError) -> Self {
        Response::Error {
            code: e.code,
            message: e.message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(r: &Request) {
        let line = r.encode();
        let parsed = Request::parse(&line).unwrap().expect("non-empty");
        assert_eq!(&parsed, r, "canonical line `{line}`");
    }

    fn roundtrip_response(r: &Response) {
        let line = r.encode();
        let parsed = Response::parse(&line).unwrap();
        assert_eq!(&parsed, r, "canonical line `{line}`");
    }

    #[test]
    fn requests_round_trip() {
        let q1 = WireQuery::new(vec![("Job", "eng"), ("Disease", "flu")]);
        let q2 = WireQuery::new(vec![("Disease", "none")]);
        for r in [
            Request::Ping,
            Request::Quit,
            Request::Info,
            Request::Stats,
            Request::Flush,
            Request::Query(q1.clone()),
            Request::Batch(vec![q1, q2]),
            Request::Insert(WireRecord::new(vec![("Job", "eng"), ("Disease", "flu")])),
        ] {
            roundtrip_request(&r);
        }
    }

    #[test]
    fn catalog_requests_round_trip() {
        let q1 = WireQuery::new(vec![("Job", "eng"), ("Disease", "flu")]);
        let q2 = WireQuery::new(vec![("Disease", "none")]);
        let at = |release: &str, inner: Request| Request::At {
            release: release.into(),
            inner: Box::new(inner),
        };
        for r in [
            Request::Use("alpha".into()),
            Request::Releases,
            Request::Reload("beta".into()),
            at("alpha", Request::Query(q1.clone())),
            at("beta", Request::Batch(vec![q1.clone(), q2])),
            at(
                "alpha",
                Request::Insert(WireRecord::new(vec![("Job", "eng")])),
            ),
            at("beta", Request::Flush),
            at("alpha", Request::Info),
        ] {
            roundtrip_request(&r);
        }
    }

    #[test]
    fn qualifier_reserves_at_in_verb_position_only() {
        // A value containing `@` still rides as a bare condition: the
        // token has a `=` before the `@`.
        assert_eq!(
            Request::parse("Mail=a@b Disease=flu").unwrap().unwrap(),
            Request::Query(WireQuery::new(vec![("Mail", "a@b"), ("Disease", "flu")]))
        );
        // A first *column* containing `@` needs the explicit verb.
        assert_eq!(
            Request::parse("count C@x=v").unwrap().unwrap(),
            Request::Query(WireQuery::new(vec![("C@x", "v")]))
        );
        // Qualified failures.
        for (line, code) in [
            ("count@ Job=eng", ErrorCode::Parse),
            ("count@a@b Job=eng", ErrorCode::Parse),
            ("ping@alpha", ErrorCode::UnknownCommand),
            ("stats@alpha", ErrorCode::UnknownCommand),
            ("use@alpha", ErrorCode::UnknownCommand),
            ("flush@alpha now", ErrorCode::Parse),
            ("info@alpha now", ErrorCode::Parse),
            ("count@alpha", ErrorCode::Parse),
            ("use", ErrorCode::Parse),
            ("use two names", ErrorCode::Parse),
            ("use a@b", ErrorCode::Parse),
            ("reload", ErrorCode::Parse),
            ("releases beta", ErrorCode::Parse),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.code, code, "line `{line}` -> {err}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let answer = WireAnswer {
            estimate: 412.5,
            support: 2000,
            observed: 309,
            frequency: 0.20625,
            ci: Some((0.1621, 0.2499)),
        };
        let no_ci = WireAnswer {
            estimate: 0.0,
            support: 0,
            observed: 3,
            frequency: 0.0,
            ci: None,
        };
        for r in [
            Response::Hello {
                version: PROTOCOL_VERSION,
                sa: "Disease".into(),
                records: 6000,
                groups: 6,
                p: 0.5,
                release: None,
            },
            Response::Hello {
                version: PROTOCOL_VERSION,
                sa: "Disease".into(),
                records: 6000,
                groups: 6,
                p: 0.5,
                release: Some("alpha".into()),
            },
            Response::Answer(answer),
            Response::Batch(vec![answer, no_ci]),
            Response::Batch(Vec::new()),
            Response::Info {
                sa: "Disease".into(),
                records: 6000,
                groups: 6,
                p: 0.5,
                release: Some(ReleaseMeta {
                    lambda: 0.3,
                    delta: 0.3,
                    seed: 7,
                }),
            },
            Response::Info {
                sa: "Income".into(),
                records: 30162,
                groups: 127,
                p: 0.25,
                release: None,
            },
            Response::Stats(StatsSnapshot {
                requests: 10,
                answered: 8,
                errors: 2,
                cache_hits: 5,
                cache_misses: 3,
                sessions: 2,
                inserts: 7,
                degraded: 1,
                faults: 4,
            }),
            Response::Inserted {
                group_size: 501,
                republished: true,
            },
            Response::Inserted {
                group_size: 1,
                republished: false,
            },
            Response::Flushed { events: 12345 },
            Response::Pong,
            Response::Bye,
            Response::Error {
                code: ErrorCode::BadQuery,
                message: "query needs a condition on the SA column `Disease`".into(),
            },
            Response::Error {
                code: ErrorCode::ReadOnly,
                message: "serving a static artifact; restart with --wal to ingest".into(),
            },
        ] {
            roundtrip_response(&r);
        }
    }

    #[test]
    fn catalog_responses_round_trip() {
        for r in [
            Response::Using {
                release: "alpha".into(),
                sa: "Disease".into(),
                records: 6000,
                groups: 6,
                p: 0.5,
            },
            Response::Releases(vec![
                ReleaseEntry {
                    name: "alpha".into(),
                    sa: "Disease".into(),
                    records: 6000,
                    groups: 6,
                    live: false,
                },
                ReleaseEntry {
                    name: "beta".into(),
                    sa: "Income".into(),
                    records: 30162,
                    groups: 127,
                    live: true,
                },
            ]),
            Response::Releases(Vec::new()),
            Response::Reloaded {
                release: "beta".into(),
                records: 30163,
                groups: 127,
            },
            Response::Error {
                code: ErrorCode::UnknownRelease,
                message: "no release named `gamma`".into(),
            },
        ] {
            roundtrip_response(&r);
        }
    }

    #[test]
    fn observability_requests_round_trip() {
        for r in [
            Request::Metrics,
            Request::Trace(None),
            Request::Trace(Some(0)),
            Request::Trace(Some(32)),
        ] {
            roundtrip_request(&r);
        }
        assert_eq!(Request::Metrics.encode(), "metrics");
        assert_eq!(Request::Trace(None).encode(), "trace");
        assert_eq!(Request::Trace(Some(7)).encode(), "trace 7");
    }

    #[test]
    fn observability_responses_round_trip() {
        let hist = |name: &str, count: u64, mean: f64| WireHistogram {
            name: name.into(),
            count,
            p50: 511,
            p90: 2047,
            p99: 8191,
            max: 6200,
            mean,
        };
        for r in [
            Response::Metrics {
                counters: Vec::new(),
                histograms: Vec::new(),
            },
            Response::Metrics {
                counters: vec![
                    ("serve.sessions_opened".into(), 3),
                    ("service.requests".into(), 41),
                ],
                histograms: vec![hist("serve.request", 41, 812.5), hist("wal.sync", 0, 0.0)],
            },
            Response::Trace(Vec::new()),
            Response::Trace(vec![
                WireTraceEvent {
                    seq: 17,
                    label: "session.open".into(),
                },
                WireTraceEvent {
                    seq: 18,
                    label: "cache.miss".into(),
                },
            ]),
        ] {
            roundtrip_response(&r);
        }
        assert_eq!(
            Response::Metrics {
                counters: vec![("catalog.reload".into(), 1)],
                histograms: vec![hist("wal.sync", 2, 1.5)],
            }
            .encode(),
            "metrics counters=1 hists=1 c:catalog.reload=1 h:wal.sync=2:511:2047:8191:6200:1.5"
        );
        assert_eq!(
            Response::Trace(vec![WireTraceEvent {
                seq: 5,
                label: "stream.degraded".into(),
            }])
            .encode(),
            "trace n=1 seq=5 label=stream.degraded"
        );
    }

    #[test]
    fn observability_parse_failures() {
        for line in [
            "metrics counters=1 hists=0",                   // count mismatch
            "metrics counters=0 hists=0 c:x=1",             // extra token
            "metrics counters=1 hists=0 x=1",               // missing class prefix
            "metrics counters=1 hists=0 c:=1",              // empty name
            "metrics counters=0 hists=1 h:x=1:2:3",         // short summary
            "metrics counters=0 hists=1 h:x=1:2:3:4:5:6:7", // long summary
            "trace n=2 seq=1 label=a",                      // count mismatch
            "trace n=1 seq=1",                              // missing label
            "trace n=1 label=a seq=1",                      // wrong field order
        ] {
            let err = Response::parse(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::Parse, "line `{line}`");
        }
        for line in ["trace x", "trace -3", "metrics now"] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::Parse, "line `{line}`");
        }
    }

    #[test]
    fn verb_is_optional_and_aliases_normalize() {
        let canonical = Request::parse("count Job=eng Disease=flu")
            .unwrap()
            .unwrap();
        assert_eq!(
            Request::parse("  Job=eng Disease=flu ").unwrap().unwrap(),
            canonical
        );
        assert_eq!(Request::parse("exit").unwrap().unwrap(), Request::Quit);
        assert_eq!(Request::parse("   ").unwrap(), None);
        assert_eq!(Request::parse("").unwrap(), None);
    }

    #[test]
    fn batch_accepts_optional_verbs() {
        let parsed = Request::parse("batch Job=eng Disease=flu; count Disease=none")
            .unwrap()
            .unwrap();
        let Request::Batch(queries) = parsed else {
            panic!("expected batch");
        };
        assert_eq!(queries.len(), 2);
        assert_eq!(
            queries[1].conditions,
            vec![("Disease".into(), "none".into())]
        );
    }

    #[test]
    fn parse_failures_carry_distinct_codes() {
        for (line, code) in [
            ("garbage", ErrorCode::UnknownCommand),
            ("count Job", ErrorCode::Parse),
            ("count", ErrorCode::Parse),
            ("batch", ErrorCode::Parse),
            ("batch ; ;", ErrorCode::Parse),
            ("ping me", ErrorCode::Parse),
            ("count =v", ErrorCode::Parse),
            ("count k=", ErrorCode::Parse),
            ("insert", ErrorCode::Parse),
            ("insert Job", ErrorCode::Parse),
            ("flush now", ErrorCode::Parse),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.code, code, "line `{line}` -> {err}");
        }
    }

    #[test]
    fn floats_encode_shortest_round_trip() {
        // Rust's `{}` Display for f64 is the shortest string that parses
        // back to the same bits — the protocol relies on that for exact
        // round-trips.
        let a = WireAnswer {
            estimate: 1.0 / 3.0,
            support: 1,
            observed: 1,
            frequency: 0.1 + 0.2,
            ci: Some((f64::MIN_POSITIVE, 1e300)),
        };
        roundtrip_response(&Response::Answer(a));
    }

    #[test]
    fn error_code_tokens_round_trip() {
        for code in [
            ErrorCode::Parse,
            ErrorCode::UnknownCommand,
            ErrorCode::BadQuery,
            ErrorCode::Busy,
            ErrorCode::Internal,
            ErrorCode::ReadOnly,
            ErrorCode::UnknownRelease,
            ErrorCode::Degraded,
        ] {
            assert_eq!(ErrorCode::from_str_token(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::from_str_token("nope"), None);
    }
}
