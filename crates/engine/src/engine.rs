//! The long-lived [`QueryEngine`]: answer many Section-6 count queries
//! from one release without rescanning it.
//!
//! Construction pays the preprocessing once — personal-group histograms of
//! the published table (the cached per-group reconstruction substrate) plus
//! per-`(NA attribute, code)` selection bitmaps over the group keys — and
//! every query is then answered by ANDing the cached bitmaps and summing
//! the matching groups, 64 groups per word, never key by key. For query
//! batches and pools the NA match index is precomputed too
//! ([`QueryEngine::prepare`]), so repeated workloads over the same release
//! touch each group key once.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

use rp_core::estimate::GroupedView;
use rp_core::groups::PersonalGroups;
use rp_core::mle::reconstruct_frequency;
use rp_core::variance::{confidence_interval, ConfidenceInterval};
use rp_datagen::querypool::QueryPool;
use rp_stats::summary::relative_error;
use rp_table::{AttrId, CountQuery, Schema, TableError};

use crate::publication::Publication;

/// One answered count query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Answer {
    /// The Section-6 estimate `est = |S*| · F′` (0 on empty support).
    pub estimate: f64,
    /// `|S*|` — published records matching the NA conditions (exact; public
    /// attributes are never perturbed).
    pub support: u64,
    /// `O*` — records in `S*` carrying the queried SA value.
    pub observed: u64,
    /// The reconstructed frequency `F′` (0 on empty support).
    pub frequency: f64,
    /// 95% confidence interval for `F′` (`None` on empty support).
    pub ci: Option<ConfidenceInterval>,
}

impl Answer {
    /// The estimate's 95% interval in record counts, if available.
    pub fn count_interval(&self) -> Option<(f64, f64)> {
        self.ci
            .map(|ci| (self.support as f64 * ci.lo, self.support as f64 * ci.hi))
    }
}

/// A precomputed NA match index for a fixed query list (one group-id list
/// per query). Reusable across engines built over the same grouping — the
/// sweeps of Figures 3/5 answer 10 perturbation runs through one index.
/// The query list is fingerprinted at preparation time, so using the index
/// with a different (even same-length) list is a [`EngineError::PreparedMismatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedQueries {
    index: Vec<Vec<u32>>,
    groups: usize,
    fingerprint: u64,
}

/// Order-sensitive hash of a query list, for prepared-index validation.
fn fingerprint<'a>(queries: impl Iterator<Item = &'a CountQuery>) -> u64 {
    let mut hasher = DefaultHasher::new();
    for q in queries {
        q.hash(&mut hasher);
    }
    hasher.finish()
}

impl PreparedQueries {
    /// Number of prepared queries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no queries were prepared.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

/// Errors raised by query answering.
#[derive(Debug)]
pub enum EngineError {
    /// The query failed schema validation.
    Table(TableError),
    /// The query's SA attribute is not the publication's SA attribute.
    SaMismatch {
        /// The publication's sensitive attribute.
        expected: AttrId,
        /// The query's sensitive attribute.
        got: AttrId,
    },
    /// A query line or condition list named no SA condition.
    MissingSaCondition {
        /// The sensitive attribute's name.
        sa_name: String,
    },
    /// A query named the SA condition more than once.
    DuplicateSaCondition {
        /// The sensitive attribute's name.
        sa_name: String,
    },
    /// A query named the same NA column more than once (conjunctive
    /// equality conditions on one column cannot both hold).
    DuplicateCondition {
        /// The repeated column's name.
        name: String,
    },
    /// A prepared index was built for a different query list or grouping.
    PreparedMismatch {
        /// What was inconsistent.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Table(e) => write!(f, "{e}"),
            EngineError::SaMismatch { expected, got } => write!(
                f,
                "query counts SA attribute {got} but the publication's SA is {expected}"
            ),
            EngineError::MissingSaCondition { sa_name } => {
                write!(f, "query needs a condition on the SA column `{sa_name}`")
            }
            EngineError::DuplicateSaCondition { sa_name } => {
                write!(f, "query names the SA column `{sa_name}` more than once")
            }
            EngineError::DuplicateCondition { name } => {
                write!(f, "query names the column `{name}` more than once")
            }
            EngineError::PreparedMismatch { detail } => {
                write!(f, "prepared queries do not match: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Table(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TableError> for EngineError {
    fn from(e: TableError) -> Self {
        EngineError::Table(e)
    }
}

/// A query-answering service over one release.
///
/// Holds the published schema, the estimator parameters and the per-group
/// SA histograms; answers single queries ([`QueryEngine::answer`]), batches
/// ([`QueryEngine::answer_batch`]) and whole Section-6 pools
/// ([`QueryEngine::answer_pool`]).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryEngine {
    schema: Schema,
    sa: AttrId,
    m: usize,
    p: f64,
    view: GroupedView,
}

impl QueryEngine {
    /// Builds the engine from a release: groups the published table once
    /// and caches the per-group SA histograms.
    pub fn new(publication: &Publication) -> Self {
        let spec = publication.spec();
        let sa = spec.sa();
        let m = spec.m();
        let groups = PersonalGroups::build(publication.table(), spec);
        let hists = groups.groups().iter().map(|g| g.sa_hist.clone()).collect();
        Self {
            schema: publication.schema().clone(),
            sa,
            m,
            p: publication.p(),
            view: GroupedView::from_histograms(&groups, hists),
        }
    }

    /// Builds the engine directly from histogram-level perturbation output
    /// (`up_histograms` / `sps_histograms`) — the fast path of the paper's
    /// parameter sweeps, which never materializes published records.
    ///
    /// `groups` is the *raw* table's grouping (for the keys), `hists` one
    /// perturbed histogram per group, `schema` the published schema.
    ///
    /// # Panics
    ///
    /// Panics if `hists` is not aligned with `groups` or `p` is outside
    /// `(0, 1)`.
    pub fn from_histograms(
        groups: &PersonalGroups,
        hists: Vec<Vec<u64>>,
        schema: &Schema,
        p: f64,
    ) -> Self {
        assert!(p > 0.0 && p < 1.0, "retention must lie in (0, 1), got {p}");
        Self {
            schema: schema.clone(),
            sa: groups.spec().sa(),
            m: groups.spec().m(),
            p,
            view: GroupedView::from_histograms(groups, hists),
        }
    }

    /// The published schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The sensitive attribute index.
    pub fn sa(&self) -> AttrId {
        self.sa
    }

    /// The retention probability used by the estimator.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Records in the release the engine answers from.
    pub fn records(&self) -> u64 {
        self.view.total_records()
    }

    /// Personal groups in the release.
    pub fn groups(&self) -> usize {
        self.view.len()
    }

    /// The underlying grouped view (for statistics consumers such as
    /// `rp-learn`'s sufficient-statistics extraction).
    pub fn view(&self) -> &GroupedView {
        &self.view
    }

    fn validate(&self, query: &CountQuery) -> Result<(), EngineError> {
        if query.sa_attr() != self.sa {
            return Err(EngineError::SaMismatch {
                expected: self.sa,
                got: query.sa_attr(),
            });
        }
        query.validate(&self.schema)?;
        Ok(())
    }

    /// Builds the Section-6 answer from raw `(support, observed)` counts
    /// using this release's estimator parameters. The merge point of the
    /// streaming path: a live service sums the base release's counts with
    /// the live groups' counts and estimates over the union.
    pub fn answer_from_counts(&self, support: u64, observed: u64) -> Answer {
        self.answer_from(support, observed)
    }

    /// `(support, observed)` of the release subset matching the query —
    /// the raw counts behind [`QueryEngine::answer`], exposed so a
    /// streaming service can combine them with the live view's counts.
    ///
    /// # Errors
    ///
    /// As [`QueryEngine::answer`].
    pub fn counts(&self, query: &CountQuery) -> Result<(u64, u64), EngineError> {
        self.validate(query)?;
        Ok(self.view.support_and_observed(query))
    }

    fn answer_from(&self, support: u64, observed: u64) -> Answer {
        if support == 0 {
            return Answer {
                estimate: 0.0,
                support: 0,
                observed,
                frequency: 0.0,
                ci: None,
            };
        }
        let frequency = reconstruct_frequency(observed, support, self.p, self.m);
        Answer {
            estimate: support as f64 * frequency,
            support,
            observed,
            frequency,
            ci: Some(confidence_interval(
                frequency, support, self.p, self.m, 0.95,
            )),
        }
    }

    /// Answers one count query.
    ///
    /// # Errors
    ///
    /// Returns an error if the query fails schema validation or counts a
    /// different SA attribute than the release.
    pub fn answer(&self, query: &CountQuery) -> Result<Answer, EngineError> {
        self.validate(query)?;
        let (support, observed) = self.view.support_and_observed(query);
        Ok(self.answer_from(support, observed))
    }

    /// Builds a count query from `(column name, value)` conditions.
    /// Exactly one condition must name the SA column; the rest become NA
    /// equality conditions.
    ///
    /// # Errors
    ///
    /// Returns an error on unknown columns or values, or if the SA column
    /// appears zero or multiple times.
    pub fn query_from_values(
        &self,
        conditions: &[(&str, &str)],
    ) -> Result<CountQuery, EngineError> {
        let sa_name = self.schema.attribute(self.sa).name().to_string();
        let mut na = Vec::new();
        let mut sa_value: Option<u32> = None;
        for &(col, value) in conditions {
            let attr = self.schema.attr_id(col)?;
            let code = self
                .schema
                .attribute(attr)
                .dictionary()
                .code(value)
                .ok_or_else(|| {
                    EngineError::Table(TableError::UnknownValue {
                        attribute: col.to_string(),
                        value: value.to_string(),
                    })
                })?;
            if attr == self.sa {
                if sa_value.is_some() {
                    return Err(EngineError::DuplicateSaCondition { sa_name });
                }
                sa_value = Some(code);
            } else {
                // Pattern construction rejects duplicate attributes with a
                // panic; catch them here as a typed error instead.
                if na.iter().any(|&(a, _)| a == attr) {
                    return Err(EngineError::DuplicateCondition {
                        name: col.to_string(),
                    });
                }
                na.push((attr, code));
            }
        }
        let Some(sa_value) = sa_value else {
            return Err(EngineError::MissingSaCondition { sa_name });
        };
        Ok(CountQuery::new(na, self.sa, sa_value)?)
    }

    /// Precomputes the NA match index for a query list, validating each
    /// query once. The index depends only on the group keys, so it is
    /// reusable across engines built over the same grouping (e.g. the 10
    /// perturbation runs of a sweep).
    ///
    /// # Errors
    ///
    /// Returns the first query validation failure.
    pub fn prepare(&self, queries: &[CountQuery]) -> Result<PreparedQueries, EngineError> {
        for q in queries {
            self.validate(q)?;
        }
        Ok(PreparedQueries {
            index: self.view.match_index(queries),
            groups: self.view.len(),
            fingerprint: fingerprint(queries.iter()),
        })
    }

    /// Precomputes the match index for a Section-6 query pool.
    ///
    /// # Errors
    ///
    /// As [`QueryEngine::prepare`].
    pub fn prepare_pool(&self, pool: &QueryPool) -> Result<PreparedQueries, EngineError> {
        let queries: Vec<CountQuery> = pool.queries.iter().map(|pq| pq.query.clone()).collect();
        self.prepare(&queries)
    }

    /// Answers a batch through a prepared match index.
    ///
    /// # Errors
    ///
    /// Returns an error if `prepared` was built for a different query count
    /// or grouping.
    pub fn answer_batch(
        &self,
        queries: &[CountQuery],
        prepared: &PreparedQueries,
    ) -> Result<Vec<Answer>, EngineError> {
        self.check_prepared(queries.iter(), prepared)?;
        Ok(queries
            .iter()
            .zip(&prepared.index)
            .map(|(q, matching)| {
                let (support, observed) = self.view.support_and_observed_indexed(q, matching);
                self.answer_from(support, observed)
            })
            .collect())
    }

    /// Answers a whole Section-6 pool through a prepared index, returning
    /// one answer per pooled query (aligned with `pool.queries`).
    ///
    /// # Errors
    ///
    /// As [`QueryEngine::answer_batch`].
    pub fn answer_pool(
        &self,
        pool: &QueryPool,
        prepared: &PreparedQueries,
    ) -> Result<Vec<Answer>, EngineError> {
        self.check_prepared(pool.queries.iter().map(|pq| &pq.query), prepared)?;
        Ok(pool
            .queries
            .iter()
            .zip(&prepared.index)
            .map(|(pq, matching)| {
                let (support, observed) =
                    self.view.support_and_observed_indexed(&pq.query, matching);
                self.answer_from(support, observed)
            })
            .collect())
    }

    /// Mean relative error `|est − ans| / ans` over a pool — the paper's
    /// Section-6 utility measure for one perturbation run.
    ///
    /// # Errors
    ///
    /// As [`QueryEngine::answer_batch`].
    pub fn mean_relative_error(
        &self,
        pool: &QueryPool,
        prepared: &PreparedQueries,
    ) -> Result<f64, EngineError> {
        if pool.is_empty() {
            return Ok(0.0);
        }
        let answers = self.answer_pool(pool, prepared)?;
        let total: f64 = pool
            .queries
            .iter()
            .zip(&answers)
            .map(|(pq, a)| relative_error(a.estimate, pq.answer as f64))
            .sum();
        Ok(total / pool.queries.len() as f64)
    }

    fn check_prepared<'a>(
        &self,
        queries: impl ExactSizeIterator<Item = &'a CountQuery> + Clone,
        prepared: &PreparedQueries,
    ) -> Result<(), EngineError> {
        if prepared.index.len() != queries.len() {
            return Err(EngineError::PreparedMismatch {
                detail: format!(
                    "index covers {} queries, batch has {}",
                    prepared.index.len(),
                    queries.len()
                ),
            });
        }
        if prepared.groups != self.view.len() {
            return Err(EngineError::PreparedMismatch {
                detail: format!(
                    "index built over {} groups, engine has {}",
                    prepared.groups,
                    self.view.len()
                ),
            });
        }
        if prepared.fingerprint != fingerprint(queries) {
            return Err(EngineError::PreparedMismatch {
                detail: "index was prepared for a different query list".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publisher::Publisher;
    use rp_core::estimate::estimate_by_scan;
    use rp_table::{Attribute, Schema, Table, TableBuilder};

    fn demo_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("G", ["a", "b"]),
            Attribute::new("J", ["x", "y"]),
            Attribute::new("SA", ["s0", "s1", "s2", "s3"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..1200u32 {
            b.push_codes(&[0, 0, (i % 2) * 2]).unwrap();
        }
        for i in 0..800u32 {
            b.push_codes(&[1, 1, if i % 4 == 0 { 3 } else { 1 }])
                .unwrap();
        }
        b.build()
    }

    fn demo_publication() -> crate::Publication {
        Publisher::new(demo_table())
            .sa(2)
            .seed(9)
            .publish()
            .unwrap()
    }

    #[test]
    fn engine_matches_scan_estimates_exactly() {
        let publication = demo_publication();
        let engine = QueryEngine::new(&publication);
        for q in [
            CountQuery::new(vec![(0, 0)], 2, 0).unwrap(),
            CountQuery::new(vec![(0, 1), (1, 1)], 2, 1).unwrap(),
            CountQuery::new(vec![], 2, 3).unwrap(),
        ] {
            let scan = estimate_by_scan(publication.table(), &q, publication.p());
            let a = engine.answer(&q).unwrap();
            assert!((a.estimate - scan).abs() < 1e-9, "{a:?} vs {scan}");
        }
    }

    #[test]
    fn empty_support_answers_zero_without_ci() {
        let publication = demo_publication();
        let engine = QueryEngine::new(&publication);
        // G=a ∧ J=y never occurs.
        let q = CountQuery::new(vec![(0, 0), (1, 1)], 2, 0).unwrap();
        let a = engine.answer(&q).unwrap();
        assert_eq!(a.support, 0);
        assert_eq!(a.estimate, 0.0);
        assert!(a.ci.is_none());
        assert!(a.count_interval().is_none());
    }

    #[test]
    fn answers_carry_confidence_intervals() {
        let publication = demo_publication();
        let engine = QueryEngine::new(&publication);
        let q = CountQuery::new(vec![(0, 0)], 2, 0).unwrap();
        let a = engine.answer(&q).unwrap();
        // The group was sampled and rescaled, so support is near (not
        // exactly) the original 1200.
        assert!((a.support as f64 - 1200.0).abs() < 150.0, "{a:?}");
        let ci = a.ci.unwrap();
        assert!(ci.contains(a.frequency));
        let (lo, hi) = a.count_interval().unwrap();
        assert!(lo <= a.estimate && a.estimate <= hi);
    }

    #[test]
    fn batch_matches_single_answers() {
        let publication = demo_publication();
        let engine = QueryEngine::new(&publication);
        let queries = vec![
            CountQuery::new(vec![(0, 0)], 2, 0).unwrap(),
            CountQuery::new(vec![(1, 1)], 2, 1).unwrap(),
            CountQuery::new(vec![(0, 1), (1, 0)], 2, 2).unwrap(),
        ];
        let prepared = engine.prepare(&queries).unwrap();
        let batch = engine.answer_batch(&queries, &prepared).unwrap();
        for (q, b) in queries.iter().zip(&batch) {
            assert_eq!(&engine.answer(q).unwrap(), b);
        }
    }

    #[test]
    fn wrong_sa_and_invalid_codes_rejected() {
        let publication = demo_publication();
        let engine = QueryEngine::new(&publication);
        let wrong_sa = CountQuery::new(vec![(0, 0)], 1, 0).unwrap();
        assert!(matches!(
            engine.answer(&wrong_sa),
            Err(EngineError::SaMismatch {
                expected: 2,
                got: 1
            })
        ));
        let bad_code = CountQuery::new(vec![(0, 7)], 2, 0).unwrap();
        assert!(matches!(
            engine.answer(&bad_code),
            Err(EngineError::Table(_))
        ));
    }

    #[test]
    fn query_from_values_splits_na_and_sa() {
        let publication = demo_publication();
        let engine = QueryEngine::new(&publication);
        let q = engine
            .query_from_values(&[("G", "a"), ("SA", "s0")])
            .unwrap();
        assert_eq!(q.sa_attr(), 2);
        assert_eq!(q.sa_value(), 0);
        assert_eq!(q.dimensionality(), 1);
        assert!(matches!(
            engine.query_from_values(&[("G", "a")]),
            Err(EngineError::MissingSaCondition { .. })
        ));
        assert!(matches!(
            engine.query_from_values(&[("SA", "s0"), ("SA", "s1")]),
            Err(EngineError::DuplicateSaCondition { .. })
        ));
        // A repeated NA column must be a typed error, never the Pattern
        // duplicate-attribute panic.
        assert!(matches!(
            engine.query_from_values(&[("G", "a"), ("G", "a"), ("SA", "s0")]),
            Err(EngineError::DuplicateCondition { .. })
        ));
        assert!(matches!(
            engine.query_from_values(&[("Nope", "a"), ("SA", "s0")]),
            Err(EngineError::Table(TableError::UnknownAttribute(_)))
        ));
        assert!(matches!(
            engine.query_from_values(&[("G", "zzz"), ("SA", "s0")]),
            Err(EngineError::Table(TableError::UnknownValue { .. }))
        ));
    }

    #[test]
    fn prepared_mismatch_detected() {
        let publication = demo_publication();
        let engine = QueryEngine::new(&publication);
        let queries = vec![CountQuery::new(vec![(0, 0)], 2, 0).unwrap()];
        let prepared = engine.prepare(&queries).unwrap();
        let more = vec![
            CountQuery::new(vec![(0, 0)], 2, 0).unwrap(),
            CountQuery::new(vec![(0, 1)], 2, 1).unwrap(),
        ];
        assert!(matches!(
            engine.answer_batch(&more, &prepared),
            Err(EngineError::PreparedMismatch { .. })
        ));
        // Same length, different queries: the fingerprint catches it.
        let different = vec![CountQuery::new(vec![(0, 1)], 2, 3).unwrap()];
        assert!(matches!(
            engine.answer_batch(&different, &prepared),
            Err(EngineError::PreparedMismatch { .. })
        ));
        // Reordering is also a mismatch (answers align by position).
        let two = vec![
            CountQuery::new(vec![(0, 0)], 2, 0).unwrap(),
            CountQuery::new(vec![(1, 1)], 2, 1).unwrap(),
        ];
        let prepared_two = engine.prepare(&two).unwrap();
        let reordered: Vec<CountQuery> = two.iter().rev().cloned().collect();
        assert!(matches!(
            engine.answer_batch(&reordered, &prepared_two),
            Err(EngineError::PreparedMismatch { .. })
        ));
        assert!(engine.answer_batch(&two, &prepared_two).is_ok());
    }

    #[test]
    fn histogram_engine_reuses_prepared_index_across_runs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use rp_core::groups::{PersonalGroups, SaSpec};
        use rp_core::sps::up_histograms;

        let t = demo_table();
        let spec = SaSpec::new(&t, 2);
        let groups = PersonalGroups::build(&t, spec);
        let mut rng = StdRng::seed_from_u64(31);
        let queries = vec![
            CountQuery::new(vec![(0, 0)], 2, 0).unwrap(),
            CountQuery::new(vec![(1, 1)], 2, 1).unwrap(),
        ];
        let base = QueryEngine::from_histograms(
            &groups,
            groups.groups().iter().map(|g| g.sa_hist.clone()).collect(),
            t.schema(),
            0.5,
        );
        let prepared = base.prepare(&queries).unwrap();
        for _ in 0..3 {
            let engine = QueryEngine::from_histograms(
                &groups,
                up_histograms(&mut rng, &groups, 0.5),
                t.schema(),
                0.5,
            );
            let batch = engine.answer_batch(&queries, &prepared).unwrap();
            for (q, b) in queries.iter().zip(&batch) {
                assert_eq!(&engine.answer(q).unwrap(), b);
            }
        }
    }
}
