//! Shared line-codec machinery for the on-disk artifact formats.
//!
//! Both persistent formats of this crate — the [`crate::Publication`]
//! artifact and the insert WAL of [`crate::stream`] — follow the same
//! codec discipline: line-oriented, tab-separated, a versioned magic
//! line up front, `parse ∘ encode = id` over every representable value.
//! This module holds the pieces they share: a position-tracking line
//! reader, `key\tv1\tv2...` field parsing, the token check for writable
//! strings, and the schema section (`attrs` + `attr` lines) both formats
//! embed so either file is self-describing.

use std::fmt;
use std::io::{BufRead, Write};

use rp_table::{Attribute, Schema};

use crate::publication::PublicationError;

/// Canonical float formatting: every `f64` that reaches an artifact or
/// the wire is rendered through this one adapter, so float bytes have
/// exactly one producer and the `canonical-floats` lint can recognize
/// routed values. The rendering is Rust's shortest-roundtrip `Display`
/// — byte-identical to the format these files have always used.
pub(crate) fn canon_f64(v: f64) -> CanonF64 {
    CanonF64(v)
}

/// See [`canon_f64`].
pub(crate) struct CanonF64(f64);

impl fmt::Display for CanonF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// Refuses strings that cannot ride a tab-separated line format.
pub(crate) fn check_writable(s: &str) -> Result<(), PublicationError> {
    if s.contains('\t') || s.contains('\n') || s.contains('\r') {
        return Err(PublicationError::Unrepresentable(s.to_string()));
    }
    Ok(())
}

/// Writes the schema section: one `attrs` count line, then one `attr`
/// line per attribute (name followed by its domain values).
pub(crate) fn write_schema<W: Write>(mut w: W, schema: &Schema) -> Result<(), PublicationError> {
    for (_, attr) in schema.iter() {
        check_writable(attr.name())?;
        for v in attr.dictionary().values() {
            check_writable(v)?;
        }
    }
    writeln!(w, "attrs\t{}", schema.arity())?;
    for (_, attr) in schema.iter() {
        write!(w, "attr\t{}", attr.name())?;
        for v in attr.dictionary().values() {
            write!(w, "\t{v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads the schema section written by [`write_schema`], returning the
/// attributes in order. Callers apply their own shape validation (SA
/// range, minimum arity) on top.
pub(crate) fn read_schema<R: BufRead>(
    lines: &mut Lines<R>,
) -> Result<Vec<Attribute>, PublicationError> {
    let arity: usize = lines.field("attrs")?.parse_one()?;
    // The count is untrusted: cap the pre-allocation so a corrupt header
    // cannot trigger a capacity-overflow panic or a huge reservation (a
    // real arity past the cap still loads, slower).
    let mut attributes = Vec::with_capacity(arity.min(1 << 10));
    for _ in 0..arity {
        let f = lines.field("attr")?;
        if f.values.is_empty() {
            return Err(f.error("attr line needs a name"));
        }
        attributes.push(Attribute::new(f.values[0], f.values[1..].iter().copied()));
    }
    Ok(attributes)
}

/// Line reader with position tracking for error messages.
pub(crate) struct Lines<R> {
    inner: R,
    pub(crate) line_no: usize,
    buf: String,
}

/// One parsed `key\tv1\tv2...` metadata line.
pub(crate) struct Field<'a> {
    pub(crate) key: &'a str,
    pub(crate) values: Vec<&'a str>,
    pub(crate) line: usize,
}

impl<R: BufRead> Lines<R> {
    pub(crate) fn new(inner: R) -> Self {
        Self {
            inner,
            line_no: 0,
            buf: String::new(),
        }
    }

    pub(crate) fn err(&self, message: String) -> PublicationError {
        PublicationError::Format {
            line: self.line_no,
            message,
        }
    }

    pub(crate) fn next_line(&mut self) -> Result<&str, PublicationError> {
        self.buf.clear();
        let n = self.inner.read_line(&mut self.buf)?;
        self.line_no += 1;
        if n == 0 {
            return Err(PublicationError::Format {
                line: self.line_no,
                message: "unexpected end of input".to_string(),
            });
        }
        Ok(self.buf.trim_end_matches(['\n', '\r']))
    }

    pub(crate) fn expect_eof(&mut self) -> Result<(), PublicationError> {
        self.buf.clear();
        if self.inner.read_line(&mut self.buf)? != 0 {
            return Err(PublicationError::Format {
                line: self.line_no + 1,
                message: "trailing content after the declared row count".to_string(),
            });
        }
        Ok(())
    }

    pub(crate) fn field(&mut self, key: &'static str) -> Result<Field<'_>, PublicationError> {
        let line_no = self.line_no + 1;
        let line = self.next_line()?;
        let mut parts = line.split('\t');
        let got = parts.next().unwrap_or("");
        if got != key {
            return Err(PublicationError::Format {
                line: line_no,
                message: format!("expected `{key}` line, got `{got}`"),
            });
        }
        Ok(Field {
            key,
            values: parts.collect(),
            line: line_no,
        })
    }
}

impl Field<'_> {
    pub(crate) fn error(&self, message: impl Into<String>) -> PublicationError {
        PublicationError::Format {
            line: self.line,
            message: message.into(),
        }
    }

    pub(crate) fn parse_at<T: std::str::FromStr>(&self, i: usize) -> Result<T, PublicationError>
    where
        T::Err: fmt::Display,
    {
        let raw = self
            .values
            .get(i)
            .ok_or_else(|| self.error(format!("`{}` line needs field {i}", self.key)))?;
        raw.parse()
            .map_err(|e| self.error(format!("bad `{}` field `{raw}`: {e}", self.key)))
    }

    pub(crate) fn parse_one<T: std::str::FromStr>(&self) -> Result<T, PublicationError>
    where
        T::Err: fmt::Display,
    {
        if self.values.len() != 1 {
            return Err(self.error(format!(
                "`{}` line needs exactly one value, got {}",
                self.key,
                self.values.len()
            )));
        }
        self.parse_at(0)
    }
}
