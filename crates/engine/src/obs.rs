//! Process-wide observability: named counters, log₂-bucketed latency
//! histograms, scope-timing spans, and a bounded ring buffer of recent
//! structured trace events.
//!
//! The subsystem is dependency-free and lock-free on the hot path: counters
//! and histogram buckets are plain [`AtomicU64`]s, and only the trace ring
//! takes a (leaf-only, never nested) mutex. Everything hangs off a
//! [`Registry`]; production code uses the process-global registry returned by
//! [`global`], while tests construct private registries with
//! [`Registry::with_clock`] and a [`MockClock`] for deterministic timings.
//!
//! # Contracts
//!
//! Two invariants are load-bearing and enforced elsewhere in the workspace:
//!
//! * **Zero byte impact.** Instrumentation never changes the response bytes
//!   of any pre-existing protocol verb. Counters and histograms are only
//!   *read* by the rp/5 `metrics` / `trace` verbs; no other encoder consults
//!   them. The transcript-equivalence suite replays full sessions with
//!   observability enabled and disabled and asserts byte-identical output.
//! * **Clock routing.** All production time reads go through the [`Clock`]
//!   trait (via [`Registry::now_ns`]); raw `Instant::now` / `SystemTime::now`
//!   calls outside this module are rejected by the `rp-analyze` `obs-clock`
//!   rule. This keeps every latency measurement mockable and keeps wall-clock
//!   nondeterminism quarantined in one file.
//!
//! # Cost model
//!
//! Per-request stage timings (`service.parse` / `service.execute` /
//! `service.handle`, `service.cache_lookup`, `serve.encode`) are sampled
//! 1-in-[`SAMPLE_EVERY`] via a per-histogram tick counter so the steady-state
//! overhead on the serving hot path stays within a few percent; the first
//! event at each site is always sampled, so one request is enough to make
//! every driven histogram non-empty. Expensive, infrequent operations (WAL
//! `sync_data`, replay, spill page I/O, whole sessions) are timed on every
//! occurrence.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of log₂ histogram buckets. Bucket 0 holds exact zeros; bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i - 1]`; the last bucket absorbs
/// everything from `2^62` up.
pub const BUCKET_COUNT: usize = 64;

/// Sampled instrumentation sites record one event in every `SAMPLE_EVERY`
/// (the tick counter starts at zero, so the first event is always recorded).
pub const SAMPLE_EVERY: u64 = 8;

/// Default capacity of the trace ring buffer (`serve --trace-buffer N`
/// overrides it at startup).
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// Every counter the engine increments, sorted by name. The registry is
/// closed-world: looking up a name outside this list returns a shared
/// fallback cell that is never exported, so a typo cannot panic a server.
pub const COUNTERS: &[&str] = &[
    "catalog.reload",
    "catalog.route_fast",
    "catalog.route_slow",
    "catalog.seal",
    "fault.injected",
    "serve.sessions_closed",
    "serve.sessions_opened",
    "server.busy_refused",
    "stream.degraded",
    "stream.replayed_events",
    "stream.republish",
];

/// Every histogram the engine records into, sorted by name. Values are
/// nanoseconds except `commit.batch_events` (events per commit batch).
pub const HISTOGRAMS: &[&str] = &[
    "commit.batch_events",
    "serve.encode",
    "serve.request",
    "serve.session",
    "service.cache_lookup",
    "service.execute",
    "service.handle",
    "service.parse",
    "spill.page_read",
    "spill.page_write",
    "stream.replay",
    "wal.append",
    "wal.sync",
];

/// A monotonic nanosecond clock. Implementations must be cheap: `now_ns` sits
/// on every span and sampled stage timing.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin. Must never decrease.
    fn now_ns(&self) -> u64;
}

/// Production clock: nanoseconds since the clock was constructed, measured
/// with the OS monotonic clock. This is the only place in the workspace
/// (outside tests) allowed to touch `Instant` directly.
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds cover ~584 years of uptime; saturate rather than
        // wrap if something absurd happens.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Deterministic test clock: time advances only when the test says so.
#[derive(Default)]
pub struct MockClock {
    now: AtomicU64,
}

impl MockClock {
    /// A mock clock starting at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }

    /// Jump the clock to an absolute reading.
    pub fn set(&self, ns: u64) {
        self.now.store(ns, Ordering::Relaxed);
    }
}

impl Clock for MockClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing event counter.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Map a value to its log₂ bucket index (see [`BUCKET_COUNT`]).
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (BUCKET_COUNT - v.leading_zeros() as usize).min(BUCKET_COUNT - 1)
    }
}

/// Largest value a bucket can hold (before clamping to the observed max).
pub fn bucket_ceiling(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= BUCKET_COUNT - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A lock-free log₂-bucketed histogram. Quantiles are derived from the
/// bucket vector: a reported pXX is the ceiling of the bucket containing the
/// rank-⌈XX% · count⌉ observation, clamped to the exact observed maximum, so
/// it is an upper bound tight to one power of two.
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum: AtomicU64,
    max: AtomicU64,
    tick: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            tick: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Deterministic 1-in-[`SAMPLE_EVERY`] sampling decision, advancing this
    /// histogram's private tick. The first call returns `true`.
    pub fn tick_sampled(&self) -> bool {
        self.tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(SAMPLE_EVERY)
    }

    /// Snapshot counts and derived quantiles. Concurrent recording makes the
    /// snapshot approximate (never torn per-bucket, but buckets are read one
    /// by one); that is fine for an exposition surface.
    pub fn snapshot(&self) -> HistogramSummary {
        let mut buckets = [0u64; BUCKET_COUNT];
        let mut count: u64 = 0;
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
            count = count.saturating_add(*slot);
        }
        let max = self.max.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max,
            p50: quantile(&buckets, count, max, 50),
            p90: quantile(&buckets, count, max, 90),
            p99: quantile(&buckets, count, max, 99),
        }
    }
}

/// Upper-bound value for the `percent`-th percentile of a bucket vector.
fn quantile(buckets: &[u64; BUCKET_COUNT], count: u64, max: u64, percent: u64) -> u64 {
    if count == 0 {
        return 0;
    }
    // rank = ceil(count * percent / 100), at least 1; u128 avoids overflow.
    let rank = ((u128::from(count) * u128::from(percent)).div_ceil(100)).max(1);
    let mut seen: u128 = 0;
    for (index, &n) in buckets.iter().enumerate() {
        seen += u128::from(n);
        if seen >= rank {
            return bucket_ceiling(index).min(max);
        }
    }
    max
}

/// A point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations (for deriving the mean).
    pub sum: u64,
    /// Exact maximum observation.
    pub max: u64,
    /// Upper bound of the median bucket, clamped to `max`.
    pub p50: u64,
    /// Upper bound of the 90th-percentile bucket, clamped to `max`.
    pub p90: u64,
    /// Upper bound of the 99th-percentile bucket, clamped to `max`.
    pub p99: u64,
}

/// One entry in the trace ring: a monotonically increasing sequence number
/// and a protocol-token-safe label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Position in the session-wide event stream (never reused).
    pub seq: u64,
    /// Sanitized event label, e.g. `session.open` or `stream.degraded`.
    pub label: String,
}

struct TraceBuf {
    events: VecDeque<TraceEvent>,
    next_seq: u64,
    capacity: usize,
}

/// Bounded ring buffer of recent structured events. Pushes take a leaf-only
/// mutex; the lock is never held across any other lock acquisition.
pub struct TraceLog {
    inner: Mutex<TraceBuf>,
}

impl TraceLog {
    /// An empty ring with the given capacity (0 disables recording).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(TraceBuf {
                events: VecDeque::new(),
                next_seq: 0,
                capacity,
            }),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, TraceBuf> {
        // A panic while holding this leaf lock cannot corrupt the ring
        // (pushes are single VecDeque ops), so recover from poisoning.
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Append an event, evicting the oldest when full. Labels are sanitized
    /// to protocol-safe tokens (`[A-Za-z0-9._:,-]`).
    pub fn push(&self, label: &str) {
        let mut buf = self.locked();
        if buf.capacity == 0 {
            return;
        }
        let seq = buf.next_seq;
        buf.next_seq += 1;
        let label = sanitize_label(label);
        buf.events.push_back(TraceEvent { seq, label });
        while buf.events.len() > buf.capacity {
            buf.events.pop_front();
        }
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TraceEvent> {
        let buf = self.locked();
        let skip = buf.events.len().saturating_sub(n);
        buf.events.iter().skip(skip).cloned().collect()
    }

    /// Resize the ring, evicting oldest entries if it shrinks.
    pub fn set_capacity(&self, capacity: usize) {
        let mut buf = self.locked();
        buf.capacity = capacity;
        while buf.events.len() > capacity {
            buf.events.pop_front();
        }
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.locked().capacity
    }
}

/// Map an arbitrary label to a protocol-token-safe form: alphanumerics and
/// `. _ : , -` pass through, everything else becomes `_`.
pub fn sanitize_label(label: &str) -> String {
    if label.is_empty() {
        return "_".to_string();
    }
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | ':' | ',' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// A scope timer: created by [`Registry::span`], records the elapsed
/// nanoseconds into its histogram when dropped. Inert when observability is
/// disabled. Bind it to a named variable (`let _span = ...;`), not `_`,
/// or it drops immediately.
pub struct Span<'a> {
    hist: Option<&'a Histogram>,
    clock: &'a dyn Clock,
    start: u64,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(hist) = self.hist {
            hist.record(self.clock.now_ns().saturating_sub(self.start));
        }
    }
}

/// The registry: a closed-world set of counters and histograms (see
/// [`COUNTERS`] / [`HISTOGRAMS`]), a trace ring, an injectable clock, and a
/// global enable switch. Exposition order is the sorted name order, which is
/// what the rp/5 `metrics` verb renders.
pub struct Registry {
    clock: Arc<dyn Clock>,
    enabled: AtomicBool,
    counters: BTreeMap<&'static str, Counter>,
    histograms: BTreeMap<&'static str, Histogram>,
    fallback_counter: Counter,
    fallback_histogram: Histogram,
    trace: TraceLog,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry on the production [`MonotonicClock`], enabled, with the
    /// default trace capacity.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A registry on an injected clock (tests pass a [`MockClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            enabled: AtomicBool::new(true),
            counters: COUNTERS.iter().map(|&n| (n, Counter::default())).collect(),
            histograms: HISTOGRAMS.iter().map(|&n| (n, Histogram::new())).collect(),
            fallback_counter: Counter::default(),
            fallback_histogram: Histogram::new(),
            trace: TraceLog::new(DEFAULT_TRACE_CAPACITY),
        }
    }

    /// Whether instrumentation records anything. The `metrics` / `trace`
    /// verbs still answer while disabled; they just see frozen values.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip the global enable switch.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Read the registry clock.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Look up a counter; unknown names resolve to an unexported fallback.
    pub fn counter(&self, name: &str) -> &Counter {
        self.counters.get(name).unwrap_or(&self.fallback_counter)
    }

    /// Look up a histogram; unknown names resolve to an unexported fallback.
    pub fn histogram(&self, name: &str) -> &Histogram {
        self.histograms
            .get(name)
            .unwrap_or(&self.fallback_histogram)
    }

    /// Increment a counter by one (no-op while disabled).
    pub fn inc(&self, name: &str) {
        if self.enabled() {
            self.counter(name).inc();
        }
    }

    /// Increment a counter by `n` (no-op while disabled).
    pub fn add(&self, name: &str, n: u64) {
        if self.enabled() {
            self.counter(name).add(n);
        }
    }

    /// Record one histogram observation (no-op while disabled).
    pub fn record(&self, name: &str, v: u64) {
        if self.enabled() {
            self.histogram(name).record(v);
        }
    }

    /// Start an always-on scope timer for `name`; the returned [`Span`]
    /// records on drop. Inert while disabled.
    pub fn span(&self, name: &str) -> Span<'_> {
        let enabled = self.enabled();
        Span {
            hist: enabled.then(|| self.histogram(name)),
            clock: self.clock.as_ref(),
            start: if enabled { self.clock.now_ns() } else { 0 },
        }
    }

    /// Sampled stage timing: returns `Some(start_ns)` on the sampled
    /// 1-in-[`SAMPLE_EVERY`] ticks of `name`'s histogram, `None` otherwise
    /// (and always while disabled). Pair with [`Registry::record`].
    pub fn sampled_start(&self, name: &str) -> Option<u64> {
        if self.enabled() && self.histogram(name).tick_sampled() {
            Some(self.clock.now_ns())
        } else {
            None
        }
    }

    /// Append a trace event (no-op while disabled).
    pub fn trace(&self, label: &str) {
        if self.enabled() {
            self.trace.push(label);
        }
    }

    /// The most recent `n` trace events, oldest first.
    pub fn trace_recent(&self, n: usize) -> Vec<TraceEvent> {
        self.trace.recent(n)
    }

    /// Resize the trace ring (`serve --trace-buffer N`).
    pub fn set_trace_capacity(&self, capacity: usize) {
        self.trace.set_capacity(capacity);
    }

    /// Current trace ring capacity.
    pub fn trace_capacity(&self) -> usize {
        self.trace.capacity()
    }

    /// All counters in sorted name order.
    pub fn counter_values(&self) -> Vec<(&'static str, u64)> {
        self.counters.iter().map(|(&n, c)| (n, c.get())).collect()
    }

    /// All histogram summaries in sorted name order.
    pub fn histogram_summaries(&self) -> Vec<(&'static str, HistogramSummary)> {
        self.histograms
            .iter()
            .map(|(&n, h)| (n, h.snapshot()))
            .collect()
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry (created on first use, on the production
/// monotonic clock). All engine instrumentation routes through this.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Convenience: an always-on span on the global registry.
pub fn span(name: &str) -> Span<'static> {
    global().span(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mock_registry() -> (Arc<MockClock>, Registry) {
        let clock = Arc::new(MockClock::new());
        let registry = Registry::with_clock(clock.clone());
        (clock, registry)
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Golden boundary cases: (value, bucket index).
        let cases: &[(u64, usize)] = &[
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 3),
            (7, 3),
            (8, 4),
            (1023, 10),
            (1024, 11),
            (u64::MAX, 63),
            (1u64 << 62, 63),
            ((1u64 << 62) - 1, 62),
        ];
        for &(v, want) in cases {
            assert_eq!(bucket_index(v), want, "value {v}");
        }
        assert_eq!(bucket_ceiling(0), 0);
        assert_eq!(bucket_ceiling(1), 1);
        assert_eq!(bucket_ceiling(3), 7);
        assert_eq!(bucket_ceiling(10), 1023);
        assert_eq!(bucket_ceiling(63), u64::MAX);
    }

    #[test]
    fn quantiles_derive_from_buckets() {
        let h = Histogram::new();
        // 100 observations of 5 (bucket 3, ceiling 7) and one slow outlier.
        for _ in 0..100 {
            h.record(5);
        }
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 101);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 1500);
        assert_eq!(s.p50, 7);
        assert_eq!(s.p90, 7);
        // rank(p99) = ceil(101*99/100) = 100 → still the fast bucket.
        assert_eq!(s.p99, 7);
        // A second outlier pushes p99 into the slow bucket, clamped to max.
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.p99, 1000);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSummary::default());
    }

    #[test]
    fn quantiles_clamp_to_observed_max() {
        let h = Histogram::new();
        h.record(100); // bucket 7, ceiling 127
        let s = h.snapshot();
        assert_eq!((s.p50, s.p90, s.p99, s.max), (100, 100, 100, 100));
    }

    #[test]
    fn span_times_scope_under_mock_clock() {
        let (clock, registry) = mock_registry();
        {
            let _span = registry.span("wal.sync");
            clock.advance(1_500);
        }
        {
            let _span = registry.span("wal.sync");
            clock.advance(40);
        }
        let s = registry.histogram("wal.sync").snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 1_500);
        assert_eq!(s.sum, 1_540);
        // 1500 lands in bucket 11 (ceiling 2047), clamped to the max.
        assert_eq!(s.p99, 1_500);
        assert_eq!(s.p50, 63); // 40 → bucket 6, ceiling 63 (< max, no clamp)
    }

    #[test]
    fn sampling_takes_first_then_every_eighth() {
        let h = Histogram::new();
        let sampled: Vec<bool> = (0..17).map(|_| h.tick_sampled()).collect();
        let taken: Vec<usize> = sampled
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(i))
            .collect();
        assert_eq!(taken, vec![0, 8, 16]);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let (clock, registry) = mock_registry();
        registry.set_enabled(false);
        registry.inc("catalog.reload");
        registry.record("wal.sync", 9);
        registry.trace("session.open");
        assert!(registry.sampled_start("service.handle").is_none());
        {
            let _span = registry.span("wal.sync");
            clock.advance(100);
        }
        assert_eq!(registry.counter("catalog.reload").get(), 0);
        assert_eq!(registry.histogram("wal.sync").snapshot().count, 0);
        assert!(registry.trace_recent(10).is_empty());

        registry.set_enabled(true);
        registry.inc("catalog.reload");
        assert_eq!(registry.counter("catalog.reload").get(), 1);
    }

    #[test]
    fn unknown_names_hit_the_fallback_without_exporting() {
        let (_clock, registry) = mock_registry();
        registry.inc("no.such.counter");
        registry.record("no.such.histogram", 5);
        assert!(registry.counter_values().iter().all(|&(_, v)| v == 0));
        assert!(registry
            .histogram_summaries()
            .iter()
            .all(|&(_, s)| s.count == 0));
    }

    #[test]
    fn exposition_order_is_sorted_and_complete() {
        let (_clock, registry) = mock_registry();
        let counters: Vec<&str> = registry.counter_values().iter().map(|&(n, _)| n).collect();
        assert_eq!(counters, COUNTERS);
        let hists: Vec<&str> = registry
            .histogram_summaries()
            .iter()
            .map(|&(n, _)| n)
            .collect();
        assert_eq!(hists, HISTOGRAMS);
        let mut sorted = COUNTERS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, COUNTERS, "COUNTERS list must stay sorted");
        let mut sorted = HISTOGRAMS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, HISTOGRAMS, "HISTOGRAMS list must stay sorted");
    }

    #[test]
    fn trace_ring_wraps_and_keeps_order() {
        let log = TraceLog::new(3);
        for label in ["a", "b", "c", "d", "e"] {
            log.push(label);
        }
        let events = log.recent(10);
        let got: Vec<(u64, &str)> = events.iter().map(|e| (e.seq, e.label.as_str())).collect();
        assert_eq!(got, vec![(2, "c"), (3, "d"), (4, "e")]);
        // A narrower window returns the most recent slice, still oldest first.
        let tail = log.recent(2);
        let got: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        assert_eq!(got, vec![3, 4]);
    }

    #[test]
    fn trace_capacity_is_runtime_settable() {
        let log = TraceLog::new(4);
        for label in ["a", "b", "c", "d"] {
            log.push(label);
        }
        log.set_capacity(2);
        assert_eq!(log.capacity(), 2);
        let got: Vec<u64> = log.recent(10).iter().map(|e| e.seq).collect();
        assert_eq!(got, vec![2, 3]);
        log.set_capacity(0);
        log.push("ignored");
        assert!(log.recent(10).is_empty());
    }

    #[test]
    fn labels_sanitize_to_protocol_tokens() {
        assert_eq!(sanitize_label("session.open"), "session.open");
        assert_eq!(sanitize_label("bad label;x=1"), "bad_label_x_1");
        assert_eq!(sanitize_label(""), "_");
    }
}
