//! The cold-group spill store: bounds the *owner-side* resident memory of
//! a stream.
//!
//! Queries need every group's **published** histogram, so that stays
//! resident; what a cold group can shed is its secret state — the raw
//! histogram, the RNG cursor, the compliance status and the
//! re-publication baseline. When the hot set exceeds the configured
//! residency bound, the least-recently-inserted group's secret state is
//! appended here (latest record wins) and reloaded the next time an
//! insert touches the group.
//!
//! The store is *working state*, not part of the durability contract:
//! the WAL and the v2 snapshot are. On restart the spill file is
//! recreated empty, and spilling never changes a single published byte —
//! the round trip is lossless (`spill_round_trip_is_lossless` below, and
//! the determinism suite exercises it end to end).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use rp_core::incremental::GroupStatus;

use crate::stream::StreamError;

/// The secret state of one spilled group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SpilledGroup {
    /// Raw SA histogram.
    pub raw_hist: Vec<u64>,
    /// The group's RNG cursor.
    pub rng_state: u64,
    /// Compliance status at spill time.
    pub status: GroupStatus,
    /// Raw records covered by the last SPS re-publication.
    pub republished_len: u64,
}

/// Append-only on-disk store of spilled group state with an in-memory
/// `key → offset` index (latest record wins; stale records are dead
/// weight until the file is recreated on restart).
#[derive(Debug)]
pub(crate) struct SpillStore {
    file: File,
    index: HashMap<Vec<u32>, u64>,
    end: u64,
    m: usize,
}

impl SpillStore {
    /// Creates (or truncates) the spill file.
    pub fn create(path: &Path, m: usize) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file,
            index: HashMap::new(),
            end: 0,
            m,
        })
    }

    /// Number of groups currently indexed.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether a group's state is held here.
    #[cfg(test)]
    pub fn contains(&self, key: &[u32]) -> bool {
        self.index.contains_key(key)
    }

    /// Appends a group's secret state (replacing any previous record for
    /// the key in the index).
    pub fn spill(&mut self, key: &[u32], group: &SpilledGroup) -> std::io::Result<()> {
        assert_eq!(group.raw_hist.len(), self.m, "raw histogram arity");
        let mut line = String::from("g");
        for &code in key {
            line.push('\t');
            line.push_str(&code.to_string());
        }
        for &c in &group.raw_hist {
            line.push('\t');
            line.push_str(&c.to_string());
        }
        let status = match group.status {
            GroupStatus::Compliant => 'c',
            GroupStatus::NeedsResampling => 'f',
        };
        line.push_str(&format!(
            "\t{}\t{}\t{}\n",
            group.rng_state, status, group.republished_len
        ));
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(line.as_bytes())?;
        self.index.insert(key.to_vec(), self.end);
        self.end += line.len() as u64;
        Ok(())
    }

    /// Reads a group's latest spilled state without removing it from the
    /// index (used when snapshotting the whole stream).
    pub fn read(&mut self, key: &[u32]) -> Result<SpilledGroup, StreamError> {
        let offset = *self
            .index
            .get(key)
            .ok_or_else(|| StreamError::Mismatch(format!("group {key:?} is not spilled")))?;
        self.file.seek(SeekFrom::Start(offset))?;
        // Chunked line read (records are a few hundred bytes; byte-wise
        // reads on an unbuffered File would cost one syscall per byte).
        let mut buf = Vec::new();
        let mut chunk = [0u8; 512];
        loop {
            let n = self.file.read(&mut chunk)?;
            if n == 0 {
                break;
            }
            if let Some(end) = chunk[..n].iter().position(|&b| b == b'\n') {
                buf.extend_from_slice(&chunk[..end]);
                break;
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        let line = String::from_utf8(buf)
            .map_err(|_| StreamError::Mismatch("spill record is not UTF-8".into()))?;
        self.parse(key, &line)
    }

    /// Removes a group from the index (it is hot again); the stale bytes
    /// stay in the file until it is recreated.
    pub fn forget(&mut self, key: &[u32]) {
        self.index.remove(key);
    }

    fn parse(&self, key: &[u32], line: &str) -> Result<SpilledGroup, StreamError> {
        let bad = |message: String| StreamError::Mismatch(format!("spill record: {message}"));
        let mut parts = line.split('\t');
        if parts.next() != Some("g") {
            return Err(bad("missing `g` tag".into()));
        }
        for &expected in key {
            let got: u32 = parts
                .next()
                .ok_or_else(|| bad("short key".into()))?
                .parse()
                .map_err(|e| bad(format!("bad key code: {e}")))?;
            if got != expected {
                return Err(bad(format!("key mismatch (index corruption): {got}")));
            }
        }
        let mut raw_hist = Vec::with_capacity(self.m);
        for _ in 0..self.m {
            raw_hist.push(
                parts
                    .next()
                    .ok_or_else(|| bad("short histogram".into()))?
                    .parse()
                    .map_err(|e| bad(format!("bad count: {e}")))?,
            );
        }
        let rng_state: u64 = parts
            .next()
            .ok_or_else(|| bad("missing rng state".into()))?
            .parse()
            .map_err(|e| bad(format!("bad rng state: {e}")))?;
        let status = match parts.next() {
            Some("c") => GroupStatus::Compliant,
            Some("f") => GroupStatus::NeedsResampling,
            other => return Err(bad(format!("bad status {other:?}"))),
        };
        let republished_len: u64 = parts
            .next()
            .ok_or_else(|| bad("missing republished_len".into()))?
            .parse()
            .map_err(|e| bad(format!("bad republished_len: {e}")))?;
        if parts.next().is_some() {
            return Err(bad("trailing fields".into()));
        }
        Ok(SpilledGroup {
            raw_hist,
            rng_state,
            status,
            republished_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rp-spill-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn group(seed: u64) -> SpilledGroup {
        SpilledGroup {
            raw_hist: vec![seed, seed + 1, 0],
            rng_state: seed * 31,
            status: if seed.is_multiple_of(2) {
                GroupStatus::Compliant
            } else {
                GroupStatus::NeedsResampling
            },
            republished_len: seed / 2,
        }
    }

    #[test]
    fn spill_round_trip_is_lossless() {
        let mut store = SpillStore::create(&tmp("roundtrip.spill"), 3).unwrap();
        for k in 0..20u64 {
            store.spill(&[k as u32, 1], &group(k)).unwrap();
        }
        assert_eq!(store.len(), 20);
        for k in (0..20u64).rev() {
            assert_eq!(store.read(&[k as u32, 1]).unwrap(), group(k));
        }
    }

    #[test]
    fn latest_record_wins_and_forget_removes() {
        let mut store = SpillStore::create(&tmp("latest.spill"), 3).unwrap();
        store.spill(&[5], &group(1)).unwrap();
        store.spill(&[5], &group(2)).unwrap();
        assert_eq!(store.read(&[5]).unwrap(), group(2));
        assert_eq!(store.len(), 1);
        store.forget(&[5]);
        assert!(!store.contains(&[5]));
        assert!(store.read(&[5]).is_err());
    }

    #[test]
    fn interleaved_reads_do_not_corrupt_writes() {
        let mut store = SpillStore::create(&tmp("interleave.spill"), 3).unwrap();
        store.spill(&[0], &group(3)).unwrap();
        let _ = store.read(&[0]).unwrap(); // moves the file cursor
        store.spill(&[1], &group(4)).unwrap(); // must still append at end
        assert_eq!(store.read(&[0]).unwrap(), group(3));
        assert_eq!(store.read(&[1]).unwrap(), group(4));
    }
}
