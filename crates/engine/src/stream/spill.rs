//! The cold-group spill store: bounds the *owner-side* resident memory of
//! a stream.
//!
//! Queries need every group's **published** histogram, so that stays
//! resident; what a cold group can shed is its secret state — the raw
//! histogram, the RNG cursor, the compliance status and the
//! re-publication baseline. When the hot set exceeds the configured
//! residency bound, the least-recently-inserted group's secret state is
//! stored here and reloaded the next time an insert touches the group.
//!
//! ## Page and buffer management
//!
//! The store is a small page-managed heap, not an append-only log:
//!
//! * the file is an array of fixed [`PAGE_SIZE`] pages; a record owns an
//!   *extent* — one or more contiguous pages — and records re-spill **in
//!   place** when they still fit their extent, so the file stops growing
//!   under churn (`churn_does_not_grow_the_file` below);
//! * pages freed by [`forget`](SpillStore::forget) go on a free list and
//!   are reused before the file's high-water mark moves;
//! * all I/O goes through a bounded buffer pool ([`POOL_FRAMES`] frames)
//!   with clock (second-chance) eviction and dirty write-back — hot
//!   records never touch the disk, and an evicted page is written back
//!   whole, so any page the pool later reloads is complete on disk.
//!
//! A record is a newline-terminated line; a read that finds no trailing
//! newline inside the extent is a **torn record** and fails loudly with
//! [`StreamError::Format`] instead of silently truncating the state.
//!
//! The store is *working state*, not part of the durability contract:
//! the WAL and the v2 snapshot are, and the store is never fsynced. On
//! restart the spill file is recreated empty, and spilling never changes
//! a single published byte — the round trip is lossless
//! (`spill_round_trip_is_lossless` below, and the determinism suite
//! exercises it end to end).

use std::collections::{BTreeSet, HashMap};
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use rp_core::incremental::GroupStatus;

use crate::fault::{self, CheckedFile, FaultHandle};
use crate::stream::StreamError;

/// Fixed page size of the spill heap.
const PAGE_SIZE: usize = 4096;

/// Buffer-pool capacity in frames (pages): 64 × 4 KiB = 256 KiB of
/// cached spill state regardless of how many groups go cold.
const POOL_FRAMES: usize = 64;

/// The secret state of one spilled group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SpilledGroup {
    /// Raw SA histogram.
    pub raw_hist: Vec<u64>,
    /// The group's RNG cursor.
    pub rng_state: u64,
    /// Compliance status at spill time.
    pub status: GroupStatus,
    /// Raw records covered by the last SPS re-publication.
    pub republished_len: u64,
}

/// A record's location: `pages` contiguous pages starting at `page`,
/// holding `len` bytes of record (newline included).
#[derive(Debug, Clone, Copy)]
struct Extent {
    page: u64,
    pages: u64,
    len: usize,
}

impl Extent {
    fn page_span(len: usize) -> u64 {
        (len.div_ceil(PAGE_SIZE)) as u64
    }
}

/// One buffer-pool slot.
#[derive(Debug)]
struct Frame {
    page: u64,
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    /// Clock reference bit: set on use, cleared as the hand sweeps by.
    referenced: bool,
}

/// Page-managed on-disk store of spilled group state: an in-memory
/// `key → extent` index over a paged file, fronted by a clock-evicting
/// buffer pool.
#[derive(Debug)]
pub(crate) struct SpillStore {
    file: CheckedFile,
    index: HashMap<Vec<u32>, Extent>,
    /// Pages below the high-water mark currently owned by no record.
    free: BTreeSet<u64>,
    /// File high-water mark, in pages.
    pages: u64,
    frames: Vec<Frame>,
    /// `page → frame slot` for pages resident in the pool.
    resident: HashMap<u64, usize>,
    /// Clock hand over `frames`.
    hand: usize,
    m: usize,
}

impl SpillStore {
    /// Creates (or truncates) the spill file with passthrough I/O.
    #[cfg(test)]
    pub fn create(path: &Path, m: usize) -> std::io::Result<Self> {
        Self::create_with(path, m, fault::passthrough())
    }

    /// Creates (or truncates) the spill file behind an injectable
    /// fault policy: page
    /// write-backs consult `faults` before touching the disk. Spill
    /// page I/O is idempotent (a full-page rewrite at a fixed offset),
    /// so transient injected faults are absorbed by bounded retry —
    /// unlike a WAL fsync, which is never retried.
    pub fn create_with(path: &Path, m: usize, faults: FaultHandle) -> std::io::Result<Self> {
        // rp-analyze: allow(fault-facade, "facade entry point: the handle is wrapped in CheckedFile below, so every page write-back consults the fault schedule")
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file: CheckedFile::new(file, faults),
            index: HashMap::new(),
            free: BTreeSet::new(),
            pages: 0,
            frames: Vec::new(),
            resident: HashMap::new(),
            hand: 0,
            m,
        })
    }

    /// Number of groups currently indexed.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether a group's state is held here.
    #[cfg(test)]
    pub fn contains(&self, key: &[u32]) -> bool {
        self.index.contains_key(key)
    }

    /// File high-water mark in pages (the file never grows past
    /// `pages × PAGE_SIZE` bytes).
    #[cfg(test)]
    pub fn file_pages(&self) -> u64 {
        self.pages
    }

    /// Writes every dirty frame back and empties the pool, so the file
    /// alone holds the store's content. Test-only: production code never
    /// needs the file and the pool to agree (the pool is authoritative).
    #[cfg(test)]
    pub fn flush_and_drop_cache(&mut self) -> std::io::Result<()> {
        for slot in 0..self.frames.len() {
            if self.frames[slot].dirty {
                self.write_back(slot)?;
            }
        }
        self.frames.clear();
        self.resident.clear();
        self.hand = 0;
        Ok(())
    }

    /// Stores a group's secret state. A key that is already spilled and
    /// whose new record fits its old extent is rewritten **in place**;
    /// otherwise the old pages are freed and the record goes to the
    /// first fitting free run (or extends the file as a last resort).
    pub fn spill(&mut self, key: &[u32], group: &SpilledGroup) -> std::io::Result<()> {
        assert_eq!(group.raw_hist.len(), self.m, "raw histogram arity");
        let _span = crate::obs::global().span("spill.page_write");
        let mut line = String::from("g");
        for &code in key {
            line.push('\t');
            line.push_str(&code.to_string());
        }
        for &c in &group.raw_hist {
            line.push('\t');
            line.push_str(&c.to_string());
        }
        let status = match group.status {
            GroupStatus::Compliant => 'c',
            GroupStatus::NeedsResampling => 'f',
        };
        line.push_str(&format!(
            "\t{}\t{}\t{}\n",
            group.rng_state, status, group.republished_len
        ));
        let bytes = line.as_bytes();
        let need = Extent::page_span(bytes.len());
        let extent = match self.index.get(key).copied() {
            // In-place rewrite: the record still fits where it lives.
            Some(old) if need <= old.pages => {
                for excess in old.page + need..old.page + old.pages {
                    self.free.insert(excess);
                }
                Extent {
                    page: old.page,
                    pages: need,
                    len: bytes.len(),
                }
            }
            other => {
                if let Some(old) = other {
                    self.free_extent(old);
                }
                self.allocate(bytes.len())
            }
        };
        self.write_record(extent, bytes)?;
        self.index.insert(key.to_vec(), extent);
        Ok(())
    }

    /// Reads a group's latest spilled state without removing it from the
    /// index (used when snapshotting the whole stream).
    pub fn read(&mut self, key: &[u32]) -> Result<SpilledGroup, StreamError> {
        let _span = crate::obs::global().span("spill.page_read");
        let extent = *self
            .index
            .get(key)
            .ok_or_else(|| StreamError::Mismatch(format!("group {key:?} is not spilled")))?;
        let buf = self.read_record(extent)?;
        // A record must close with its newline; anything else is a torn
        // write (or foreign truncation of the file) and the state cannot
        // be trusted. Fail loudly rather than hand back a prefix.
        match buf.split_last() {
            Some((b'\n', body)) => {
                let line = std::str::from_utf8(body)
                    .map_err(|_| StreamError::Mismatch("spill record is not UTF-8".into()))?;
                self.parse(key, line)
            }
            _ => Err(StreamError::Format {
                line: extent.page as usize + 1,
                message: format!(
                    "torn spill record for group {key:?}: no trailing newline in its extent"
                ),
            }),
        }
    }

    /// Removes a group from the index (it is hot again) and returns its
    /// pages to the free list for reuse.
    pub fn forget(&mut self, key: &[u32]) {
        if let Some(extent) = self.index.remove(key) {
            self.free_extent(extent);
        }
    }

    // -- page allocation ---------------------------------------------------

    fn free_extent(&mut self, extent: Extent) {
        for page in extent.page..extent.page + extent.pages {
            self.free.insert(page);
        }
    }

    /// First-fit allocation: the lowest free run of enough contiguous
    /// pages, else fresh pages past the high-water mark.
    fn allocate(&mut self, len: usize) -> Extent {
        let need = Extent::page_span(len);
        let mut run_start = None;
        let mut run_len = 0u64;
        for &page in &self.free {
            match run_start {
                Some(start) if page == start + run_len => run_len += 1,
                _ => {
                    run_start = Some(page);
                    run_len = 1;
                }
            }
            if run_len == need {
                let start = run_start.expect("run in progress");
                for p in start..start + need {
                    self.free.remove(&p);
                }
                return Extent {
                    page: start,
                    pages: need,
                    len,
                };
            }
        }
        let start = self.pages;
        self.pages += need;
        Extent {
            page: start,
            pages: need,
            len,
        }
    }

    // -- buffer pool -------------------------------------------------------

    /// Pins `page` into the pool, loading it from the file (or zeroes,
    /// for a page that never reached the disk) on a miss.
    fn frame_for(&mut self, page: u64) -> std::io::Result<usize> {
        if let Some(&slot) = self.resident.get(&page) {
            self.frames[slot].referenced = true;
            return Ok(slot);
        }
        let slot = if self.frames.len() < POOL_FRAMES {
            self.frames.push(Frame {
                page,
                data: Box::new([0u8; PAGE_SIZE]),
                dirty: false,
                referenced: true,
            });
            self.frames.len() - 1
        } else {
            // Clock sweep: clear reference bits until a cold frame turns
            // up, write it back if dirty, take its slot.
            let victim = loop {
                let here = self.hand;
                self.hand = (self.hand + 1) % self.frames.len();
                let frame = &mut self.frames[here];
                if frame.referenced {
                    frame.referenced = false;
                } else {
                    break here;
                }
            };
            if self.frames[victim].dirty {
                self.write_back(victim)?;
            }
            self.resident.remove(&self.frames[victim].page);
            let frame = &mut self.frames[victim];
            frame.page = page;
            frame.dirty = false;
            frame.referenced = true;
            frame.data.fill(0);
            victim
        };
        // Load whatever the file holds; a short read (sparse hole or a
        // page evicted-before-written neighbor) leaves zeroes, which is
        // exactly what an unwritten page is.
        self.file.seek(SeekFrom::Start(page * PAGE_SIZE as u64))?;
        let mut filled = 0;
        while filled < PAGE_SIZE {
            let n = self.file.read(&mut self.frames[slot].data[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        self.resident.insert(page, slot);
        Ok(slot)
    }

    /// Writes one frame's full page back to the file. The rewrite is
    /// idempotent — a whole page at a fixed offset — so a transient
    /// fault (even a torn attempt) is safely absorbed by retrying the
    /// seek-and-write wholesale; only a persistent fault surfaces.
    fn write_back(&mut self, slot: usize) -> std::io::Result<()> {
        let page = self.frames[slot].page;
        let offset = page * PAGE_SIZE as u64;
        let file = &mut self.file;
        let data = &self.frames[slot].data;
        fault::with_retry(|| -> std::io::Result<()> {
            file.seek(SeekFrom::Start(offset))?;
            file.write_all(&data[..])
        })?;
        self.frames[slot].dirty = false;
        Ok(())
    }

    fn write_record(&mut self, extent: Extent, bytes: &[u8]) -> std::io::Result<()> {
        for (i, chunk) in bytes.chunks(PAGE_SIZE).enumerate() {
            let slot = self.frame_for(extent.page + i as u64)?;
            self.frames[slot].data[..chunk.len()].copy_from_slice(chunk);
            self.frames[slot].dirty = true;
        }
        Ok(())
    }

    fn read_record(&mut self, extent: Extent) -> Result<Vec<u8>, StreamError> {
        let mut buf = Vec::with_capacity(extent.len);
        let mut remaining = extent.len;
        for i in 0..extent.pages {
            let take = remaining.min(PAGE_SIZE);
            let slot = self.frame_for(extent.page + i)?;
            buf.extend_from_slice(&self.frames[slot].data[..take]);
            remaining -= take;
        }
        Ok(buf)
    }

    fn parse(&self, key: &[u32], line: &str) -> Result<SpilledGroup, StreamError> {
        let bad = |message: String| StreamError::Mismatch(format!("spill record: {message}"));
        let mut parts = line.split('\t');
        if parts.next() != Some("g") {
            return Err(bad("missing `g` tag".into()));
        }
        for &expected in key {
            let got: u32 = parts
                .next()
                .ok_or_else(|| bad("short key".into()))?
                .parse()
                .map_err(|e| bad(format!("bad key code: {e}")))?;
            if got != expected {
                return Err(bad(format!("key mismatch (index corruption): {got}")));
            }
        }
        let mut raw_hist = Vec::with_capacity(self.m);
        for _ in 0..self.m {
            raw_hist.push(
                parts
                    .next()
                    .ok_or_else(|| bad("short histogram".into()))?
                    .parse()
                    .map_err(|e| bad(format!("bad count: {e}")))?,
            );
        }
        let rng_state: u64 = parts
            .next()
            .ok_or_else(|| bad("missing rng state".into()))?
            .parse()
            .map_err(|e| bad(format!("bad rng state: {e}")))?;
        let status = match parts.next() {
            Some("c") => GroupStatus::Compliant,
            Some("f") => GroupStatus::NeedsResampling,
            other => return Err(bad(format!("bad status {other:?}"))),
        };
        let republished_len: u64 = parts
            .next()
            .ok_or_else(|| bad("missing republished_len".into()))?
            .parse()
            .map_err(|e| bad(format!("bad republished_len: {e}")))?;
        if parts.next().is_some() {
            return Err(bad("trailing fields".into()));
        }
        Ok(SpilledGroup {
            raw_hist,
            rng_state,
            status,
            republished_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rp-spill-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn group(seed: u64) -> SpilledGroup {
        SpilledGroup {
            raw_hist: vec![seed, seed + 1, 0],
            rng_state: seed * 31,
            status: if seed.is_multiple_of(2) {
                GroupStatus::Compliant
            } else {
                GroupStatus::NeedsResampling
            },
            republished_len: seed / 2,
        }
    }

    #[test]
    fn spill_round_trip_is_lossless() {
        let mut store = SpillStore::create(&tmp("roundtrip.spill"), 3).unwrap();
        for k in 0..20u64 {
            store.spill(&[k as u32, 1], &group(k)).unwrap();
        }
        assert_eq!(store.len(), 20);
        for k in (0..20u64).rev() {
            assert_eq!(store.read(&[k as u32, 1]).unwrap(), group(k));
        }
    }

    #[test]
    fn latest_record_wins_and_forget_removes() {
        let mut store = SpillStore::create(&tmp("latest.spill"), 3).unwrap();
        store.spill(&[5], &group(1)).unwrap();
        store.spill(&[5], &group(2)).unwrap();
        assert_eq!(store.read(&[5]).unwrap(), group(2));
        assert_eq!(store.len(), 1);
        store.forget(&[5]);
        assert!(!store.contains(&[5]));
        assert!(store.read(&[5]).is_err());
    }

    #[test]
    fn interleaved_reads_do_not_corrupt_writes() {
        let mut store = SpillStore::create(&tmp("interleave.spill"), 3).unwrap();
        store.spill(&[0], &group(3)).unwrap();
        let _ = store.read(&[0]).unwrap();
        store.spill(&[1], &group(4)).unwrap();
        assert_eq!(store.read(&[0]).unwrap(), group(3));
        assert_eq!(store.read(&[1]).unwrap(), group(4));
    }

    #[test]
    fn round_trip_survives_pool_eviction() {
        let mut store = SpillStore::create(&tmp("evict.spill"), 3).unwrap();
        // 4× the pool capacity: most records' pages get evicted (written
        // back) and must reload from the file intact.
        let n = (POOL_FRAMES * 4) as u64;
        for k in 0..n {
            store.spill(&[k as u32], &group(k)).unwrap();
        }
        for k in 0..n {
            assert_eq!(store.read(&[k as u32]).unwrap(), group(k), "key {k}");
        }
    }

    #[test]
    fn churn_does_not_grow_the_file() {
        let mut store = SpillStore::create(&tmp("churn.spill"), 3).unwrap();
        for k in 0..8u64 {
            store.spill(&[k as u32], &group(k)).unwrap();
        }
        let high_water = store.file_pages();
        // Spill/reload/re-spill cycles reuse freed pages and rewrite
        // in place: an append-only store would grow without bound here.
        for round in 0..200u64 {
            let k = round % 8;
            store.forget(&[k as u32]);
            store.spill(&[k as u32], &group(round)).unwrap();
        }
        assert_eq!(store.len(), 8);
        assert_eq!(
            store.file_pages(),
            high_water,
            "churn over a fixed working set must not move the high-water mark"
        );
        for k in 0..8u64 {
            let expected = 192 + k; // last round that touched this key
            assert_eq!(store.read(&[k as u32]).unwrap(), group(expected));
        }
    }

    #[test]
    fn transient_write_faults_are_absorbed_by_retry() {
        use crate::fault::{FaultKind, FaultSchedule};
        let faults = std::sync::Arc::new(FaultSchedule::write_at(1, FaultKind::Eio));
        let mut store =
            SpillStore::create_with(&tmp("transient.spill"), 3, faults.clone()).unwrap();
        // Enough records to force eviction write-backs through the
        // scripted fault; the retry's second attempt succeeds.
        let n = (POOL_FRAMES * 2) as u64;
        for k in 0..n {
            store.spill(&[k as u32], &group(k)).unwrap();
        }
        for k in 0..n {
            assert_eq!(store.read(&[k as u32]).unwrap(), group(k), "key {k}");
        }
        assert_eq!(faults.injected(), 1, "the scripted fault did fire");
    }

    #[test]
    fn persistent_write_faults_error_loudly() {
        use crate::fault::FaultSchedule;
        // Period 1: every operation faults, so bounded retry gives up.
        let faults = std::sync::Arc::new(FaultSchedule::sampled(5, 1));
        let mut store = SpillStore::create_with(&tmp("persistent.spill"), 3, faults).unwrap();
        let n = (POOL_FRAMES * 2) as u64;
        let mut failed = false;
        for k in 0..n {
            if store.spill(&[k as u32], &group(k)).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "eviction write-backs surface the persistent fault");
    }

    #[test]
    fn torn_record_fails_loudly_instead_of_truncating() {
        let path = tmp("torn.spill");
        let mut store = SpillStore::create(&path, 3).unwrap();
        store.spill(&[9], &group(6)).unwrap();
        store.flush_and_drop_cache().unwrap();
        // Overwrite the record's trailing newline on disk — the classic
        // torn-write shape a crash mid-write leaves behind.
        let mut bytes = std::fs::read(&path).unwrap();
        let nl = bytes.iter().position(|&b| b == b'\n').expect("newline");
        bytes[nl] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        let err = store.read(&[9]).unwrap_err();
        assert!(matches!(err, StreamError::Format { .. }), "{err:?}");
        assert!(err.to_string().contains("torn spill record"), "{err}");
    }
}
