//! The per-group counter-based generator of the streaming subsystem.
//!
//! Every live personal group draws from its **own** RNG stream, derived
//! deterministically from the stream seed and the group key. Two
//! properties make this the right shape for a durable stream:
//!
//! * **Interleaving-independence** — a group's draws depend only on how
//!   many events *that group* has processed, never on how inserts to
//!   different groups interleave. Replaying a WAL therefore reproduces
//!   every group's stream exactly even though wall-clock arrival order
//!   at the server may differ from the log order of unrelated groups.
//! * **O(1) snapshot/restore** — the generator is counter-based
//!   (SplitMix64): its *entire* state is one `u64`, which the v2
//!   artifact records as the group's RNG cursor
//!   ([`crate::publication::LiveGroupSnapshot::rng_state`]) and restore
//!   reloads verbatim. No replaying of draws, no opaque state blobs.
//!
//! The generator implements the vendored `rand::RngCore`, so the
//! existing `rp-core` primitives (`perturb_code`, `republish_group`,
//! `sample_binomial`, ...) consume it unchanged.

use rand::RngCore;

/// SplitMix64's additive constant (the golden-ratio increment).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Finalizes one SplitMix64 output from a state word.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the key codes — a stable, platform-independent key hash
/// (unlike `DefaultHasher`, whose algorithm std does not pin down).
fn key_hash(key: &[u32]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &code in key {
        for byte in code.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// A counter-based SplitMix64 generator owned by one live group.
///
/// The full state is a single `u64` ([`GroupRng::state`]): each draw
/// advances it by the golden-ratio increment and finalizes the output
/// with the SplitMix64 mixer. Seeded from `(stream seed, group key)`, so
/// distinct groups get distinct, reproducible streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupRng {
    state: u64,
}

impl GroupRng {
    /// Derives the group's generator from the stream seed and its key.
    /// Pure: the same `(seed, key)` always yields the same stream.
    pub fn for_group(seed: u64, key: &[u32]) -> Self {
        Self {
            state: mix(mix(seed) ^ key_hash(key)),
        }
    }

    /// The full generator state — the RNG cursor a snapshot records.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds the generator from a snapshot's cursor.
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }
}

impl RngCore for GroupRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_and_key_reproduce_the_stream() {
        let mut a = GroupRng::for_group(7, &[1, 2, 3]);
        let mut b = GroupRng::for_group(7, &[1, 2, 3]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_keys_and_seeds_diverge() {
        let mut a = GroupRng::for_group(7, &[1, 2, 3]);
        let mut b = GroupRng::for_group(7, &[1, 2, 4]);
        let mut c = GroupRng::for_group(8, &[1, 2, 3]);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_ne!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn state_round_trip_resumes_mid_stream() {
        let mut a = GroupRng::for_group(42, &[9]);
        for _ in 0..17 {
            let _ = a.next_u64();
        }
        let mut b = GroupRng::from_state(a.state());
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_doubles_cover_the_unit_interval() {
        // Smoke-check the statistical shape the perturbation code relies
        // on: `gen::<f64>()` lands in [0, 1) with a sane mean.
        let mut rng = GroupRng::for_group(1, &[0]);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn empty_and_singleton_keys_hash_apart() {
        let mut a = GroupRng::for_group(3, &[]);
        let mut b = GroupRng::for_group(3, &[0]);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
