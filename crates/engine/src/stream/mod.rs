//! The streaming publication subsystem: a durable, bounded-memory,
//! deterministically replayable live release.
//!
//! The paper's Section 3.1 argues data perturbation is uniquely amenable
//! to record insertion — each record is perturbed independently, and a
//! group that outgrows its threshold `sg` is re-sampled in place. The
//! in-memory sketch of that claim lives in `rp-core::incremental`; this
//! module wraps it in the machinery a server needs to run it for real:
//!
//! * **[`wal`]** — a write-ahead log of inserts and re-publications with
//!   the crate's usual codec discipline (versioned header recording the
//!   seed, `(p, λ, δ)` and the schema up front; `parse ∘ encode = id`;
//!   contiguous sequence numbers; torn tails truncated on open), plus
//!   [`compaction`](wal::compact_wal): events superseded by a later
//!   re-publication collapse into per-group state records, and replay of
//!   the compacted log is byte-identical to replay of the full one.
//! * **commit** — a group-commit log manager over the WAL: appends
//!   accumulate and one `fsync` makes a whole batch durable
//!   ([`StreamConfig::commit_batch`] / `commit_window_ms`), amortizing
//!   the dominant cost of the insert path.
//! * **[`rng`]** — one counter-based RNG *per group*, derived from
//!   `(stream seed, group key)`. A group's stream depends only on its own
//!   event count, so WAL replay is exact regardless of how unrelated
//!   groups interleaved, and the whole cursor snapshots as one `u64`.
//! * **spill** — cold groups shed their owner-side secret state (raw
//!   histogram, RNG cursor) to a page-managed side heap when the resident
//!   bound is exceeded (fixed-size pages, buffer pool with clock
//!   eviction, in-place rewrite — the file stops growing under churn);
//!   published histograms stay resident because queries touch them.
//! * **snapshot/restore** — [`StreamPublisher::snapshot`] materializes
//!   the whole stream as a v2 [`Publication`]: base rows + live rows in
//!   one table (so batch consumers just see a bigger release) plus the
//!   [`LiveState`] extension to resume
//!   from. Restore = load snapshot + replay the WAL tail.
//!
//! ## The determinism contract, extended to streams
//!
//! A stream's state is a pure function of `(base artifact, WAL)`:
//! replaying a WAL against the base from a clean start is byte-identical
//! to the live run, and any snapshot + tail replay lands on the same
//! bytes — no matter how many restarts, where they fell, or whether cold
//! groups were spilled in between. The root determinism suite
//! (`tests/stream_determinism.rs`) proves this property over random
//! insert interleavings and restart points.
//!
//! ## The durability contract
//!
//! Three artifacts, three different promises (tortured end to end by
//! `tests/stream_crash.rs`):
//!
//! * **WAL** — an insert is *acknowledged* once logged and *durable*
//!   once synced. With group commit off (the default) the two coincide
//!   only at [`StreamPublisher::flush`]; with `commit_batch` /
//!   `commit_window_ms` set, at most one batch (or window) of
//!   acknowledged events can roll back in a crash, and
//!   [`StreamPublisher::durable_seq`] reports the guaranteed cursor.
//!   Recovery truncates a torn final line and replays the longest
//!   complete prefix — commit policy changes durability *timing*, never
//!   one written byte.
//! * **Snapshot** — replacement is atomic: the new artifact is written
//!   to a temp sibling, fsynced, renamed over the target, and the
//!   directory synced. A crash at any byte leaves either the complete
//!   old snapshot or the complete new one, never a torn mix.
//! * **Spill** — explicitly *outside* the durability contract: it is
//!   working state, recreated empty on every open and never consulted by
//!   recovery. Corrupting or deleting it cannot change a recovered byte;
//!   a torn record *read back during a run* is a loud
//!   [`StreamError::Format`], never a silent truncation.
//!
//! ## The fsync-poisoning rule
//!
//! A failed WAL `fsync` is **terminal**. After reporting an fsync error
//! the kernel may drop the dirty pages it could not write, so a retried
//! fsync that returns success proves nothing about the bytes the first
//! one lost — retry-and-ack is how systems have silently lost committed
//! data ("fsyncgate"). The log manager therefore latches *poisoned* on
//! the first failed sync (a failed append poisons too — a torn buffered
//! line is equally untrustworthy): the durable cursor freezes at the
//! last good sync, [`StreamPublisher::durable_seq`] reports
//! acknowledged-but-unsynced events as lost, and every later
//! [`insert`](StreamPublisher::insert_codes) or
//! [`flush`](StreamPublisher::flush) refuses with
//! [`StreamError::Degraded`] carrying that cursor. The stream keeps
//! answering queries from its in-memory state; reopening it from disk
//! (the catalog's `reload`) recovers exactly the durable prefix.
//!
//! Spill and snapshot I/O sit outside this rule: a spill page rewrite
//! and an atomic snapshot replacement are idempotent, so those paths
//! absorb *transient* faults with bounded retry-with-backoff
//! ([`crate::fault::with_retry`]) and only a persistent fault surfaces
//! — loudly, with the stream's state intact. Every durable writer in
//! the subsystem consults an injectable [`crate::fault::FaultIo`]
//! facade (default passthrough), so `tests/fault_matrix.rs` can drive
//! all of the above from a seeded, replayable fault schedule.

mod commit;
pub mod rng;
mod spill;
pub mod wal;

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use rp_core::incremental::{GroupStatus, IncrementalPublisher, LiveGroup};
use rp_core::privacy::PrivacyParams;
use rp_table::{AttrId, CountQuery, Schema, TableBuilder, TableError, Term};

use crate::fault::{self, FaultHandle};
use crate::publication::{LiveGroupSnapshot, LiveState, Publication, PublicationError};
use crate::stream::commit::LogManager;
use crate::stream::rng::GroupRng;
use crate::stream::spill::{SpillStore, SpilledGroup};
use crate::stream::wal::{Wal, WalEvent, WalHeader};

/// Tuning knobs of a [`StreamPublisher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamConfig {
    /// Maximum live groups whose secret state stays resident; `0` means
    /// unbounded. Exceeding the bound spills the least-recently-inserted
    /// group's raw histogram and RNG cursor to the side file — published
    /// histograms always stay resident for query answering, and spilling
    /// never changes a single output byte.
    pub max_resident: usize,
    /// Group commit by count: fsync the WAL automatically after this
    /// many logged events. `0` (the default) disables count-based
    /// commit — the log is synced only on an explicit
    /// [`flush`](StreamPublisher::flush) or when the commit window
    /// expires. Larger batches amortize the sync cost over more inserts
    /// at the price of a wider crash-loss window; the *written bytes*
    /// are identical under every setting.
    pub commit_batch: u64,
    /// Group commit by time: with appends pending, fsync once this many
    /// milliseconds have elapsed since the last sync (checked on the
    /// insert path). `0` (the default) disables the timer. Wall-clock
    /// time only ever decides *when* durability happens, never what is
    /// written, so replay determinism is unaffected.
    pub commit_window_ms: u64,
}

/// Errors raised by the streaming subsystem.
#[derive(Debug)]
pub enum StreamError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A structural problem in a WAL or snapshot at a 1-based line.
    Format {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Artifact/WAL/record inconsistency (wrong schema, stale log,
    /// replayed event for an unknown group, ...).
    Mismatch(String),
    /// A record failed schema validation on insert.
    Table(TableError),
    /// The publication artifact failed to (de)serialize.
    Publication(PublicationError),
    /// The stream's WAL is poisoned after a failed write or fsync (the
    /// fsync-poisoning rule): the stream is read-only for mutations and
    /// reports the prefix guaranteed durable. Reopening the stream from
    /// disk (the catalog's `reload`) is the recovery path.
    Degraded {
        /// Highest sequence number guaranteed to survive — everything
        /// past it is reported lost.
        durable_seq: u64,
        /// The write failure that poisoned the log.
        message: String,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "I/O error: {e}"),
            StreamError::Format { line, message } => write!(f, "line {line}: {message}"),
            StreamError::Mismatch(m) => write!(f, "{m}"),
            StreamError::Table(e) => write!(f, "{e}"),
            StreamError::Publication(e) => write!(f, "{e}"),
            StreamError::Degraded {
                durable_seq,
                message,
            } => write!(
                f,
                "stream degraded to read-only after a write failure ({message}); \
                 durable through event {durable_seq} — reload the release to recover"
            ),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            StreamError::Table(e) => Some(e),
            StreamError::Publication(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<TableError> for StreamError {
    fn from(e: TableError) -> Self {
        StreamError::Table(e)
    }
}

impl From<PublicationError> for StreamError {
    fn from(e: PublicationError) -> Self {
        // Format errors keep their line numbers; everything else wraps.
        match e {
            PublicationError::Format { line, message } => StreamError::Format { line, message },
            other => StreamError::Publication(other),
        }
    }
}

/// What one insert did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertOutcome {
    /// The group key the record landed in (public-attribute codes).
    pub key: Vec<u32>,
    /// Raw group size after the insert.
    pub group_size: u64,
    /// Whether the insert pushed the group past `sg` and it was
    /// re-sampled through SPS (logged as its own WAL event).
    pub republished: bool,
}

/// A durable, bounded-memory live publication: the streaming counterpart
/// of [`crate::Publisher`].
///
/// Opened over a base artifact (a v1 batch release to start streaming on,
/// or a v2 snapshot to resume) plus a WAL path. Every insert is logged
/// before it is applied; a group crossing its threshold is automatically
/// re-sampled through SPS and the re-publication is logged too.
/// [`StreamPublisher::snapshot`] folds the whole live state back into a
/// v2 [`Publication`].
#[derive(Debug)]
pub struct StreamPublisher {
    base: Publication,
    /// Group keys present in the base release — so group counts (and the
    /// snapshot's `SpsStats::groups`) count a key shared by base and
    /// live once, not twice.
    base_keys: HashSet<Vec<u32>>,
    schema: Schema,
    sa: AttrId,
    m: usize,
    seed: u64,
    inner: IncrementalPublisher,
    /// Per-group RNG cursors of the hot groups.
    rngs: HashMap<Vec<u32>, u64>,
    /// Published histograms of spilled groups (kept resident: queries
    /// touch every group).
    cold: HashMap<Vec<u32>, Vec<u64>>,
    spill: Option<SpillStore>,
    spill_path: PathBuf,
    /// LRU bookkeeping over the hot set: clock → key and key → clock.
    lru: BTreeMap<u64, Vec<u32>>,
    touch: HashMap<Vec<u32>, u64>,
    clock: u64,
    /// `None` in replay-only mode (no appends).
    wal: Option<LogManager>,
    wal_seq: u64,
    inserted: u64,
    republished: u64,
    config: StreamConfig,
    /// The fault policy every durable writer of this stream consults
    /// (passthrough in production, a schedule under fault injection).
    faults: FaultHandle,
}

impl StreamPublisher {
    /// Opens a stream for appending: `artifact` is the base release (v1)
    /// or a snapshot to resume (v2), `wal_path` the log. An existing log
    /// is validated against the artifact and its tail (events after the
    /// snapshot's cursor) replayed; a missing log is created fresh,
    /// taking over at the snapshot's cursor — so "snapshot, archive the
    /// old log, start a new one" is the supported truncation story.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, a log that does not belong to
    /// this artifact, or a log with a gap against the snapshot.
    pub fn open(
        artifact: Publication,
        wal_path: &Path,
        config: StreamConfig,
    ) -> Result<Self, StreamError> {
        Self::build(artifact, wal_path, config, true, fault::passthrough())
    }

    /// [`StreamPublisher::open`] behind an injectable fault policy:
    /// every durable write the stream performs (WAL appends and syncs,
    /// spill page write-backs, snapshot replacement) consults `faults`
    /// first. Production uses [`StreamPublisher::open`] (passthrough);
    /// the fault matrix drives this with seeded schedules.
    ///
    /// # Errors
    ///
    /// As [`StreamPublisher::open`], plus whatever `faults` injects.
    pub fn open_with(
        artifact: Publication,
        wal_path: &Path,
        config: StreamConfig,
        faults: FaultHandle,
    ) -> Result<Self, StreamError> {
        Self::build(artifact, wal_path, config, true, faults)
    }

    /// Reconstructs the stream state by replay only — no appends, the
    /// log is left untouched. This is `rpctl replay`: prove that base +
    /// WAL (or snapshot + tail) lands on the same bytes as the live run.
    ///
    /// # Errors
    ///
    /// As [`StreamPublisher::open`], plus an error if the log is missing
    /// (a replay without a log is meaningless).
    pub fn replay(
        artifact: Publication,
        wal_path: &Path,
        config: StreamConfig,
    ) -> Result<Self, StreamError> {
        if !wal_path.exists() {
            return Err(StreamError::Mismatch(format!(
                "cannot replay: no WAL at {}",
                wal_path.display()
            )));
        }
        Self::build(artifact, wal_path, config, false, fault::passthrough())
    }

    fn build(
        artifact: Publication,
        wal_path: &Path,
        config: StreamConfig,
        append: bool,
        faults: FaultHandle,
    ) -> Result<Self, StreamError> {
        let (base, live) = split_artifact(artifact)?;
        let schema = base.schema().clone();
        let sa = base.sa();
        let m = schema.attribute(sa).domain_size();
        let covered = live.as_ref().map_or(0, |l| l.wal_seq);
        let header = WalHeader {
            seed: base.seed(),
            p: base.p(),
            params: base.params(),
            sa,
            schema: schema.clone(),
            base_rows: base.table().rows(),
            first_seq: covered + 1,
        };
        let spill_path = PathBuf::from(format!("{}.spill", wal_path.display()));
        let base_keys = group_keys(base.table(), sa);
        let mut stream = Self {
            seed: base.seed(),
            inner: IncrementalPublisher::new(base.p(), m, base.params()),
            base,
            base_keys,
            schema,
            sa,
            m,
            rngs: HashMap::new(),
            cold: HashMap::new(),
            spill: None,
            spill_path,
            lru: BTreeMap::new(),
            touch: HashMap::new(),
            clock: 0,
            wal: None,
            wal_seq: covered,
            inserted: live.as_ref().map_or(0, |l| l.inserted),
            republished: live.as_ref().map_or(0, |l| l.republished),
            config,
            faults: std::sync::Arc::clone(&faults),
        };
        if let Some(live) = live {
            for g in live.groups {
                stream.restore_group(g);
            }
        }
        // `open_append` validates the log's sequence coverage against
        // `header.first_seq = covered + 1`: a log starting past it is
        // missing events, a log (even an empty one) whose next append
        // would rewind behind the snapshot is stale.
        let (wal, file) = if wal_path.exists() {
            let (wal, file) = Wal::open_append_with(wal_path, &header, faults)?;
            (wal, Some(file))
        } else if append {
            (Wal::create_with(wal_path, &header, faults)?, None)
        } else {
            unreachable!("replay checked existence")
        };
        if let Some(file) = file {
            if let Some(compaction) = &file.compaction {
                if covered == 0 {
                    // Clean start on a compacted log: the state records
                    // stand in for the absorbed events.
                    for g in &compaction.groups {
                        stream.restore_group(LiveGroupSnapshot {
                            key: g.key.clone(),
                            raw_hist: g.raw_hist.clone(),
                            published_hist: g.published_hist.clone(),
                            rng_state: g.rng_state,
                            status: g.status,
                            republished_len: g.republished_len,
                        });
                    }
                    stream.inserted += compaction.absorbed_inserts;
                    stream.republished += compaction.absorbed_republishes;
                    stream.wal_seq = compaction.floor_seq;
                } else if covered < compaction.floor_seq {
                    // The snapshot's cursor falls strictly inside the
                    // absorbed range: those events no longer exist
                    // individually, so a partial replay is impossible.
                    // Refuse rather than guess.
                    return Err(StreamError::Mismatch(format!(
                        "snapshot covers events through {covered} but the WAL at {} is \
                         compacted through {}: resume from the base artifact or from a \
                         snapshot taken at or past the compaction floor",
                        wal_path.display(),
                        compaction.floor_seq
                    )));
                }
                // covered >= floor: the snapshot supersedes the whole
                // compaction section; only retained events past the
                // cursor replay below.
            }
            let obs = crate::obs::global();
            let _replay_span = obs.span("stream.replay");
            let mut replayed: u64 = 0;
            for event in &file.events {
                if event.seq() > covered {
                    stream.apply(event)?;
                    replayed += 1;
                }
            }
            if replayed > 0 {
                obs.add("stream.replayed_events", replayed);
                obs.trace("stream.replay");
            }
        }
        if append {
            stream.wal = Some(LogManager::new(wal, &config));
        }
        Ok(stream)
    }

    /// Restores one snapshot group into the hot set.
    fn restore_group(&mut self, g: LiveGroupSnapshot) {
        self.rngs.insert(g.key.clone(), g.rng_state);
        self.inner.put_group(LiveGroup {
            key: g.key.clone(),
            raw_hist: g.raw_hist,
            published_hist: g.published_hist,
            status: g.status,
            republished_len: g.republished_len,
        });
        self.touch_key(g.key);
        // Residency is enforced lazily on the next insert: restore loads
        // hot and lets the LRU spill the cold majority as traffic
        // arrives, which keeps restore a pure in-memory operation.
    }

    // -- accessors ---------------------------------------------------------

    /// The immutable base release the stream grows on.
    pub fn base(&self) -> &Publication {
        &self.base
    }

    /// The published schema (shared by base and live records).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The sensitive attribute index.
    pub fn sa(&self) -> AttrId {
        self.sa
    }

    /// Retention probability `p`.
    pub fn p(&self) -> f64 {
        self.base.p()
    }

    /// The enforced `(λ, δ)` requirement.
    pub fn params(&self) -> PrivacyParams {
        self.base.params()
    }

    /// Records inserted into the stream so far (all restarts included).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// SPS re-publication events so far.
    pub fn republished(&self) -> u64 {
        self.republished
    }

    /// Sequence number of the last applied WAL event.
    pub fn wal_seq(&self) -> u64 {
        self.wal_seq
    }

    /// Live groups (hot + spilled).
    pub fn live_groups(&self) -> usize {
        self.inner.group_count() + self.cold.len()
    }

    /// Live groups whose key does not already exist in the base release
    /// — the number of *new* personal groups the stream added. Group
    /// totals (`HELLO`/`info`, the snapshot's `SpsStats::groups`) use
    /// this so a key shared by base and live counts once.
    pub fn novel_live_groups(&self) -> usize {
        self.inner
            .groups()
            .map(|g| &g.key)
            // rp-analyze: allow(determinism, "feeds a count: set cardinality is iteration-order-independent")
            .chain(self.cold.keys())
            .filter(|key| !self.base_keys.contains(key.as_slice()))
            .count()
    }

    /// Live groups whose secret state is currently resident.
    pub fn resident_groups(&self) -> usize {
        self.inner.group_count()
    }

    /// Live groups whose secret state is spilled to disk.
    pub fn spilled_groups(&self) -> usize {
        self.cold.len()
    }

    /// Published records contributed by the live groups.
    pub fn live_records(&self) -> u64 {
        let hot: u64 = self
            .inner
            .groups()
            .map(|g| g.published_hist.iter().sum::<u64>())
            .sum();
        // rp-analyze: allow(determinism, "feeds a sum: u64 addition is commutative, so map order cannot change the total")
        let cold: u64 = self.cold.values().map(|h| h.iter().sum::<u64>()).sum();
        hot + cold
    }

    // -- the insert path ---------------------------------------------------

    /// Inserts one record given as `(column, value)` pairs — every schema
    /// column exactly once, resolved by name. The record is logged,
    /// perturbed and applied; if its group crosses `sg`, the group is
    /// re-sampled through SPS and the re-publication logged too.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown columns or values, missing/duplicate
    /// columns, a read-only (replay) stream, or WAL I/O failure.
    pub fn insert_values(&mut self, values: &[(&str, &str)]) -> Result<InsertOutcome, StreamError> {
        let arity = self.schema.arity();
        let mut codes: Vec<Option<u32>> = vec![None; arity];
        for &(col, value) in values {
            let attr = self.schema.attr_id(col)?;
            if codes[attr].is_some() {
                return Err(StreamError::Mismatch(format!(
                    "column `{col}` appears more than once"
                )));
            }
            let code = self
                .schema
                .attribute(attr)
                .dictionary()
                .code(value)
                .ok_or_else(|| {
                    StreamError::Table(TableError::UnknownValue {
                        attribute: col.to_string(),
                        value: value.to_string(),
                    })
                })?;
            codes[attr] = Some(code);
        }
        let codes: Vec<u32> = codes
            .into_iter()
            .enumerate()
            .map(|(attr, c)| {
                c.ok_or_else(|| {
                    StreamError::Mismatch(format!(
                        "record is missing column `{}`",
                        self.schema.attribute(attr).name()
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        self.insert_codes(&codes)
    }

    /// Inserts one record given as dictionary codes in schema order.
    ///
    /// # Errors
    ///
    /// As [`StreamPublisher::insert_values`].
    pub fn insert_codes(&mut self, codes: &[u32]) -> Result<InsertOutcome, StreamError> {
        let arity = self.schema.arity();
        if codes.len() != arity {
            return Err(StreamError::Mismatch(format!(
                "record needs {arity} codes, got {}",
                codes.len()
            )));
        }
        for (attr, &code) in codes.iter().enumerate() {
            let domain = self.schema.attribute(attr).domain_size();
            if code as usize >= domain {
                return Err(StreamError::Table(TableError::CodeOutOfRange {
                    attribute: self.schema.attribute(attr).name().to_string(),
                    code,
                    domain_size: domain,
                }));
            }
        }
        if self.wal.is_none() {
            return Err(StreamError::Mismatch(
                "stream is read-only (opened for replay)".into(),
            ));
        }
        // Write-ahead: the event is logged before it is applied.
        let seq = self.wal.as_ref().expect("checked above").next_seq();
        let insert = WalEvent::Insert {
            seq,
            codes: codes.to_vec(),
        };
        self.wal.as_mut().expect("checked above").append(&insert)?;
        let status = self.apply(&insert)?;
        let key = self.key_of(codes);
        let mut republished = false;
        if status == GroupStatus::NeedsResampling {
            // The paper's remedy, automated: re-sample the group through
            // SPS in place. Its own WAL event keeps replay literal.
            let event = WalEvent::Republish {
                seq: seq + 1,
                key: key.clone(),
            };
            self.wal.as_mut().expect("checked above").append(&event)?;
            self.apply(&event)?;
            republished = true;
            let obs = crate::obs::global();
            obs.inc("stream.republish");
            obs.trace("stream.republish");
        }
        let group_size = self
            .inner
            .group(&key)
            .expect("group exists after insert")
            .len();
        // Group commit: the log manager decides whether this insert's
        // batch (or an expired commit window) warrants an fsync now.
        self.wal.as_mut().expect("checked above").maybe_commit()?;
        Ok(InsertOutcome {
            key,
            group_size,
            republished,
        })
    }

    /// Applies one WAL event to the in-memory state. Used verbatim by
    /// both the live path (after appending) and replay (after reading),
    /// so the two cannot drift.
    fn apply(&mut self, event: &WalEvent) -> Result<GroupStatus, StreamError> {
        let status = match event {
            WalEvent::Insert { codes, .. } => {
                let key = self.key_of(codes);
                let sa_code = codes[self.sa];
                self.make_hot(&key, true)?;
                let mut rng = self.group_rng(&key);
                let status = self.inner.insert(&mut rng, &key, sa_code);
                self.rngs.insert(key.clone(), rng.state());
                self.touch_key(key);
                self.inserted += 1;
                self.enforce_residency()?;
                status
            }
            WalEvent::Republish { key, .. } => {
                self.make_hot(key, false)?;
                let mut rng = self.group_rng(key);
                let status = self.inner.republish_group(&mut rng, key);
                self.rngs.insert(key.clone(), rng.state());
                self.republished += 1;
                status
            }
        };
        // `max`, not assignment: a compacted log can retain events below
        // the absorption floor the cursor already sits at.
        self.wal_seq = self.wal_seq.max(event.seq());
        Ok(status)
    }

    /// The group key of a full code row (SA position removed).
    fn key_of(&self, codes: &[u32]) -> Vec<u32> {
        codes
            .iter()
            .enumerate()
            .filter(|&(a, _)| a != self.sa)
            .map(|(_, &c)| c)
            .collect()
    }

    /// The hot group's RNG, freshly derived for a brand-new group.
    fn group_rng(&self, key: &[u32]) -> GroupRng {
        match self.rngs.get(key) {
            Some(&state) => GroupRng::from_state(state),
            None => GroupRng::for_group(self.seed, key),
        }
    }

    /// Ensures a group's secret state is resident, reloading it from the
    /// spill store if it went cold. `may_create` distinguishes inserts
    /// (which create groups) from republishes (which must find one).
    fn make_hot(&mut self, key: &[u32], may_create: bool) -> Result<(), StreamError> {
        if self.inner.group(key).is_some() {
            return Ok(());
        }
        if self.cold.contains_key(key) {
            let spill = self
                .spill
                .as_mut()
                .expect("cold groups imply a spill store");
            // Read before removing anything: a failed read leaves the
            // group spilled and the stream consistent, so the caller
            // can retry or degrade without having lost state.
            let state = spill.read(key)?;
            spill.forget(key);
            let published = self.cold.remove(key).expect("checked above");
            self.inner.put_group(LiveGroup {
                key: key.to_vec(),
                raw_hist: state.raw_hist,
                published_hist: published,
                status: state.status,
                republished_len: state.republished_len,
            });
            self.rngs.insert(key.to_vec(), state.rng_state);
            self.touch_key(key.to_vec());
            return Ok(());
        }
        if !may_create {
            return Err(StreamError::Mismatch(format!(
                "replayed event references unknown group {key:?} (corrupted log?)"
            )));
        }
        Ok(())
    }

    /// Bumps a key to most-recently-used.
    fn touch_key(&mut self, key: Vec<u32>) {
        if let Some(old) = self.touch.get(&key) {
            self.lru.remove(old);
        }
        self.clock += 1;
        self.lru.insert(self.clock, key.clone());
        self.touch.insert(key, self.clock);
    }

    /// Spills least-recently-inserted groups until the hot set fits the
    /// configured bound.
    fn enforce_residency(&mut self) -> Result<(), StreamError> {
        if self.config.max_resident == 0 {
            return Ok(());
        }
        while self.inner.group_count() > self.config.max_resident {
            if self.spill.is_none() {
                self.spill = Some(SpillStore::create_with(
                    &self.spill_path,
                    self.m,
                    std::sync::Arc::clone(&self.faults),
                )?);
            }
            let (&clock, _) = self.lru.iter().next().expect("hot set is non-empty");
            let key = self.lru.remove(&clock).expect("entry just observed");
            self.touch.remove(&key);
            let group = self.inner.take_group(&key).expect("LRU tracks hot groups");
            let rng_state = self.rngs.remove(&key).expect("hot groups carry a cursor");
            let spilled = self.spill.as_mut().expect("just created").spill(
                &key,
                &SpilledGroup {
                    raw_hist: group.raw_hist.clone(),
                    rng_state,
                    status: group.status,
                    republished_len: group.republished_len,
                },
            );
            if let Err(e) = spilled {
                // A failed spill must not lose the group: put its state
                // back and surface the error with the stream intact.
                self.rngs.insert(key.clone(), rng_state);
                self.inner.put_group(group);
                self.touch_key(key);
                return Err(e.into());
            }
            self.cold.insert(key, group.published_hist);
        }
        Ok(())
    }

    // -- durability --------------------------------------------------------

    /// Forces the WAL to stable storage — the durability point — and
    /// returns the sequence number now durable. Under group commit
    /// ([`StreamConfig::commit_batch`] / `commit_window_ms`) inserts
    /// are acknowledged before they are synced; this is the explicit
    /// barrier that closes the gap. With nothing pending it skips the
    /// fsync entirely, so an idle flush is free.
    ///
    /// # Errors
    ///
    /// Returns the I/O failure, or a mismatch on a read-only stream.
    pub fn flush(&mut self) -> Result<u64, StreamError> {
        match &mut self.wal {
            Some(wal) => {
                wal.commit()?;
                Ok(self.wal_seq)
            }
            None => Err(StreamError::Mismatch(
                "stream is read-only (opened for replay)".into(),
            )),
        }
    }

    /// The highest WAL sequence number guaranteed to survive a crash.
    /// Lags [`wal_seq`](Self::wal_seq) by up to one commit batch (or
    /// window) while group commit holds acknowledged events in the OS
    /// buffer; [`flush`](Self::flush) closes the gap. A replay-only
    /// stream reports its cursor: everything it knows came from disk.
    pub fn durable_seq(&self) -> u64 {
        match &self.wal {
            Some(wal) => wal.durable_seq(),
            None => self.wal_seq,
        }
    }

    /// Why the stream is degraded (its WAL poisoned after a failed
    /// write or fsync), if it is. A degraded stream keeps answering
    /// queries from its in-memory state but refuses `insert`/`flush`
    /// with [`StreamError::Degraded`]; reopening it from disk (the
    /// catalog's `reload`) recovers exactly the durable prefix.
    pub fn degraded(&self) -> Option<&str> {
        self.wal.as_ref().and_then(LogManager::poisoned)
    }

    /// Flushes the WAL, then **seals** this publisher's write handle:
    /// every later `insert`/`flush` refuses with
    /// [`StreamError::Degraded`] (durable through the returned cursor)
    /// while queries keep answering from memory. The catalog's reload
    /// path seals the old publisher before reopening the WAL from disk,
    /// so the old handle can never append — or truncate a racing commit
    /// — concurrently with the reopened one. On an already-degraded
    /// stream the original poison stands and its loss boundary is
    /// reported; a replay-only stream holds no write handle and seals
    /// trivially.
    ///
    /// # Errors
    ///
    /// [`StreamError::Degraded`] if the stream was already poisoned, or
    /// the flush failure that poisoned (and therefore still sealed) it.
    pub fn seal(&mut self) -> Result<u64, StreamError> {
        match &mut self.wal {
            Some(wal) => wal.seal(),
            None => Ok(self.wal_seq),
        }
    }

    /// Materializes the stream as a v2 [`Publication`]: the base rows
    /// plus every live group's published histogram expanded to rows
    /// (sorted by key, then SA code — the canonical order), with the
    /// [`LiveState`] extension attached.
    /// A pure function of the stream state: live run, clean-start replay
    /// and snapshot+tail restore all serialize to identical bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if a spilled group cannot be read back.
    pub fn snapshot(&mut self) -> Result<Publication, StreamError> {
        let mut keys: Vec<Vec<u32>> = self
            .inner
            .groups()
            .map(|g| g.key.clone())
            // rp-analyze: allow(determinism, "collected then sort_unstable()d on the next line before any group is emitted")
            .chain(self.cold.keys().cloned())
            .collect();
        keys.sort_unstable();
        let mut groups = Vec::with_capacity(keys.len());
        for key in keys {
            let snapshot = match self.inner.group(&key) {
                Some(g) => LiveGroupSnapshot {
                    key: key.clone(),
                    raw_hist: g.raw_hist.clone(),
                    published_hist: g.published_hist.clone(),
                    rng_state: *self.rngs.get(&key).expect("hot groups carry a cursor"),
                    status: g.status,
                    republished_len: g.republished_len,
                },
                None => {
                    let published = self.cold.get(&key).expect("key came from a live set");
                    let state = self
                        .spill
                        .as_mut()
                        .expect("cold groups imply a spill store")
                        .read(&key)?;
                    LiveGroupSnapshot {
                        key: key.clone(),
                        raw_hist: state.raw_hist,
                        published_hist: published.clone(),
                        rng_state: state.rng_state,
                        status: state.status,
                        republished_len: state.republished_len,
                    }
                }
            };
            groups.push(snapshot);
        }
        let base_table = self.base.table();
        let base_rows = base_table.rows();
        let arity = self.schema.arity();
        let live_rows: u64 = groups
            .iter()
            .map(|g| g.published_hist.iter().sum::<u64>())
            .sum();
        let mut builder =
            TableBuilder::with_capacity(self.schema.clone(), base_rows + live_rows as usize);
        let mut row = Vec::with_capacity(arity);
        for r in 0..base_rows {
            row.clear();
            for a in 0..arity {
                row.push(base_table.code(r, a));
            }
            builder.push_codes(&row).expect("base rows are in-domain");
        }
        for g in &groups {
            for (sa_code, &count) in g.published_hist.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                row.clear();
                let mut k = g.key.iter();
                for a in 0..arity {
                    if a == self.sa {
                        row.push(sa_code as u32);
                    } else {
                        row.push(*k.next().expect("key covers every NA attribute"));
                    }
                }
                builder
                    .push_codes_batch(&row, count as usize)
                    .expect("live rows are in-domain");
            }
        }
        let mut stats = self.base.stats();
        stats.groups += groups
            .iter()
            .filter(|g| !self.base_keys.contains(&g.key))
            .count();
        stats.groups_sampled += self.republished as usize;
        stats.input_records += self.inserted;
        stats.output_records = base_rows as u64 + live_rows;
        let live = LiveState {
            base_rows,
            wal_seq: self.wal_seq,
            inserted: self.inserted,
            republished: self.republished,
            groups,
        };
        Ok(Publication::from_parts(
            builder.build(),
            self.sa,
            self.base.p(),
            self.base.params(),
            self.base.seed(),
            stats,
            self.base.check(),
        )
        .with_live(live))
    }

    /// Snapshots to a file, atomically and durably (temp sibling +
    /// fsync + rename + parent-directory sync): a crash mid-snapshot
    /// leaves the previous snapshot intact — the snapshot atomicity
    /// rule of the durability contract.
    ///
    /// # Errors
    ///
    /// As [`StreamPublisher::snapshot`], plus file-creation and
    /// serialization errors.
    pub fn save_snapshot(&mut self, path: impl AsRef<Path>) -> Result<(), StreamError> {
        use std::io::Write as _;
        let publication = self.snapshot()?;
        // Serialize exactly once, outside the retry: a serialization
        // failure is deterministic, so re-running it could never
        // succeed — only the I/O below is transient-retryable.
        let mut bytes = Vec::new();
        publication.save(&mut bytes)?;
        // Atomic replacement is safe to retry wholesale — each attempt
        // starts from a fresh temp sibling — so transient injected
        // faults are absorbed here; a persistent fault surfaces with
        // the previous snapshot untouched.
        fault::with_retry(|| {
            crate::fsutil::write_atomic_with(path.as_ref(), &self.faults, |w| {
                w.write_all(&bytes).map_err(StreamError::from)
            })
        })
    }

    // -- the live query view -----------------------------------------------

    /// `(support, observed)` of the live groups matching the query's NA
    /// conditions — the live half of an answer (the base half comes from
    /// the [`crate::QueryEngine`] over the base release).
    pub fn live_support_observed(&self, query: &CountQuery) -> (u64, u64) {
        let sa_value = query.sa_value() as usize;
        let mut support = 0u64;
        let mut observed = 0u64;
        for g in self.inner.groups() {
            if self.key_matches(&g.key, query) {
                support += g.published_hist.iter().sum::<u64>();
                observed += g.published_hist[sa_value];
            }
        }
        for (key, hist) in &self.cold {
            if self.key_matches(key, query) {
                support += hist.iter().sum::<u64>();
                observed += hist[sa_value];
            }
        }
        (support, observed)
    }

    /// Whether a group key matches the query's NA conditions — the exact
    /// predicate the cache-invalidation guarantee is stated over: an
    /// insert to group *g* invalidates precisely the cached answers
    /// whose match set contains *g*.
    pub fn key_matches(&self, key: &[u32], query: &CountQuery) -> bool {
        for &(attr, term) in query.na_pattern().terms() {
            if let Term::Value(code) = term {
                // NA keys drop the SA position from schema order.
                let pos = if attr > self.sa { attr - 1 } else { attr };
                if key[pos] != code {
                    return false;
                }
            }
        }
        true
    }
}

/// Splits an artifact into its immutable base publication (table
/// truncated to the base rows, batch counters rolled back to the base
/// release) and its live extension.
fn split_artifact(artifact: Publication) -> Result<(Publication, Option<LiveState>), StreamError> {
    let Some(live) = artifact.live().cloned() else {
        return Ok((artifact, None));
    };
    let table = artifact.table();
    let arity = table.schema().arity();
    let mut builder = TableBuilder::with_capacity(table.schema().clone(), live.base_rows);
    let mut row = Vec::with_capacity(arity);
    for r in 0..live.base_rows {
        row.clear();
        for a in 0..arity {
            row.push(table.code(r, a));
        }
        builder.push_codes(&row)?;
    }
    // Roll the stream's contributions back out of the snapshot counters
    // so re-snapshotting reproduces them identically (saturating: a
    // hand-edited artifact must not panic here). The group rollback
    // mirrors `snapshot`: only live groups whose key is absent from the
    // base were counted.
    let base = builder.build();
    let base_key_set = group_keys(&base, artifact.sa());
    let novel = live
        .groups
        .iter()
        .filter(|g| !base_key_set.contains(&g.key))
        .count();
    let mut stats = artifact.stats();
    stats.groups = stats.groups.saturating_sub(novel);
    stats.groups_sampled = stats
        .groups_sampled
        .saturating_sub(live.republished as usize);
    stats.input_records = stats.input_records.saturating_sub(live.inserted);
    stats.output_records = live.base_rows as u64;
    let base = Publication::from_parts(
        base,
        artifact.sa(),
        artifact.p(),
        artifact.params(),
        artifact.seed(),
        stats,
        artifact.check(),
    );
    Ok((base, Some(live)))
}

/// The set of personal-group keys (public-attribute codes, schema order)
/// present in a table.
fn group_keys(table: &rp_table::Table, sa: AttrId) -> HashSet<Vec<u32>> {
    let arity = table.schema().arity();
    let mut seen = HashSet::new();
    let mut key = Vec::with_capacity(arity.saturating_sub(1));
    for r in 0..table.rows() {
        key.clear();
        for a in 0..arity {
            if a != sa {
                key.push(table.code(r, a));
            }
        }
        if !seen.contains(&key) {
            seen.insert(key.clone());
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publisher::Publisher;
    use rp_table::Attribute;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rp-stream-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(format!("{}.spill", path.display()));
        path
    }

    fn base_publication() -> Publication {
        let schema = Schema::new(vec![
            Attribute::new("Job", ["eng", "doc"]),
            Attribute::new("City", ["rome", "oslo"]),
            Attribute::new("Disease", ["flu", "none"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..200u32 {
            b.push_codes(&[i % 2, (i / 2) % 2, (i / 4) % 2]).unwrap();
        }
        Publisher::new(b.build()).sa(2).seed(11).publish().unwrap()
    }

    fn save_bytes(p: &Publication) -> Vec<u8> {
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        bytes
    }

    /// A deterministic pseudo-stream of records over the fixture schema.
    fn record(i: u32) -> Vec<u32> {
        vec![i % 2, (i / 3) % 2, (i * 7 / 5) % 2]
    }

    #[test]
    fn inserts_log_and_apply_and_snapshot_round_trips() {
        let wal = tmp("basic.rpwal");
        let mut s =
            StreamPublisher::open(base_publication(), &wal, StreamConfig::default()).unwrap();
        for i in 0..300u32 {
            let outcome = s.insert_codes(&record(i)).unwrap();
            assert_eq!(outcome.key.len(), 2);
        }
        assert_eq!(s.inserted(), 300);
        assert_eq!(s.live_records(), 300);
        s.flush().unwrap();
        let snapshot = s.snapshot().unwrap();
        assert_eq!(snapshot.table().rows(), 200 + 300);
        assert_eq!(snapshot.live().unwrap().inserted, 300);
        // The snapshot round-trips bytes.
        let bytes = save_bytes(&snapshot);
        let reloaded = Publication::load(&bytes[..]).unwrap();
        assert_eq!(save_bytes(&reloaded), bytes);
    }

    #[test]
    fn clean_start_replay_is_byte_identical_to_the_live_run() {
        let wal = tmp("replay.rpwal");
        let mut live =
            StreamPublisher::open(base_publication(), &wal, StreamConfig::default()).unwrap();
        for i in 0..500u32 {
            live.insert_codes(&record(i)).unwrap();
        }
        live.flush().unwrap();
        let live_bytes = save_bytes(&live.snapshot().unwrap());
        drop(live);
        let mut replayed =
            StreamPublisher::replay(base_publication(), &wal, StreamConfig::default()).unwrap();
        assert_eq!(save_bytes(&replayed.snapshot().unwrap()), live_bytes);
        // Replay-only streams refuse writes.
        assert!(replayed.insert_codes(&record(0)).is_err());
        assert!(replayed.flush().is_err());
    }

    #[test]
    fn group_commit_changes_durability_timing_not_bytes() {
        let wal_sync = tmp("commit-sync.rpwal");
        let wal_batch = tmp("commit-batch.rpwal");
        let mut sync =
            StreamPublisher::open(base_publication(), &wal_sync, StreamConfig::default()).unwrap();
        let mut batched = StreamPublisher::open(
            base_publication(),
            &wal_batch,
            StreamConfig {
                commit_batch: 8,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        for i in 0..100u32 {
            sync.insert_codes(&record(i)).unwrap();
            sync.flush().unwrap();
            batched.insert_codes(&record(i)).unwrap();
        }
        // The durable cursor trails the applied cursor by the open tail
        // of the current batch...
        assert_eq!(sync.durable_seq(), sync.wal_seq());
        assert!(batched.durable_seq() < batched.wal_seq());
        assert!(batched.wal_seq() - batched.durable_seq() < 8 + 2);
        // ...until an explicit flush closes the gap.
        batched.flush().unwrap();
        assert_eq!(batched.durable_seq(), batched.wal_seq());
        // The commit policy never changes a written byte: logs and
        // snapshots agree exactly.
        assert_eq!(
            std::fs::read(&wal_sync).unwrap(),
            std::fs::read(&wal_batch).unwrap()
        );
        assert_eq!(
            save_bytes(&sync.snapshot().unwrap()),
            save_bytes(&batched.snapshot().unwrap())
        );
    }

    #[test]
    fn a_poisoned_wal_degrades_the_stream_to_read_only() {
        use crate::fault::FaultSchedule;
        let wal = tmp("poisoned.rpwal");
        // `Wal::create_with` consumes syncs 1–2 (header + parent dir),
        // so sync 3 is the first flush-time fsync.
        let faults: FaultHandle = std::sync::Arc::new(FaultSchedule::fsync_at(3));
        let mut s =
            StreamPublisher::open_with(base_publication(), &wal, StreamConfig::default(), faults)
                .unwrap();
        for i in 0..10u32 {
            s.insert_codes(&record(i)).unwrap();
        }
        let all = CountQuery::new(vec![], 2, 0).unwrap();
        let before = s.live_support_observed(&all);
        // The failing fsync poisons the stream: the acked-but-unsynced
        // inserts are reported lost via the frozen durable cursor...
        let err = s.flush().unwrap_err();
        assert!(
            matches!(err, StreamError::Degraded { durable_seq: 0, .. }),
            "{err}"
        );
        assert!(s.degraded().is_some());
        // ...every later mutation refuses...
        assert!(matches!(
            s.insert_codes(&record(0)),
            Err(StreamError::Degraded { .. })
        ));
        assert!(matches!(s.flush(), Err(StreamError::Degraded { .. })));
        assert_eq!(s.durable_seq(), 0);
        // ...but queries keep answering from the in-memory state.
        assert_eq!(s.live_support_observed(&all), before);
        drop(s);
        // Recovery is a fresh fault-free open: it replays exactly what
        // reached the disk (at least the durable prefix) and accepts
        // writes again.
        let mut recovered =
            StreamPublisher::open(base_publication(), &wal, StreamConfig::default()).unwrap();
        assert!(recovered.degraded().is_none());
        assert!(recovered.wal_seq() >= recovered.durable_seq());
        recovered.insert_codes(&record(0)).unwrap();
        recovered.flush().unwrap();
    }

    #[test]
    fn compacted_wal_replays_byte_identically() {
        let wal = tmp("compact-replay.rpwal");
        let mut live =
            StreamPublisher::open(base_publication(), &wal, StreamConfig::default()).unwrap();
        // Skewed traffic forces republications, which make compaction
        // actually absorb a prefix.
        for i in 0..2000u32 {
            live.insert_codes(&[0, 0, u32::from(i % 10 == 0)]).unwrap();
        }
        for i in 0..200u32 {
            live.insert_codes(&record(i)).unwrap();
        }
        live.flush().unwrap();
        assert!(live.republished() > 0, "fixture must republish");
        let live_bytes = save_bytes(&live.snapshot().unwrap());
        drop(live);
        let full = wal::read_wal(&wal).unwrap();
        let stats = wal::compact_wal(&wal, &wal).unwrap();
        assert!(stats.absorbed > 0, "compaction must absorb something");
        assert!(stats.events_out < full.events.len());
        // Clean-start replay of the compacted log lands on the same
        // snapshot bytes as the live run over the full log.
        let mut replayed =
            StreamPublisher::replay(base_publication(), &wal, StreamConfig::default()).unwrap();
        assert_eq!(save_bytes(&replayed.snapshot().unwrap()), live_bytes);
        // And the compacted log remains appendable: new inserts resume
        // the sequence past everything absorbed.
        let mut resumed =
            StreamPublisher::open(base_publication(), &wal, StreamConfig::default()).unwrap();
        let before = resumed.wal_seq();
        resumed.insert_codes(&record(7)).unwrap();
        resumed.flush().unwrap();
        assert!(resumed.wal_seq() > before);
    }

    #[test]
    fn snapshot_inside_the_absorbed_range_is_refused() {
        let wal = tmp("compact-mid.rpwal");
        let mut live =
            StreamPublisher::open(base_publication(), &wal, StreamConfig::default()).unwrap();
        for i in 0..500u32 {
            live.insert_codes(&[0, 0, u32::from(i % 10 == 0)]).unwrap();
        }
        live.flush().unwrap();
        let early = live.snapshot().unwrap();
        let early_seq = live.wal_seq();
        for i in 0..1500u32 {
            live.insert_codes(&[0, 0, u32::from(i % 10 == 0)]).unwrap();
        }
        live.flush().unwrap();
        let late = live.snapshot().unwrap();
        drop(live);
        let stats = wal::compact_wal(&wal, &wal).unwrap();
        assert!(
            stats.floor_seq > early_seq,
            "the early snapshot must fall inside the absorbed range"
        );
        // A snapshot whose cursor the compaction swallowed cannot replay
        // its tail: the stream says so instead of guessing.
        let err = StreamPublisher::open(early, &wal, StreamConfig::default()).unwrap_err();
        assert!(err.to_string().contains("compacted"), "{err}");
        // A snapshot at/past the floor resumes fine and matches.
        let mut resumed =
            StreamPublisher::open(late.clone(), &wal, StreamConfig::default()).unwrap();
        assert_eq!(save_bytes(&resumed.snapshot().unwrap()), save_bytes(&late));
    }

    #[test]
    fn snapshot_plus_tail_restore_matches_the_uninterrupted_run() {
        let wal_a = tmp("uninterrupted.rpwal");
        let mut a =
            StreamPublisher::open(base_publication(), &wal_a, StreamConfig::default()).unwrap();
        for i in 0..400u32 {
            a.insert_codes(&record(i)).unwrap();
        }
        let reference = save_bytes(&a.snapshot().unwrap());

        // Same stream, interrupted at 150 with a snapshot, then resumed
        // from (snapshot, same WAL) — the tail after the snapshot cursor
        // replays on open.
        let wal_b = tmp("interrupted.rpwal");
        let mut b =
            StreamPublisher::open(base_publication(), &wal_b, StreamConfig::default()).unwrap();
        for i in 0..150u32 {
            b.insert_codes(&record(i)).unwrap();
        }
        let mid = b.snapshot().unwrap();
        for i in 150..220u32 {
            b.insert_codes(&record(i)).unwrap();
        }
        b.flush().unwrap();
        drop(b); // crash: events 150..220 exist only in the WAL
        let mut b2 = StreamPublisher::open(mid, &wal_b, StreamConfig::default()).unwrap();
        assert_eq!(b2.inserted(), 220, "tail replayed");
        for i in 220..400u32 {
            b2.insert_codes(&record(i)).unwrap();
        }
        assert_eq!(save_bytes(&b2.snapshot().unwrap()), reference);
    }

    #[test]
    fn bounded_residency_spills_and_changes_no_bytes() {
        let wal_a = tmp("unbounded.rpwal");
        let wal_b = tmp("bounded.rpwal");
        let mut a =
            StreamPublisher::open(base_publication(), &wal_a, StreamConfig::default()).unwrap();
        let mut b = StreamPublisher::open(
            base_publication(),
            &wal_b,
            StreamConfig {
                max_resident: 2,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        for i in 0..400u32 {
            a.insert_codes(&record(i)).unwrap();
            b.insert_codes(&record(i)).unwrap();
        }
        assert!(b.resident_groups() <= 2, "{}", b.resident_groups());
        assert!(b.spilled_groups() > 0);
        assert_eq!(
            save_bytes(&a.snapshot().unwrap()),
            save_bytes(&b.snapshot().unwrap()),
            "spilling must not change a single published byte"
        );
        // The live view answers identically too.
        let q = CountQuery::new(vec![(0, 0)], 2, 0).unwrap();
        assert_eq!(a.live_support_observed(&q), b.live_support_observed(&q));
    }

    #[test]
    fn growth_past_sg_republishes_automatically_and_logs_it() {
        let wal = tmp("republish.rpwal");
        let mut s =
            StreamPublisher::open(base_publication(), &wal, StreamConfig::default()).unwrap();
        // Hammer one skewed group until it crosses its threshold.
        let mut republished = 0u32;
        for i in 0..2000u32 {
            let outcome = s.insert_codes(&[0, 0, u32::from(i % 10 == 0)]).unwrap();
            if outcome.republished {
                republished += 1;
            }
        }
        assert!(republished >= 1, "the group must cross sg");
        assert_eq!(s.republished(), u64::from(republished));
        // The log records the republish events.
        s.flush().unwrap();
        let events = wal::read_wal(&wal).unwrap().events;
        let logged = events
            .iter()
            .filter(|e| matches!(e, WalEvent::Republish { .. }))
            .count();
        assert_eq!(logged, republished as usize);
        // And replay (which applies them literally) matches.
        let mut replayed =
            StreamPublisher::replay(base_publication(), &wal, StreamConfig::default()).unwrap();
        let mut live = s;
        assert_eq!(
            save_bytes(&replayed.snapshot().unwrap()),
            save_bytes(&live.snapshot().unwrap())
        );
    }

    #[test]
    fn insert_values_resolves_names_and_rejects_bad_records() {
        let wal = tmp("values.rpwal");
        let mut s =
            StreamPublisher::open(base_publication(), &wal, StreamConfig::default()).unwrap();
        let outcome = s
            .insert_values(&[("Disease", "flu"), ("Job", "eng"), ("City", "oslo")])
            .unwrap();
        assert_eq!(outcome.key, vec![0, 1]);
        for (values, needle) in [
            (vec![("Job", "eng"), ("City", "oslo")], "missing column"),
            (
                vec![("Job", "eng"), ("Job", "doc"), ("Disease", "flu")],
                "more than once",
            ),
            (
                vec![("Job", "zzz"), ("City", "oslo"), ("Disease", "flu")],
                "zzz",
            ),
            (
                vec![("Nope", "eng"), ("City", "oslo"), ("Disease", "flu")],
                "Nope",
            ),
        ] {
            let err = s.insert_values(&values).unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        }
        // Bad records never reach the log.
        s.flush().unwrap();
        assert_eq!(wal::read_wal(&wal).unwrap().events.len(), 1);
    }

    #[test]
    fn fresh_wal_after_snapshot_continues_the_sequence() {
        let wal1 = tmp("rotate-1.rpwal");
        let mut s =
            StreamPublisher::open(base_publication(), &wal1, StreamConfig::default()).unwrap();
        for i in 0..100u32 {
            s.insert_codes(&record(i)).unwrap();
        }
        let snapshot = s.snapshot().unwrap();
        let covered = s.wal_seq();
        drop(s);
        // The old log is archived; a fresh one takes over at the cursor.
        let wal2 = tmp("rotate-2.rpwal");
        let mut s2 =
            StreamPublisher::open(snapshot.clone(), &wal2, StreamConfig::default()).unwrap();
        for i in 100..150u32 {
            s2.insert_codes(&record(i)).unwrap();
        }
        assert!(s2.wal_seq() > covered);
        let final_bytes = save_bytes(&s2.snapshot().unwrap());
        drop(s2);
        // Snapshot + new log replays to the same bytes.
        let mut replayed =
            StreamPublisher::replay(snapshot, &wal2, StreamConfig::default()).unwrap();
        assert_eq!(save_bytes(&replayed.snapshot().unwrap()), final_bytes);
    }

    #[test]
    fn stale_and_gapped_logs_are_rejected() {
        let wal = tmp("stale.rpwal");
        let mut s =
            StreamPublisher::open(base_publication(), &wal, StreamConfig::default()).unwrap();
        for i in 0..50u32 {
            s.insert_codes(&record(i)).unwrap();
        }
        let early = s.snapshot().unwrap();
        for i in 50..100u32 {
            s.insert_codes(&record(i)).unwrap();
        }
        let late = s.snapshot().unwrap();
        drop(s);
        // A snapshot older than the log start (fresh log + stale
        // snapshot) is a gap.
        let fresh = tmp("fresh-after-late.rpwal");
        let mut s2 = StreamPublisher::open(late, &fresh, StreamConfig::default()).unwrap();
        s2.insert_codes(&record(0)).unwrap();
        drop(s2);
        let err = StreamPublisher::open(early, &fresh, StreamConfig::default()).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn empty_leftover_wal_is_rejected_as_stale() {
        // A header-only WAL from an earlier session (first_seq = 1, no
        // events) must not be accepted by a snapshot that already covers
        // events — appending would rewind the sequence numbering.
        let wal = tmp("empty-stale.rpwal");
        let mut s =
            StreamPublisher::open(base_publication(), &wal, StreamConfig::default()).unwrap();
        for i in 0..30u32 {
            s.insert_codes(&record(i)).unwrap();
        }
        let snapshot = s.snapshot().unwrap();
        drop(s);
        let leftover = tmp("empty-leftover.rpwal");
        let fresh =
            StreamPublisher::open(base_publication(), &leftover, StreamConfig::default()).unwrap();
        drop(fresh); // header written, zero events
        let err = StreamPublisher::open(snapshot, &leftover, StreamConfig::default()).unwrap_err();
        assert!(err.to_string().contains("stale"), "{err}");
    }

    #[test]
    fn group_counts_do_not_double_count_base_keys() {
        let wal = tmp("group-count.rpwal");
        let mut s =
            StreamPublisher::open(base_publication(), &wal, StreamConfig::default()).unwrap();
        // The base fixture covers every (Job, City) combination, so an
        // insert into an existing key adds no new group...
        s.insert_codes(&[0, 0, 0]).unwrap();
        assert_eq!(s.live_groups(), 1);
        assert_eq!(s.novel_live_groups(), 0);
        let snapshot = s.snapshot().unwrap();
        assert_eq!(
            snapshot.stats().groups,
            s.base().stats().groups,
            "a shared key is one group, not two"
        );
        // ...and the snapshot's grouped view agrees with the counter.
        let engine = crate::QueryEngine::new(&snapshot);
        assert_eq!(engine.groups(), snapshot.stats().groups);
    }

    #[test]
    fn live_view_and_key_matching_agree_with_count_queries() {
        let wal = tmp("view.rpwal");
        let mut s =
            StreamPublisher::open(base_publication(), &wal, StreamConfig::default()).unwrap();
        for i in 0..200u32 {
            s.insert_codes(&record(i)).unwrap();
        }
        // Wildcard NA: everything matches.
        let all = CountQuery::new(vec![], 2, 0).unwrap();
        let (support, observed) = s.live_support_observed(&all);
        assert_eq!(support, 200);
        assert!(observed <= support);
        // A pinned condition partitions the support.
        let eng = CountQuery::new(vec![(0, 0)], 2, 0).unwrap();
        let doc = CountQuery::new(vec![(0, 1)], 2, 0).unwrap();
        let (se, _) = s.live_support_observed(&eng);
        let (sd, _) = s.live_support_observed(&doc);
        assert_eq!(se + sd, 200);
        assert!(s.key_matches(&[0, 1], &eng));
        assert!(!s.key_matches(&[1, 1], &eng));
    }
}
