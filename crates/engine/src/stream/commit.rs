//! Group commit: amortizing WAL fsyncs over batches of appends.
//!
//! An `fsync` costs orders of magnitude more than formatting and
//! buffering a WAL line, so syncing after every insert caps ingest at
//! the disk's flush rate. The [`LogManager`] wraps a [`Wal`] and turns
//! the per-append sync into a *policy*: appends accumulate as pending,
//! and the log is forced to stable storage when the pending count
//! reaches `commit_batch`, when `commit_window_ms` has elapsed since
//! the last sync, or on an explicit [`commit`](LogManager::commit)
//! (the [`StreamPublisher::flush`](crate::stream::StreamPublisher::flush)
//! path). Both knobs at `0` — the [`StreamConfig`] default — mean
//! *explicit flush only*, the subsystem's original behavior.
//!
//! Group commit changes **when** bytes become durable, never which
//! bytes are written: the WAL content, and therefore replay, is
//! byte-identical under any commit policy. What a crash can cost is
//! bounded by the policy — at most `commit_batch − 1` acknowledged but
//! unsynced events (or one window's worth) roll back to the durable
//! prefix, which replay then reconstructs exactly.
//!
//! ## The fsync-poisoning rule
//!
//! A failed `fsync` is **terminal**. After the kernel reports an fsync
//! error it may drop the dirty pages it could not write, so a retried
//! fsync that returns success proves nothing about the bytes the first
//! one lost — acking on retry is how databases have silently lost
//! committed data (the "fsyncgate" failure mode). The [`LogManager`]
//! therefore *latches poisoned* on the first failed sync (or failed
//! append — a torn buffered line is equally untrustworthy): the durable
//! cursor freezes at the last successful sync, every later append or
//! commit refuses with [`StreamError::Degraded`] carrying that cursor,
//! and the stream's events past the cursor are reported lost. Recovery
//! is a fresh open (catalog `reload`), which replays exactly the
//! durable prefix from disk.

use std::time::Duration;

use crate::stream::wal::{Wal, WalEvent};
use crate::stream::{StreamConfig, StreamError};

/// A [`Wal`] plus a group-commit policy: appends are buffered and
/// fsynced in batches, trading a bounded durability window for
/// amortized sync cost.
#[derive(Debug)]
pub(crate) struct LogManager {
    wal: Wal,
    /// Appends per automatic sync; `0` disables count-based commit.
    commit_batch: u64,
    /// Maximum time between syncs while appends are pending; `0`
    /// disables the timer.
    commit_window: Option<Duration>,
    /// Appended-but-not-yet-synced event count.
    pending: u64,
    /// Highest sequence number known to be on stable storage.
    durable_seq: u64,
    /// When the last sync happened (or the manager was created), in
    /// nanoseconds on the observability clock ([`crate::obs::Clock`]).
    /// The clock only decides *when* fsync runs, never what is written.
    last_commit_ns: u64,
    /// Set once a sync or append has failed: the manager is dead, and
    /// every later mutation refuses with the message recorded here.
    poisoned: Option<String>,
}

impl LogManager {
    /// Wraps an open log. Everything already in the file was read from
    /// (or truncated on) stable storage, so the durable cursor starts
    /// at the last existing sequence number.
    pub(crate) fn new(wal: Wal, config: &StreamConfig) -> Self {
        let durable_seq = wal.next_seq().saturating_sub(1);
        LogManager {
            wal,
            commit_batch: config.commit_batch,
            commit_window: (config.commit_window_ms > 0)
                .then(|| Duration::from_millis(config.commit_window_ms)),
            pending: 0,
            durable_seq,
            last_commit_ns: crate::obs::global().now_ns(),
            poisoned: None,
        }
    }

    /// The sequence number the next append will carry.
    pub(crate) fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// The highest sequence number guaranteed to survive a crash.
    pub(crate) fn durable_seq(&self) -> u64 {
        self.durable_seq
    }

    /// Why the manager is poisoned, if it is. A poisoned manager
    /// refuses every append and commit; the owning stream is read-only
    /// until it is reopened from disk.
    pub(crate) fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Latches the poison and returns the degradation error every
    /// later mutation will repeat: the durable cursor is frozen at the
    /// last successful sync.
    fn poison(&mut self, message: String) -> StreamError {
        self.poisoned = Some(message.clone());
        let obs = crate::obs::global();
        obs.inc("stream.degraded");
        obs.trace("stream.degraded");
        StreamError::Degraded {
            durable_seq: self.durable_seq,
            message,
        }
    }

    /// Refuses the mutation if the manager is already poisoned.
    fn check_poison(&self) -> Result<(), StreamError> {
        match &self.poisoned {
            Some(message) => Err(StreamError::Degraded {
                durable_seq: self.durable_seq,
                message: message.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Appends one event to the log buffer. The event is *logged* but
    /// not yet *durable*; a commit (automatic or explicit) makes it so.
    /// A failed append poisons the manager — a torn buffered line means
    /// nothing later written to this handle can be trusted.
    pub(crate) fn append(&mut self, event: &WalEvent) -> Result<(), StreamError> {
        self.check_poison()?;
        if let Err(e) = self.wal.append(event) {
            return Err(self.poison(format!("WAL append failed: {e}")));
        }
        self.pending += 1;
        Ok(())
    }

    /// Commits any pending tail, then latches the manager **sealed**:
    /// every later append or commit refuses exactly like a poisoned
    /// manager, so nothing can ever reach the underlying file handle
    /// again. The catalog's reload path seals the old manager before
    /// reopening the WAL from disk — the file never has two live write
    /// handles, so the reopen's `set_len` repositioning cannot truncate
    /// a commit racing in through the old one.
    ///
    /// On an already-poisoned manager the original poison (and its loss
    /// boundary) stands: the commit refuses, which is the seal property
    /// already.
    pub(crate) fn seal(&mut self) -> Result<u64, StreamError> {
        let durable = self.commit()?;
        self.poisoned = Some("WAL handle sealed for reload".to_string());
        Ok(durable)
    }

    /// Commits if the policy says so: the pending count reached the
    /// batch size, or the commit window expired with appends pending.
    /// Called once per insert by the publisher. Wall-clock time only
    /// ever decides *when* a sync happens — never what is written.
    pub(crate) fn maybe_commit(&mut self) -> Result<(), StreamError> {
        let batch_full = self.commit_batch > 0 && self.pending >= self.commit_batch;
        let window_over = self.commit_window.is_some_and(|w| {
            let window_ns = u64::try_from(w.as_nanos()).unwrap_or(u64::MAX);
            self.pending > 0
                && crate::obs::global()
                    .now_ns()
                    .saturating_sub(self.last_commit_ns)
                    >= window_ns
        });
        if batch_full || window_over {
            self.commit()?;
        }
        Ok(())
    }

    /// Forces everything appended so far to stable storage and returns
    /// the new durable sequence number. A no-op sync-wise when nothing
    /// is pending — an idle flush costs nothing.
    ///
    /// A failed sync **poisons** the manager (the fsync-poisoning rule
    /// above): the sync is never retried, `pending` is deliberately not
    /// cleared, the durable cursor stays at the last good sync, and the
    /// returned [`StreamError::Degraded`] — repeated by every later
    /// mutation — reports that cursor as the loss boundary.
    pub(crate) fn commit(&mut self) -> Result<u64, StreamError> {
        self.check_poison()?;
        let obs = crate::obs::global();
        if self.pending > 0 {
            obs.record("commit.batch_events", self.pending);
            obs.trace("commit.flush");
            if let Err(e) = self.wal.sync() {
                return Err(self.poison(format!("WAL fsync failed: {e}")));
            }
            self.durable_seq = self.wal.next_seq() - 1;
            self.pending = 0;
        }
        self.last_commit_ns = obs.now_ns();
        Ok(self.durable_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::wal::WalHeader;
    use rp_core::privacy::PrivacyParams;
    use rp_table::{Attribute, Schema};

    fn header() -> WalHeader {
        WalHeader {
            seed: 7,
            p: 0.5,
            params: PrivacyParams::new(0.3, 0.3),
            sa: 1,
            schema: Schema::new(vec![
                Attribute::new("Zip", ["a", "b"]),
                Attribute::new("Disease", ["flu", "none"]),
            ]),
            base_rows: 0,
            first_seq: 1,
        }
    }

    fn insert(seq: u64) -> WalEvent {
        WalEvent::Insert {
            seq,
            codes: vec![0, 0],
        }
    }

    fn manager(name: &str, batch: u64) -> LogManager {
        let path = std::env::temp_dir().join(format!("rp-commit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let config = StreamConfig {
            commit_batch: batch,
            ..StreamConfig::default()
        };
        LogManager::new(Wal::create(&path, &header()).unwrap(), &config)
    }

    #[test]
    fn batch_policy_syncs_every_nth_append() {
        let mut lm = manager("batch.rpwal", 3);
        assert_eq!(lm.durable_seq(), 0);
        for seq in 1..=2 {
            lm.append(&insert(seq)).unwrap();
            lm.maybe_commit().unwrap();
            assert_eq!(lm.durable_seq(), 0, "below the batch size nothing syncs");
        }
        lm.append(&insert(3)).unwrap();
        lm.maybe_commit().unwrap();
        assert_eq!(lm.durable_seq(), 3, "the batch boundary commits");
        lm.append(&insert(4)).unwrap();
        lm.maybe_commit().unwrap();
        assert_eq!(lm.durable_seq(), 3, "and the counter restarts");
    }

    #[test]
    fn explicit_commit_flushes_any_pending_tail() {
        let mut lm = manager("explicit.rpwal", 64);
        for seq in 1..=5 {
            lm.append(&insert(seq)).unwrap();
            lm.maybe_commit().unwrap();
        }
        assert_eq!(lm.durable_seq(), 0);
        assert_eq!(lm.commit().unwrap(), 5);
        // An idle commit is a cheap no-op that reports the same cursor.
        assert_eq!(lm.commit().unwrap(), 5);
    }

    /// A manager over a WAL whose `nth` fsync is scripted to fail.
    /// `Wal::create_with` itself consumes two syncs (the header fsync
    /// and the parent-directory fsync), so the first commit-time sync
    /// is number 3.
    fn faulted_manager(name: &str, nth_sync: u64) -> LogManager {
        use crate::fault::FaultSchedule;
        let path = std::env::temp_dir().join(format!("rp-commit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let faults = std::sync::Arc::new(FaultSchedule::fsync_at(nth_sync));
        let wal = Wal::create_with(&path, &header(), faults).unwrap();
        LogManager::new(wal, &StreamConfig::default())
    }

    #[test]
    fn a_failed_fsync_poisons_the_manager_for_good() {
        let mut lm = faulted_manager("poison.rpwal", 3);
        lm.append(&insert(1)).unwrap();
        lm.append(&insert(2)).unwrap();
        let err = lm.commit().unwrap_err();
        assert!(
            matches!(err, StreamError::Degraded { durable_seq: 0, .. }),
            "{err}"
        );
        assert_eq!(lm.poisoned().map(|m| m.contains("fsync")), Some(true));
        // The fsync is never retried: a second commit refuses instead
        // of syncing again and falsely acking the lost events...
        let err = lm.commit().unwrap_err();
        assert!(
            matches!(err, StreamError::Degraded { durable_seq: 0, .. }),
            "{err}"
        );
        // ...appends refuse too, and the durable cursor stays frozen.
        assert!(lm.append(&insert(3)).is_err());
        assert_eq!(lm.durable_seq(), 0);
    }

    #[test]
    fn poisoning_freezes_the_cursor_at_the_last_good_sync() {
        let mut lm = faulted_manager("poison-late.rpwal", 4);
        lm.append(&insert(1)).unwrap();
        assert_eq!(lm.commit().unwrap(), 1, "sync 3 succeeds");
        lm.append(&insert(2)).unwrap();
        let err = lm.commit().unwrap_err();
        assert!(
            matches!(err, StreamError::Degraded { durable_seq: 1, .. }),
            "{err}"
        );
        assert_eq!(lm.durable_seq(), 1, "event 2 is reported lost");
    }

    #[test]
    fn seal_flushes_the_tail_and_refuses_every_later_mutation() {
        let mut lm = manager("seal.rpwal", 64);
        lm.append(&insert(1)).unwrap();
        lm.append(&insert(2)).unwrap();
        assert_eq!(lm.seal().unwrap(), 2, "the pending tail is synced");
        assert_eq!(lm.poisoned().map(|m| m.contains("sealed")), Some(true));
        // Sealed behaves like poisoned: the handle can never write again.
        assert!(matches!(
            lm.append(&insert(3)),
            Err(StreamError::Degraded { durable_seq: 2, .. })
        ));
        assert!(matches!(
            lm.commit(),
            Err(StreamError::Degraded { durable_seq: 2, .. })
        ));
        assert_eq!(lm.durable_seq(), 2);
    }

    #[test]
    fn sealing_a_poisoned_manager_keeps_the_original_poison() {
        let mut lm = faulted_manager("seal-poisoned.rpwal", 3);
        lm.append(&insert(1)).unwrap();
        assert!(lm.commit().is_err(), "sync 3 is scripted to fail");
        let err = lm.seal().unwrap_err();
        assert!(
            matches!(err, StreamError::Degraded { durable_seq: 0, .. }),
            "{err}"
        );
        assert_eq!(
            lm.poisoned().map(|m| m.contains("fsync")),
            Some(true),
            "the fsync poison (the true loss boundary) is not overwritten"
        );
    }

    #[test]
    fn defaults_never_commit_automatically() {
        let mut lm = manager("default.rpwal", 0);
        for seq in 1..=100 {
            lm.append(&insert(seq)).unwrap();
            lm.maybe_commit().unwrap();
        }
        assert_eq!(lm.durable_seq(), 0, "only explicit flush syncs");
        assert_eq!(lm.commit().unwrap(), 100);
    }
}
