//! Group commit: amortizing WAL fsyncs over batches of appends.
//!
//! An `fsync` costs orders of magnitude more than formatting and
//! buffering a WAL line, so syncing after every insert caps ingest at
//! the disk's flush rate. The [`LogManager`] wraps a [`Wal`] and turns
//! the per-append sync into a *policy*: appends accumulate as pending,
//! and the log is forced to stable storage when the pending count
//! reaches `commit_batch`, when `commit_window_ms` has elapsed since
//! the last sync, or on an explicit [`commit`](LogManager::commit)
//! (the [`StreamPublisher::flush`](crate::stream::StreamPublisher::flush)
//! path). Both knobs at `0` — the [`StreamConfig`] default — mean
//! *explicit flush only*, the subsystem's original behavior.
//!
//! Group commit changes **when** bytes become durable, never which
//! bytes are written: the WAL content, and therefore replay, is
//! byte-identical under any commit policy. What a crash can cost is
//! bounded by the policy — at most `commit_batch − 1` acknowledged but
//! unsynced events (or one window's worth) roll back to the durable
//! prefix, which replay then reconstructs exactly.

use std::time::{Duration, Instant};

use crate::stream::wal::{Wal, WalEvent};
use crate::stream::{StreamConfig, StreamError};

/// A [`Wal`] plus a group-commit policy: appends are buffered and
/// fsynced in batches, trading a bounded durability window for
/// amortized sync cost.
#[derive(Debug)]
pub(crate) struct LogManager {
    wal: Wal,
    /// Appends per automatic sync; `0` disables count-based commit.
    commit_batch: u64,
    /// Maximum time between syncs while appends are pending; `0`
    /// disables the timer.
    commit_window: Option<Duration>,
    /// Appended-but-not-yet-synced event count.
    pending: u64,
    /// Highest sequence number known to be on stable storage.
    durable_seq: u64,
    /// When the last sync happened (or the manager was created).
    last_commit: Instant,
}

impl LogManager {
    /// Wraps an open log. Everything already in the file was read from
    /// (or truncated on) stable storage, so the durable cursor starts
    /// at the last existing sequence number.
    pub(crate) fn new(wal: Wal, config: &StreamConfig) -> Self {
        let durable_seq = wal.next_seq().saturating_sub(1);
        LogManager {
            wal,
            commit_batch: config.commit_batch,
            commit_window: (config.commit_window_ms > 0)
                .then(|| Duration::from_millis(config.commit_window_ms)),
            pending: 0,
            durable_seq,
            last_commit: Instant::now(),
        }
    }

    /// The sequence number the next append will carry.
    pub(crate) fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// The highest sequence number guaranteed to survive a crash.
    pub(crate) fn durable_seq(&self) -> u64 {
        self.durable_seq
    }

    /// Appends one event to the log buffer. The event is *logged* but
    /// not yet *durable*; a commit (automatic or explicit) makes it so.
    pub(crate) fn append(&mut self, event: &WalEvent) -> std::io::Result<()> {
        self.wal.append(event)?;
        self.pending += 1;
        Ok(())
    }

    /// Commits if the policy says so: the pending count reached the
    /// batch size, or the commit window expired with appends pending.
    /// Called once per insert by the publisher. Wall-clock time only
    /// ever decides *when* a sync happens — never what is written.
    pub(crate) fn maybe_commit(&mut self) -> Result<(), StreamError> {
        let batch_full = self.commit_batch > 0 && self.pending >= self.commit_batch;
        let window_over = self
            .commit_window
            .is_some_and(|w| self.pending > 0 && self.last_commit.elapsed() >= w);
        if batch_full || window_over {
            self.commit()?;
        }
        Ok(())
    }

    /// Forces everything appended so far to stable storage and returns
    /// the new durable sequence number. A no-op sync-wise when nothing
    /// is pending — an idle flush costs nothing.
    pub(crate) fn commit(&mut self) -> Result<u64, StreamError> {
        if self.pending > 0 {
            self.wal.sync()?;
            self.durable_seq = self.wal.next_seq() - 1;
            self.pending = 0;
        }
        self.last_commit = Instant::now();
        Ok(self.durable_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::wal::WalHeader;
    use rp_core::privacy::PrivacyParams;
    use rp_table::{Attribute, Schema};

    fn header() -> WalHeader {
        WalHeader {
            seed: 7,
            p: 0.5,
            params: PrivacyParams::new(0.3, 0.3),
            sa: 1,
            schema: Schema::new(vec![
                Attribute::new("Zip", ["a", "b"]),
                Attribute::new("Disease", ["flu", "none"]),
            ]),
            base_rows: 0,
            first_seq: 1,
        }
    }

    fn insert(seq: u64) -> WalEvent {
        WalEvent::Insert {
            seq,
            codes: vec![0, 0],
        }
    }

    fn manager(name: &str, batch: u64) -> LogManager {
        let path = std::env::temp_dir().join(format!("rp-commit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let config = StreamConfig {
            commit_batch: batch,
            ..StreamConfig::default()
        };
        LogManager::new(Wal::create(&path, &header()).unwrap(), &config)
    }

    #[test]
    fn batch_policy_syncs_every_nth_append() {
        let mut lm = manager("batch.rpwal", 3);
        assert_eq!(lm.durable_seq(), 0);
        for seq in 1..=2 {
            lm.append(&insert(seq)).unwrap();
            lm.maybe_commit().unwrap();
            assert_eq!(lm.durable_seq(), 0, "below the batch size nothing syncs");
        }
        lm.append(&insert(3)).unwrap();
        lm.maybe_commit().unwrap();
        assert_eq!(lm.durable_seq(), 3, "the batch boundary commits");
        lm.append(&insert(4)).unwrap();
        lm.maybe_commit().unwrap();
        assert_eq!(lm.durable_seq(), 3, "and the counter restarts");
    }

    #[test]
    fn explicit_commit_flushes_any_pending_tail() {
        let mut lm = manager("explicit.rpwal", 64);
        for seq in 1..=5 {
            lm.append(&insert(seq)).unwrap();
            lm.maybe_commit().unwrap();
        }
        assert_eq!(lm.durable_seq(), 0);
        assert_eq!(lm.commit().unwrap(), 5);
        // An idle commit is a cheap no-op that reports the same cursor.
        assert_eq!(lm.commit().unwrap(), 5);
    }

    #[test]
    fn defaults_never_commit_automatically() {
        let mut lm = manager("default.rpwal", 0);
        for seq in 1..=100 {
            lm.append(&insert(seq)).unwrap();
            lm.maybe_commit().unwrap();
        }
        assert_eq!(lm.durable_seq(), 0, "only explicit flush syncs");
        assert_eq!(lm.commit().unwrap(), 100);
    }
}
