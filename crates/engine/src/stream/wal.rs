//! The insert write-ahead log: a line-oriented, versioned record of every
//! mutation a [`crate::stream::StreamPublisher`] applied.
//!
//! Same codec discipline as the rest of the crate's formats
//! (`parse ∘ encode = id`, tab-separated, versioned magic): the header
//! records everything needed to re-derive the run — the stream seed, the
//! perturbation parameters `(p, λ, δ)`, the schema and the base-release
//! fingerprint — followed by one event per line:
//!
//! ```text
//! wal    := "rp-wal v1" NL
//!           "seed" TAB u64 NL  "p" TAB f64 NL
//!           "lambda" TAB f64 NL  "delta" TAB f64 NL
//!           "sa" TAB attr NL
//!           "attrs" TAB n NL  ("attr" TAB name (TAB value)* NL){n}
//!           "base" TAB rows NL
//!           "start" TAB first_seq NL
//!           event*
//! event  := "i" TAB seq (TAB code){arity} NL      -- one inserted record
//!         | "r" TAB seq (TAB code){arity-1} NL    -- SPS re-publication of a group key
//! ```
//!
//! Sequence numbers are contiguous from the header's `first_seq` (1 for
//! a stream's first log; a log started fresh after a snapshot records
//! where it takes over), so a snapshot can record "the last event I
//! cover" and restore replays exactly the tail. A torn final line (crash
//! mid-append) is detected by its missing newline and truncated away on
//! open — the WAL never replays a half-written event.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use rp_core::privacy::PrivacyParams;
use rp_table::Schema;

use crate::codec::{read_schema, write_schema, Lines};
use crate::publication::PublicationError;
use crate::stream::StreamError;

/// Magic line opening every WAL file.
pub const WAL_MAGIC: &str = "rp-wal v1";

/// The WAL header: the full initial condition of a stream, recorded up
/// front so a clean-start replay needs nothing but the base artifact the
/// header fingerprints.
#[derive(Debug, Clone, PartialEq)]
pub struct WalHeader {
    /// The stream seed every per-group RNG derives from.
    pub seed: u64,
    /// Retention probability of the perturbation.
    pub p: f64,
    /// The enforced `(λ, δ)` requirement.
    pub params: PrivacyParams,
    /// The sensitive attribute index.
    pub sa: usize,
    /// The published schema (shared by base and live records).
    pub schema: Schema,
    /// Rows of the immutable base release the stream grows on.
    pub base_rows: usize,
    /// Sequence number of the first event this log may contain: 1 for a
    /// stream's first log, `snapshot.wal_seq + 1` for a log started
    /// fresh after a snapshot (the archived predecessor holds the rest).
    pub first_seq: u64,
}

impl WalHeader {
    /// Whether two headers describe the same stream (everything but
    /// `first_seq`, which legitimately differs across log rotations).
    pub fn same_stream(&self, other: &WalHeader) -> bool {
        self.seed == other.seed
            && self.p == other.p
            && self.params == other.params
            && self.sa == other.sa
            && self.schema == other.schema
            && self.base_rows == other.base_rows
    }

    fn write<W: Write>(&self, mut w: W) -> Result<(), PublicationError> {
        writeln!(w, "{WAL_MAGIC}")?;
        writeln!(w, "seed\t{}", self.seed)?;
        writeln!(w, "p\t{}", self.p)?;
        writeln!(w, "lambda\t{}", self.params.lambda())?;
        writeln!(w, "delta\t{}", self.params.delta())?;
        writeln!(w, "sa\t{}", self.sa)?;
        write_schema(&mut w, &self.schema)?;
        writeln!(w, "base\t{}", self.base_rows)?;
        writeln!(w, "start\t{}", self.first_seq)?;
        Ok(())
    }

    fn read<R: BufRead>(lines: &mut Lines<R>) -> Result<Self, PublicationError> {
        let magic_err = {
            let magic = lines.next_line()?;
            (magic != WAL_MAGIC).then(|| format!("expected magic `{WAL_MAGIC}`, got `{magic}`"))
        };
        if let Some(message) = magic_err {
            return Err(PublicationError::Format { line: 1, message });
        }
        let seed: u64 = lines.field("seed")?.parse_one()?;
        let p: f64 = lines.field("p")?.parse_one()?;
        if !(p > 0.0 && p < 1.0) {
            return Err(lines.err(format!("retention p must lie in (0, 1), got {p}")));
        }
        let lambda: f64 = lines.field("lambda")?.parse_one()?;
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(lines.err(format!("lambda must be positive and finite, got {lambda}")));
        }
        let delta: f64 = lines.field("delta")?.parse_one()?;
        if !(delta > 0.0 && delta <= 1.0) {
            return Err(lines.err(format!("delta must lie in (0, 1], got {delta}")));
        }
        let sa: usize = lines.field("sa")?.parse_one()?;
        let attributes = read_schema(lines)?;
        if sa >= attributes.len() {
            return Err(lines.err(format!(
                "sa index {sa} out of range for arity {}",
                attributes.len()
            )));
        }
        let base_rows: usize = lines.field("base")?.parse_one()?;
        let first_seq: u64 = lines.field("start")?.parse_one()?;
        if first_seq == 0 {
            return Err(lines.err("first_seq must be at least 1".into()));
        }
        Ok(Self {
            seed,
            p,
            params: PrivacyParams::new(lambda, delta),
            sa,
            schema: Schema::new(attributes),
            base_rows,
            first_seq,
        })
    }
}

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalEvent {
    /// One record inserted: full dictionary codes in schema order.
    Insert {
        /// Contiguous 1-based sequence number.
        seq: u64,
        /// The record's codes (arity values, SA at its schema position).
        codes: Vec<u32>,
    },
    /// One group re-published through SPS.
    Republish {
        /// Contiguous 1-based sequence number.
        seq: u64,
        /// The group key (public-attribute codes, schema order).
        key: Vec<u32>,
    },
}

impl WalEvent {
    /// The event's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            WalEvent::Insert { seq, .. } | WalEvent::Republish { seq, .. } => *seq,
        }
    }

    /// Encodes the canonical line for this event (no trailing newline).
    pub fn encode(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let (tag, seq, codes) = match self {
            WalEvent::Insert { seq, codes } => ('i', seq, codes),
            WalEvent::Republish { seq, key } => ('r', seq, key),
        };
        write!(out, "{tag}\t{seq}").expect("writing to a String cannot fail");
        for &c in codes {
            write!(out, "\t{c}").expect("writing to a String cannot fail");
        }
        out
    }

    /// Parses one event line, validating the code count and domains
    /// against the header's schema.
    ///
    /// # Errors
    ///
    /// Returns a [`StreamError::Format`] on anything that is not a
    /// canonical event line for this schema.
    pub fn parse(line: &str, line_no: usize, header: &WalHeader) -> Result<Self, StreamError> {
        let bad = |message: String| StreamError::Format {
            line: line_no,
            message,
        };
        let mut parts = line.split('\t');
        let tag = parts.next().unwrap_or("");
        let seq: u64 = parts
            .next()
            .ok_or_else(|| bad("event needs a sequence number".into()))?
            .parse()
            .map_err(|e| bad(format!("bad sequence number: {e}")))?;
        let mut codes = Vec::new();
        for part in parts {
            codes.push(
                part.parse::<u32>()
                    .map_err(|e| bad(format!("bad code `{part}`: {e}")))?,
            );
        }
        let arity = header.schema.arity();
        let (want, attrs): (usize, Vec<usize>) = match tag {
            "i" => (arity, (0..arity).collect()),
            "r" => (arity - 1, (0..arity).filter(|&a| a != header.sa).collect()),
            other => return Err(bad(format!("unknown event tag `{other}`"))),
        };
        if codes.len() != want {
            return Err(bad(format!(
                "`{tag}` event needs {want} codes, got {}",
                codes.len()
            )));
        }
        for (&code, &attr) in codes.iter().zip(&attrs) {
            let domain = header.schema.attribute(attr).domain_size();
            if code as usize >= domain {
                return Err(bad(format!(
                    "code {code} out of range for attribute `{}` (domain {domain})",
                    header.schema.attribute(attr).name()
                )));
            }
        }
        Ok(match tag {
            "i" => WalEvent::Insert { seq, codes },
            _ => WalEvent::Republish { seq, key: codes },
        })
    }
}

/// Reads a WAL file: header, then every *complete* event line. Returns
/// the header, the events, and the byte offset of the end of the last
/// complete line (a torn final line — crash mid-append — is excluded).
///
/// Sequence numbers are checked for contiguity from 1, so a gap or
/// duplicate (manual tampering, interleaved writers) fails loudly
/// instead of replaying a corrupted history.
pub fn read_wal(path: &Path) -> Result<(WalHeader, Vec<WalEvent>, u64), StreamError> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let header = {
        let mut lines = Lines::new(&mut reader);
        WalHeader::read(&mut lines)?
    };
    // Track the offset of the last complete line so a torn tail can be
    // truncated before appending resumes.
    let mut offset = reader.stream_position()?;
    let mut events = Vec::new();
    let mut line = String::new();
    // Lines consumed by the header: magic + 5 fields + attrs + one line
    // per attribute + base + start.
    let mut line_no = 9 + header.schema.arity();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        line_no += 1;
        if !line.ends_with('\n') {
            // Torn final line: the append was cut mid-write. Ignore it —
            // the event was never acknowledged as durable.
            break;
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            return Err(StreamError::Format {
                line: line_no,
                message: "blank line inside the event log".into(),
            });
        }
        let event = WalEvent::parse(trimmed, line_no, &header)?;
        let expected = events
            .last()
            .map_or(header.first_seq, |e: &WalEvent| e.seq() + 1);
        if event.seq() != expected {
            return Err(StreamError::Format {
                line: line_no,
                message: format!("event sequence {} (expected {expected})", event.seq()),
            });
        }
        events.push(event);
        offset += n as u64;
    }
    Ok((header, events, offset))
}

/// An open WAL accepting appends. Create with [`Wal::create`] (new file,
/// header written) or [`Wal::open_append`] (existing file validated, torn
/// tail truncated, positioned at the end).
#[derive(Debug)]
pub struct Wal {
    writer: BufWriter<File>,
    next_seq: u64,
}

impl Wal {
    /// Creates a fresh WAL at `path`, writing the header. Refuses to
    /// overwrite an existing file — an existing log must be opened with
    /// [`Wal::open_append`] so its history is validated, not clobbered.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, an already-existing file, or a
    /// schema not representable in the line format.
    pub fn create(path: &Path, header: &WalHeader) -> Result<Self, StreamError> {
        let file = OpenOptions::new().write(true).create_new(true).open(path)?;
        let mut writer = BufWriter::new(file);
        header.write(&mut writer)?;
        writer.flush()?;
        Ok(Self {
            writer,
            next_seq: header.first_seq,
        })
    }

    /// Opens an existing WAL for appending: validates the header against
    /// `expected` — including that the log's sequence coverage dovetails
    /// with `expected.first_seq` (the caller's first uncovered event) —
    /// reads every complete event, truncates a torn final line, and
    /// positions writes at the end. Returns the log handle and the
    /// events read (for replay).
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, malformed content, a header that
    /// does not match the expected stream parameters, a log that starts
    /// after the expected sequence (events are missing), or a stale log
    /// whose next append would rewind the sequence.
    pub fn open_append(
        path: &Path,
        expected: &WalHeader,
    ) -> Result<(Self, Vec<WalEvent>), StreamError> {
        let (header, events, end) = read_wal(path)?;
        if !header.same_stream(expected) {
            return Err(StreamError::Mismatch(format!(
                "WAL header at {} does not match the stream's artifact \
                 (seed/parameters/schema/base differ)",
                path.display()
            )));
        }
        // The snapshot covers events 1..expected.first_seq; the log must
        // pick up no later than that (no gap) and its next append — the
        // last event + 1, or the header's first_seq for a log that is
        // still empty — must not rewind behind the snapshot (stale log).
        if header.first_seq > expected.first_seq {
            return Err(StreamError::Mismatch(format!(
                "WAL at {} starts at event {} but the snapshot covers only {} — \
                 events are missing (archived log newer than the snapshot?)",
                path.display(),
                header.first_seq,
                expected.first_seq - 1
            )));
        }
        let log_next = events.last().map_or(header.first_seq, |e| e.seq() + 1);
        if log_next < expected.first_seq {
            return Err(StreamError::Mismatch(format!(
                "WAL at {} ends at event {} but the snapshot covers {} — stale log \
                 (appending would rewind the sequence)",
                path.display(),
                log_next - 1,
                expected.first_seq - 1
            )));
        }
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(end)?; // drop a torn tail, if any
        let mut writer = BufWriter::new(file);
        writer.seek(SeekFrom::End(0))?;
        let next_seq = events.last().map_or(header.first_seq, |e| e.seq() + 1);
        Ok((Self { writer, next_seq }, events))
    }

    /// The sequence number the next appended event must carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one event (buffered; call [`Wal::sync`] for durability).
    ///
    /// # Panics
    ///
    /// Panics if the event's sequence number is not the next in line —
    /// the caller constructs events from [`Wal::next_seq`], so a gap is
    /// a logic error, never data.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O failure.
    pub fn append(&mut self, event: &WalEvent) -> std::io::Result<()> {
        assert_eq!(
            event.seq(),
            self.next_seq,
            "WAL events must be appended in sequence"
        );
        writeln!(self.writer, "{}", event.encode())?;
        self.next_seq += 1;
        Ok(())
    }

    /// Flushes buffered events and syncs file data to stable storage —
    /// the durability point `flush` requests commit to.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O failure.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_table::Attribute;

    fn header() -> WalHeader {
        WalHeader {
            seed: 7,
            p: 0.5,
            params: PrivacyParams::new(0.3, 0.3),
            sa: 1,
            schema: Schema::new(vec![
                Attribute::new("Job", ["eng", "doc"]),
                Attribute::new("Disease", ["flu", "none"]),
            ]),
            base_rows: 40,
            first_seq: 1,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rp-wal-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn events_round_trip_through_the_line_codec() {
        let h = header();
        for event in [
            WalEvent::Insert {
                seq: 1,
                codes: vec![0, 1],
            },
            WalEvent::Republish {
                seq: 2,
                key: vec![1],
            },
        ] {
            let line = event.encode();
            let parsed = WalEvent::parse(&line, 1, &h).unwrap();
            assert_eq!(parsed, event, "line `{line}`");
        }
    }

    #[test]
    fn parse_rejects_malformed_events() {
        let h = header();
        for (line, needle) in [
            ("x\t1\t0\t0", "unknown event tag"),
            ("i\t1\t0", "needs 2 codes"),
            ("i\tone\t0\t0", "bad sequence"),
            ("i\t1\t0\t9", "out of range"),
            ("r\t1\t0\t0", "needs 1 codes"),
            ("i", "sequence number"),
        ] {
            let err = WalEvent::parse(line, 3, &h).unwrap_err();
            assert!(err.to_string().contains(needle), "`{line}` -> {err}");
        }
    }

    #[test]
    fn create_append_read_round_trips() {
        let path = tmp("roundtrip.rpwal");
        let _ = std::fs::remove_file(&path);
        let h = header();
        let mut wal = Wal::create(&path, &h).unwrap();
        let events = vec![
            WalEvent::Insert {
                seq: 1,
                codes: vec![0, 1],
            },
            WalEvent::Insert {
                seq: 2,
                codes: vec![1, 0],
            },
            WalEvent::Republish {
                seq: 3,
                key: vec![0],
            },
        ];
        for e in &events {
            wal.append(e).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let (h2, read, _) = read_wal(&path).unwrap();
        assert_eq!(h2, h);
        assert_eq!(read, events);
        // Reopen for append and continue the sequence.
        let (mut wal, replayed) = Wal::open_append(&path, &h).unwrap();
        assert_eq!(replayed, events);
        assert_eq!(wal.next_seq(), 4);
        wal.append(&WalEvent::Insert {
            seq: 4,
            codes: vec![0, 0],
        })
        .unwrap();
        wal.sync().unwrap();
        let (_, all, _) = read_wal(&path).unwrap();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn torn_tail_is_ignored_and_truncated_on_reopen() {
        let path = tmp("torn.rpwal");
        let _ = std::fs::remove_file(&path);
        let h = header();
        let mut wal = Wal::create(&path, &h).unwrap();
        wal.append(&WalEvent::Insert {
            seq: 1,
            codes: vec![0, 1],
        })
        .unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Simulate a crash mid-append: half an event, no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "i\t2\t1").unwrap();
        }
        let (_, events, _) = read_wal(&path).unwrap();
        assert_eq!(events.len(), 1, "torn line must not replay");
        let (mut wal, replayed) = Wal::open_append(&path, &h).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(wal.next_seq(), 2);
        wal.append(&WalEvent::Insert {
            seq: 2,
            codes: vec![1, 1],
        })
        .unwrap();
        wal.sync().unwrap();
        let (_, events, _) = read_wal(&path).unwrap();
        assert_eq!(events.len(), 2, "the torn bytes were truncated away");
    }

    #[test]
    fn sequence_gaps_and_header_mismatches_are_rejected() {
        let path = tmp("gaps.rpwal");
        let _ = std::fs::remove_file(&path);
        let h = header();
        let mut wal = Wal::create(&path, &h).unwrap();
        wal.append(&WalEvent::Insert {
            seq: 1,
            codes: vec![0, 1],
        })
        .unwrap();
        wal.sync().unwrap();
        drop(wal);
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "i\t3\t0\t0").unwrap(); // gap: 2 is missing
        }
        let err = read_wal(&path).unwrap_err();
        assert!(err.to_string().contains("sequence"), "{err}");

        let other = WalHeader {
            seed: 8,
            ..header()
        };
        let path2 = tmp("mismatch.rpwal");
        let _ = std::fs::remove_file(&path2);
        Wal::create(&path2, &h).unwrap();
        let err = Wal::open_append(&path2, &other).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
    }

    #[test]
    fn create_refuses_to_overwrite() {
        let path = tmp("exists.rpwal");
        let _ = std::fs::remove_file(&path);
        let h = header();
        Wal::create(&path, &h).unwrap();
        assert!(Wal::create(&path, &h).is_err());
    }
}
