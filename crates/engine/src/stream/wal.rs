//! The insert write-ahead log: a line-oriented, versioned record of every
//! mutation a [`crate::stream::StreamPublisher`] applied.
//!
//! Same codec discipline as the rest of the crate's formats
//! (`parse ∘ encode = id`, tab-separated, versioned magic): the header
//! records everything needed to re-derive the run — the stream seed, the
//! perturbation parameters `(p, λ, δ)`, the schema and the base-release
//! fingerprint — followed by one event per line:
//!
//! ```text
//! wal     := "rp-wal v1" NL
//!            "seed" TAB u64 NL  "p" TAB f64 NL
//!            "lambda" TAB f64 NL  "delta" TAB f64 NL
//!            "sa" TAB attr NL
//!            "attrs" TAB n NL  ("attr" TAB name (TAB value)* NL){n}
//!            "base" TAB rows NL
//!            "start" TAB first_seq NL
//!            compact?
//!            event*
//! event   := "i" TAB seq (TAB code){arity} NL      -- one inserted record
//!          | "r" TAB seq (TAB code){arity-1} NL    -- SPS re-publication of a group key
//! compact := "compact" TAB floor TAB inserts TAB republishes TAB n NL
//!            sgroup{n}
//! sgroup  := "s" (TAB code){arity-1}               -- group key
//!            (TAB count){m} (TAB count){m}         -- raw + published histograms
//!            TAB rng TAB ("c"|"f") TAB len NL      -- cursor, status, republish baseline
//! ```
//!
//! Sequence numbers are contiguous from the header's `first_seq` (1 for
//! a stream's first log; a log started fresh after a snapshot records
//! where it takes over), so a snapshot can record "the last event I
//! cover" and restore replays exactly the tail. A torn final line (crash
//! mid-append) is detected by its missing newline and truncated away on
//! open — the WAL never replays a half-written event.
//!
//! ## The compaction rule
//!
//! An SPS re-publication (`r`) re-derives a group's published histogram
//! from its raw histogram, so a group's state after its *last* `r` event
//! is a pure function of its own event subsequence up to that point —
//! per-group RNG streams make it independent of how other groups
//! interleaved. [`compact_wal`] exploits this: for every group with at
//! least one `r` event it absorbs all of that group's events up to and
//! including its last `r` into a single `s` state record (key-sorted),
//! and retains everything else untouched. The `compact` line records the
//! absorption floor (the highest absorbed sequence number) and the
//! absorbed insert/republish counts so replay reconstructs the stream
//! counters exactly. Below the floor, retained sequence numbers are
//! merely strictly increasing (absorbed events leave gaps); above it
//! they are contiguous as usual. Replaying a compacted log is
//! byte-identical to replaying the original (the determinism suite
//! proves it); a snapshot whose cursor lies strictly *between* zero and
//! the floor cannot resume on a compacted log and is refused loudly.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use rp_core::incremental::{GroupStatus, IncrementalPublisher, LiveGroup};
use rp_core::privacy::PrivacyParams;
use rp_table::Schema;

use crate::codec::{canon_f64, read_schema, write_schema, Lines};
use crate::fault::{self, CheckedFile, FaultHandle};
use crate::fsutil;
use crate::publication::PublicationError;
use crate::stream::rng::GroupRng;
use crate::stream::StreamError;

/// Magic line opening every WAL file.
pub const WAL_MAGIC: &str = "rp-wal v1";

/// The WAL header: the full initial condition of a stream, recorded up
/// front so a clean-start replay needs nothing but the base artifact the
/// header fingerprints.
#[derive(Debug, Clone, PartialEq)]
pub struct WalHeader {
    /// The stream seed every per-group RNG derives from.
    pub seed: u64,
    /// Retention probability of the perturbation.
    pub p: f64,
    /// The enforced `(λ, δ)` requirement.
    pub params: PrivacyParams,
    /// The sensitive attribute index.
    pub sa: usize,
    /// The published schema (shared by base and live records).
    pub schema: Schema,
    /// Rows of the immutable base release the stream grows on.
    pub base_rows: usize,
    /// Sequence number of the first event this log may contain: 1 for a
    /// stream's first log, `snapshot.wal_seq + 1` for a log started
    /// fresh after a snapshot (the archived predecessor holds the rest).
    pub first_seq: u64,
}

impl WalHeader {
    /// Whether two headers describe the same stream (everything but
    /// `first_seq`, which legitimately differs across log rotations).
    pub fn same_stream(&self, other: &WalHeader) -> bool {
        self.seed == other.seed
            && self.p == other.p
            && self.params == other.params
            && self.sa == other.sa
            && self.schema == other.schema
            && self.base_rows == other.base_rows
    }

    fn write<W: Write>(&self, mut w: W) -> Result<(), PublicationError> {
        writeln!(w, "{WAL_MAGIC}")?;
        writeln!(w, "seed\t{}", self.seed)?;
        writeln!(w, "p\t{}", canon_f64(self.p))?;
        writeln!(w, "lambda\t{}", canon_f64(self.params.lambda()))?;
        writeln!(w, "delta\t{}", canon_f64(self.params.delta()))?;
        writeln!(w, "sa\t{}", self.sa)?;
        write_schema(&mut w, &self.schema)?;
        writeln!(w, "base\t{}", self.base_rows)?;
        writeln!(w, "start\t{}", self.first_seq)?;
        Ok(())
    }

    fn read<R: BufRead>(lines: &mut Lines<R>) -> Result<Self, PublicationError> {
        let magic_err = {
            let magic = lines.next_line()?;
            (magic != WAL_MAGIC).then(|| format!("expected magic `{WAL_MAGIC}`, got `{magic}`"))
        };
        if let Some(message) = magic_err {
            return Err(PublicationError::Format { line: 1, message });
        }
        let seed: u64 = lines.field("seed")?.parse_one()?;
        let p: f64 = lines.field("p")?.parse_one()?;
        if !(p > 0.0 && p < 1.0) {
            return Err(lines.err(format!("retention p must lie in (0, 1), got {p}")));
        }
        let lambda: f64 = lines.field("lambda")?.parse_one()?;
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(lines.err(format!("lambda must be positive and finite, got {lambda}")));
        }
        let delta: f64 = lines.field("delta")?.parse_one()?;
        if !(delta > 0.0 && delta <= 1.0) {
            return Err(lines.err(format!("delta must lie in (0, 1], got {delta}")));
        }
        let sa: usize = lines.field("sa")?.parse_one()?;
        let attributes = read_schema(lines)?;
        if sa >= attributes.len() {
            return Err(lines.err(format!(
                "sa index {sa} out of range for arity {}",
                attributes.len()
            )));
        }
        let base_rows: usize = lines.field("base")?.parse_one()?;
        let first_seq: u64 = lines.field("start")?.parse_one()?;
        if first_seq == 0 {
            return Err(lines.err("first_seq must be at least 1".into()));
        }
        Ok(Self {
            seed,
            p,
            params: PrivacyParams::new(lambda, delta),
            sa,
            schema: Schema::new(attributes),
            base_rows,
            first_seq,
        })
    }
}

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalEvent {
    /// One record inserted: full dictionary codes in schema order.
    Insert {
        /// Contiguous 1-based sequence number.
        seq: u64,
        /// The record's codes (arity values, SA at its schema position).
        codes: Vec<u32>,
    },
    /// One group re-published through SPS.
    Republish {
        /// Contiguous 1-based sequence number.
        seq: u64,
        /// The group key (public-attribute codes, schema order).
        key: Vec<u32>,
    },
}

impl WalEvent {
    /// The event's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            WalEvent::Insert { seq, .. } | WalEvent::Republish { seq, .. } => *seq,
        }
    }

    /// Encodes the canonical line for this event (no trailing newline).
    pub fn encode(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let (tag, seq, codes) = match self {
            WalEvent::Insert { seq, codes } => ('i', seq, codes),
            WalEvent::Republish { seq, key } => ('r', seq, key),
        };
        write!(out, "{tag}\t{seq}").expect("writing to a String cannot fail");
        for &c in codes {
            write!(out, "\t{c}").expect("writing to a String cannot fail");
        }
        out
    }

    /// Parses one event line, validating the code count and domains
    /// against the header's schema.
    ///
    /// # Errors
    ///
    /// Returns a [`StreamError::Format`] on anything that is not a
    /// canonical event line for this schema.
    pub fn parse(line: &str, line_no: usize, header: &WalHeader) -> Result<Self, StreamError> {
        let bad = |message: String| StreamError::Format {
            line: line_no,
            message,
        };
        let mut parts = line.split('\t');
        let tag = parts.next().unwrap_or("");
        let seq: u64 = parts
            .next()
            .ok_or_else(|| bad("event needs a sequence number".into()))?
            .parse()
            .map_err(|e| bad(format!("bad sequence number: {e}")))?;
        let mut codes = Vec::new();
        for part in parts {
            codes.push(
                part.parse::<u32>()
                    .map_err(|e| bad(format!("bad code `{part}`: {e}")))?,
            );
        }
        let arity = header.schema.arity();
        let (want, attrs): (usize, Vec<usize>) = match tag {
            "i" => (arity, (0..arity).collect()),
            "r" => (arity - 1, (0..arity).filter(|&a| a != header.sa).collect()),
            other => return Err(bad(format!("unknown event tag `{other}`"))),
        };
        if codes.len() != want {
            return Err(bad(format!(
                "`{tag}` event needs {want} codes, got {}",
                codes.len()
            )));
        }
        for (&code, &attr) in codes.iter().zip(&attrs) {
            let domain = header.schema.attribute(attr).domain_size();
            if code as usize >= domain {
                return Err(bad(format!(
                    "code {code} out of range for attribute `{}` (domain {domain})",
                    header.schema.attribute(attr).name()
                )));
            }
        }
        Ok(match tag {
            "i" => WalEvent::Insert { seq, codes },
            _ => WalEvent::Republish { seq, key: codes },
        })
    }
}

/// The state of one group absorbed by WAL compaction: everything replay
/// needs to resume the group as if its absorbed events had been applied
/// one by one (mirrors the snapshot's live-group record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactGroup {
    /// The group key (public-attribute codes, schema order).
    pub key: Vec<u32>,
    /// Raw SA histogram after the absorbed events.
    pub raw_hist: Vec<u64>,
    /// Published SA histogram after the absorbed events.
    pub published_hist: Vec<u64>,
    /// The group's RNG cursor after the absorbed events.
    pub rng_state: u64,
    /// Compliance status after the absorbed events.
    pub status: GroupStatus,
    /// Raw records covered by the last SPS re-publication.
    pub republished_len: u64,
}

impl CompactGroup {
    fn encode(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("s");
        for &c in &self.key {
            write!(out, "\t{c}").expect("writing to a String cannot fail");
        }
        for &c in self.raw_hist.iter().chain(&self.published_hist) {
            write!(out, "\t{c}").expect("writing to a String cannot fail");
        }
        let status = match self.status {
            GroupStatus::Compliant => 'c',
            GroupStatus::NeedsResampling => 'f',
        };
        write!(
            out,
            "\t{}\t{status}\t{}",
            self.rng_state, self.republished_len
        )
        .expect("writing to a String cannot fail");
        out
    }

    fn parse(line: &str, line_no: usize, header: &WalHeader) -> Result<Self, StreamError> {
        let bad = |message: String| StreamError::Format {
            line: line_no,
            message,
        };
        let mut parts = line.split('\t');
        if parts.next() != Some("s") {
            return Err(bad("expected an `s` state record".into()));
        }
        let m = header.schema.attribute(header.sa).domain_size();
        let arity = header.schema.arity();
        let mut key = Vec::with_capacity(arity - 1);
        for attr in (0..arity).filter(|&a| a != header.sa) {
            let code: u32 = parts
                .next()
                .ok_or_else(|| bad("`s` record has a short key".into()))?
                .parse()
                .map_err(|e| bad(format!("bad key code: {e}")))?;
            let domain = header.schema.attribute(attr).domain_size();
            if code as usize >= domain {
                return Err(bad(format!(
                    "key code {code} out of range for attribute `{}` (domain {domain})",
                    header.schema.attribute(attr).name()
                )));
            }
            key.push(code);
        }
        let mut hists = [Vec::with_capacity(m), Vec::with_capacity(m)];
        for hist in &mut hists {
            for _ in 0..m {
                hist.push(
                    parts
                        .next()
                        .ok_or_else(|| bad("`s` record has a short histogram".into()))?
                        .parse::<u64>()
                        .map_err(|e| bad(format!("bad count: {e}")))?,
                );
            }
        }
        let [raw_hist, published_hist] = hists;
        let rng_state: u64 = parts
            .next()
            .ok_or_else(|| bad("`s` record is missing the rng state".into()))?
            .parse()
            .map_err(|e| bad(format!("bad rng state: {e}")))?;
        let status = match parts.next() {
            Some("c") => GroupStatus::Compliant,
            Some("f") => GroupStatus::NeedsResampling,
            other => return Err(bad(format!("bad status {other:?}"))),
        };
        let republished_len: u64 = parts
            .next()
            .ok_or_else(|| bad("`s` record is missing republished_len".into()))?
            .parse()
            .map_err(|e| bad(format!("bad republished_len: {e}")))?;
        if parts.next().is_some() {
            return Err(bad("trailing fields on `s` record".into()));
        }
        Ok(Self {
            key,
            raw_hist,
            published_hist,
            rng_state,
            status,
            republished_len,
        })
    }
}

/// The compaction section of a WAL: per-group state absorbing every
/// event at or below `floor_seq` that a later re-publication superseded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalCompaction {
    /// Highest absorbed sequence number. Retained events at or below it
    /// are strictly increasing (absorption leaves gaps); above it the
    /// sequence is contiguous as in an uncompacted log.
    pub floor_seq: u64,
    /// Insert events absorbed into the state records.
    pub absorbed_inserts: u64,
    /// Re-publication events absorbed into the state records.
    pub absorbed_republishes: u64,
    /// Absorbed group states, strictly sorted by key.
    pub groups: Vec<CompactGroup>,
}

/// Everything read from one WAL file: the header, the optional
/// compaction section, every complete event, and the byte offset of the
/// end of the last complete line (a torn final line — crash mid-append —
/// is excluded so appending resumes cleanly).
#[derive(Debug)]
pub struct WalFile {
    /// The validated header.
    pub header: WalHeader,
    /// The compaction section, if the log was compacted.
    pub compaction: Option<WalCompaction>,
    /// Every complete event, sequence-validated.
    pub events: Vec<WalEvent>,
    /// Byte offset just past the last complete line.
    pub end_offset: u64,
}

/// Reads a WAL file: header, optional compaction section, then every
/// *complete* event line.
///
/// Sequence numbers are checked — contiguous from the header's
/// `first_seq`, or (in a compacted log) strictly increasing up to the
/// compaction floor and contiguous past it — so a gap or duplicate
/// (manual tampering, interleaved writers) fails loudly instead of
/// replaying a corrupted history. A torn *event* tail is truncated away
/// silently (the event was never durable); a torn compaction section is
/// a loud error, because compacted logs are written atomically and a
/// partial section can only mean external corruption.
pub fn read_wal(path: &Path) -> Result<WalFile, StreamError> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let header = {
        let mut lines = Lines::new(&mut reader);
        WalHeader::read(&mut lines)?
    };
    // Track the offset of the last complete line so a torn tail can be
    // truncated before appending resumes.
    let mut offset = reader.stream_position()?;
    let mut compaction: Option<WalCompaction> = None;
    let mut events = Vec::new();
    let mut line = String::new();
    // Lines consumed by the header: magic + 5 fields + attrs + one line
    // per attribute + base + start.
    let mut line_no = 9 + header.schema.arity();
    let mut first_line = true;
    let mut last_seq = header.first_seq - 1;
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        line_no += 1;
        let torn = !line.ends_with('\n');
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if first_line && trimmed.starts_with("compact\t") {
            first_line = false;
            if torn {
                return Err(StreamError::Format {
                    line: line_no,
                    message: "truncated compaction header".into(),
                });
            }
            offset += n as u64;
            let (section, lines_read, bytes_read) =
                read_compact_section(trimmed, &mut reader, line_no, &header)?;
            line_no += lines_read;
            offset += bytes_read;
            compaction = Some(section);
            continue;
        }
        first_line = false;
        if torn {
            // Torn final line: the append was cut mid-write. Ignore it —
            // the event was never acknowledged as durable.
            break;
        }
        if trimmed.is_empty() {
            return Err(StreamError::Format {
                line: line_no,
                message: "blank line inside the event log".into(),
            });
        }
        let event = WalEvent::parse(trimmed, line_no, &header)?;
        let floor = compaction.as_ref().map_or(0, |c| c.floor_seq);
        if event.seq() <= floor {
            // Below the compaction floor absorption leaves gaps, but the
            // retained order must still be strictly increasing.
            if event.seq() <= last_seq {
                return Err(StreamError::Format {
                    line: line_no,
                    message: format!(
                        "event sequence {} out of order (expected past {last_seq})",
                        event.seq()
                    ),
                });
            }
        } else {
            let expected = last_seq.max(floor) + 1;
            if event.seq() != expected {
                return Err(StreamError::Format {
                    line: line_no,
                    message: format!("event sequence {} (expected {expected})", event.seq()),
                });
            }
        }
        last_seq = event.seq();
        events.push(event);
        offset += n as u64;
    }
    Ok(WalFile {
        header,
        compaction,
        events,
        end_offset: offset,
    })
}

/// Parses the `compact` line plus its counted `s` records. Returns the
/// section and the lines/bytes it consumed past the `compact` line.
fn read_compact_section<R: BufRead>(
    compact_line: &str,
    reader: &mut R,
    compact_line_no: usize,
    header: &WalHeader,
) -> Result<(WalCompaction, usize, u64), StreamError> {
    let bad = |line: usize, message: String| StreamError::Format { line, message };
    let fields: Vec<&str> = compact_line.split('\t').skip(1).collect();
    if fields.len() != 4 {
        return Err(bad(
            compact_line_no,
            format!("`compact` line needs 4 fields, got {}", fields.len()),
        ));
    }
    let parse_u64 = |raw: &str, what: &str| -> Result<u64, StreamError> {
        raw.parse()
            .map_err(|e| bad(compact_line_no, format!("bad {what} `{raw}`: {e}")))
    };
    let floor_seq = parse_u64(fields[0], "compaction floor")?;
    let absorbed_inserts = parse_u64(fields[1], "absorbed insert count")?;
    let absorbed_republishes = parse_u64(fields[2], "absorbed republish count")?;
    let n_groups = parse_u64(fields[3], "group count")? as usize;
    if floor_seq < header.first_seq {
        return Err(bad(
            compact_line_no,
            format!(
                "compaction floor {floor_seq} precedes the log start {}",
                header.first_seq
            ),
        ));
    }
    // The count is untrusted: cap the pre-allocation (a real count past
    // the cap still loads, slower).
    let mut groups = Vec::with_capacity(n_groups.min(1 << 10));
    let mut line = String::new();
    let mut bytes = 0u64;
    for i in 0..n_groups {
        let line_no = compact_line_no + i + 1;
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 || !line.ends_with('\n') {
            return Err(bad(
                line_no,
                format!("truncated compaction section ({i} of {n_groups} state records)"),
            ));
        }
        let g = CompactGroup::parse(line.trim_end_matches(['\n', '\r']), line_no, header)?;
        if let Some(prev) = groups.last() {
            let prev: &CompactGroup = prev;
            if prev.key >= g.key {
                return Err(bad(
                    line_no,
                    "compaction state records must be strictly sorted by key".into(),
                ));
            }
        }
        groups.push(g);
        bytes += n as u64;
    }
    Ok((
        WalCompaction {
            floor_seq,
            absorbed_inserts,
            absorbed_republishes,
            groups,
        },
        n_groups,
        bytes,
    ))
}

/// An open WAL accepting appends. Create with [`Wal::create`] (new file,
/// header written) or [`Wal::open_append`] (existing file validated, torn
/// tail truncated, positioned at the end).
#[derive(Debug)]
pub struct Wal {
    writer: BufWriter<CheckedFile>,
    next_seq: u64,
    path: PathBuf,
    /// Whether the directory entry is known durable. [`Wal::create`]
    /// syncs the parent directory up front; a log opened for append
    /// syncs it on the first [`Wal::sync`] instead.
    dir_synced: bool,
}

impl Wal {
    /// Creates a fresh WAL at `path`, writing the header **durably**:
    /// the header bytes are fsynced and so is the parent directory, so a
    /// crash right after a stream reports itself live can leave neither
    /// a torn header nor a missing directory entry. Refuses to overwrite
    /// an existing file — an existing log must be opened with
    /// [`Wal::open_append`] so its history is validated, not clobbered.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, an already-existing file, or a
    /// schema not representable in the line format.
    pub fn create(path: &Path, header: &WalHeader) -> Result<Self, StreamError> {
        Self::create_with(path, header, fault::passthrough())
    }

    /// [`Wal::create`] behind an injectable fault policy: every header
    /// write, the header fsync and the directory fsync consult `faults`
    /// before touching the disk (production passes the passthrough).
    ///
    /// # Errors
    ///
    /// As [`Wal::create`], plus whatever `faults` injects.
    pub fn create_with(
        path: &Path,
        header: &WalHeader,
        faults: FaultHandle,
    ) -> Result<Self, StreamError> {
        let file = OpenOptions::new().write(true).create_new(true).open(path)?;
        let mut writer = BufWriter::new(CheckedFile::new(file, faults));
        header.write(&mut writer)?;
        writer.flush()?;
        writer.get_ref().sync_all()?;
        fsutil::sync_parent_dir_with(path, writer.get_ref().faults())?;
        Ok(Self {
            writer,
            next_seq: header.first_seq,
            path: path.to_path_buf(),
            dir_synced: true,
        })
    }

    /// Opens an existing WAL for appending: validates the header against
    /// `expected` — including that the log's sequence coverage dovetails
    /// with `expected.first_seq` (the caller's first uncovered event) —
    /// reads every complete event, truncates a torn final line, and
    /// positions writes at the end. Returns the log handle and the
    /// parsed file (compaction section + events, for replay).
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, malformed content, a header that
    /// does not match the expected stream parameters, a log that starts
    /// after the expected sequence (events are missing), or a stale log
    /// whose next append would rewind the sequence.
    pub fn open_append(path: &Path, expected: &WalHeader) -> Result<(Self, WalFile), StreamError> {
        Self::open_append_with(path, expected, fault::passthrough())
    }

    /// [`Wal::open_append`] behind an injectable fault policy: the
    /// opened log's future writes and syncs consult `faults` before
    /// touching the disk (the validating read is never faulted — reads
    /// are outside the injection surface).
    ///
    /// # Errors
    ///
    /// As [`Wal::open_append`].
    pub fn open_append_with(
        path: &Path,
        expected: &WalHeader,
        faults: FaultHandle,
    ) -> Result<(Self, WalFile), StreamError> {
        let wal_file = read_wal(path)?;
        if !wal_file.header.same_stream(expected) {
            return Err(StreamError::Mismatch(format!(
                "WAL header at {} does not match the stream's artifact \
                 (seed/parameters/schema/base differ)",
                path.display()
            )));
        }
        // The snapshot covers events 1..expected.first_seq; the log must
        // pick up no later than that (no gap) and its next append — past
        // the last event, the compaction floor, or the header's
        // first_seq for a log that is still empty — must not rewind
        // behind the snapshot (stale log).
        if wal_file.header.first_seq > expected.first_seq {
            return Err(StreamError::Mismatch(format!(
                "WAL at {} starts at event {} but the snapshot covers only {} — \
                 events are missing (archived log newer than the snapshot?)",
                path.display(),
                wal_file.header.first_seq,
                expected.first_seq - 1
            )));
        }
        let log_next = Self::next_after(&wal_file);
        if log_next < expected.first_seq {
            return Err(StreamError::Mismatch(format!(
                "WAL at {} ends at event {} but the snapshot covers {} — stale log \
                 (appending would rewind the sequence)",
                path.display(),
                log_next - 1,
                expected.first_seq - 1
            )));
        }
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(wal_file.end_offset)?; // drop a torn tail, if any
        let mut writer = BufWriter::new(CheckedFile::new(file, faults));
        writer.seek(SeekFrom::End(0))?;
        Ok((
            Self {
                writer,
                next_seq: log_next,
                path: path.to_path_buf(),
                dir_synced: false,
            },
            wal_file,
        ))
    }

    /// The sequence number following everything a parsed log covers: its
    /// last event, or the compaction floor, or (empty log) the header's
    /// start.
    fn next_after(wal_file: &WalFile) -> u64 {
        let floor = wal_file.compaction.as_ref().map_or(0, |c| c.floor_seq);
        wal_file
            .events
            .last()
            .map_or(0, WalEvent::seq)
            .max(floor)
            .max(wal_file.header.first_seq - 1)
            + 1
    }

    /// The sequence number the next appended event must carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one event (buffered; call [`Wal::sync`] for durability).
    ///
    /// # Panics
    ///
    /// Panics if the event's sequence number is not the next in line —
    /// the caller constructs events from [`Wal::next_seq`], so a gap is
    /// a logic error, never data.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O failure.
    pub fn append(&mut self, event: &WalEvent) -> std::io::Result<()> {
        assert_eq!(
            event.seq(),
            self.next_seq,
            "WAL events must be appended in sequence"
        );
        let obs = crate::obs::global();
        let t0 = obs.sampled_start("wal.append");
        writeln!(self.writer, "{}", event.encode())?;
        if let Some(t0) = t0 {
            obs.record("wal.append", obs.now_ns().saturating_sub(t0));
        }
        self.next_seq += 1;
        Ok(())
    }

    /// Flushes buffered events and syncs file data to stable storage —
    /// the durability point `flush` requests commit to. The first sync
    /// of a log opened for append also syncs the parent directory, in
    /// case the creating process never reached its own directory sync.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O failure.
    pub fn sync(&mut self) -> std::io::Result<()> {
        // Always-on: fsync dominates its own measurement cost, and the
        // sync-latency distribution is the whole point of group commit.
        let _span = crate::obs::global().span("wal.sync");
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        if !self.dir_synced {
            fsutil::sync_parent_dir_with(&self.path, self.writer.get_ref().faults())?;
            self.dir_synced = true;
        }
        Ok(())
    }
}

/// What [`compact_wal`] did, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Events in the input log (after its own compaction section).
    pub events_in: usize,
    /// Events retained in the output log.
    pub events_out: usize,
    /// Events newly absorbed into state records by this pass.
    pub absorbed: u64,
    /// State records in the output's compaction section.
    pub groups: usize,
    /// The output's absorption floor (0 when nothing was absorbable).
    pub floor_seq: u64,
}

/// Compacts a WAL: every event of a group that a later `r` event of the
/// same group supersedes is absorbed into one `s` state record, computed
/// by simulating exactly that group's event subsequence (valid because a
/// group's state is a pure function of its own events under per-group
/// RNG streams). Retained events keep their sequence numbers; replaying
/// the compacted log is byte-identical to replaying the original. The
/// output is written atomically and durably, so `output` may equal
/// `input` for in-place rotation. An already-compacted input composes:
/// its state records seed the simulation.
///
/// # Errors
///
/// Returns an error on I/O failure, a malformed input log, or a
/// republish event referencing a group with no prior state.
pub fn compact_wal(input: &Path, output: &Path) -> Result<CompactionStats, StreamError> {
    let wal_file = read_wal(input)?;
    let header = &wal_file.header;
    let m = header.schema.attribute(header.sa).domain_size();
    let mut sim = IncrementalPublisher::new(header.p, m, header.params);
    let mut rngs: HashMap<Vec<u32>, u64> = HashMap::new();
    let (mut floor, mut absorbed_i, mut absorbed_r) =
        wal_file.compaction.as_ref().map_or((0, 0, 0), |c| {
            (c.floor_seq, c.absorbed_inserts, c.absorbed_republishes)
        });
    if let Some(prior) = &wal_file.compaction {
        for g in &prior.groups {
            sim.put_group(LiveGroup {
                key: g.key.clone(),
                raw_hist: g.raw_hist.clone(),
                published_hist: g.published_hist.clone(),
                status: g.status,
                republished_len: g.republished_len,
            });
            rngs.insert(g.key.clone(), g.rng_state);
        }
    }
    // The group key of an event (SA position removed for inserts).
    let key_of = |event: &WalEvent| -> Vec<u32> {
        match event {
            WalEvent::Insert { codes, .. } => codes
                .iter()
                .enumerate()
                .filter(|&(a, _)| a != header.sa)
                .map(|(_, &c)| c)
                .collect(),
            WalEvent::Republish { key, .. } => key.clone(),
        }
    };
    // Per group, the sequence number of its last re-publication: every
    // event of the group at or before it is absorbable.
    let mut last_republish: HashMap<Vec<u32>, u64> = HashMap::new();
    for event in &wal_file.events {
        if let WalEvent::Republish { seq, key } = event {
            last_republish.insert(key.clone(), *seq);
        }
    }
    let mut retained = Vec::new();
    let mut absorbed_now = 0u64;
    for event in &wal_file.events {
        let key = key_of(event);
        let absorb = last_republish.get(&key).is_some_and(|&q| event.seq() <= q);
        if !absorb {
            retained.push(event.clone());
            continue;
        }
        let mut rng = match rngs.get(&key) {
            Some(&state) => GroupRng::from_state(state),
            None => GroupRng::for_group(header.seed, &key),
        };
        match event {
            WalEvent::Insert { codes, .. } => {
                // The status is deliberately dropped: whether the group
                // needed re-sampling at this point is recorded by the
                // *next* `r` event in the log, not re-decided here.
                let _ = sim.insert(&mut rng, &key, codes[header.sa]);
                absorbed_i += 1;
            }
            WalEvent::Republish { seq, .. } => {
                if sim.group(&key).is_none() {
                    return Err(StreamError::Mismatch(format!(
                        "event {seq} re-publishes group {key:?} with no prior state \
                         (corrupted log?)"
                    )));
                }
                sim.republish_group(&mut rng, &key);
                absorbed_r += 1;
            }
        }
        rngs.insert(key, rng.state());
        floor = floor.max(event.seq());
        absorbed_now += 1;
    }
    let mut groups: Vec<CompactGroup> = sim
        .groups()
        .map(|g| CompactGroup {
            key: g.key.clone(),
            raw_hist: g.raw_hist.clone(),
            published_hist: g.published_hist.clone(),
            rng_state: *rngs.get(&g.key).expect("simulated groups carry a cursor"),
            status: g.status,
            republished_len: g.republished_len,
        })
        .collect();
    groups.sort_unstable_by(|a, b| a.key.cmp(&b.key));
    let stats = CompactionStats {
        events_in: wal_file.events.len(),
        events_out: retained.len(),
        absorbed: absorbed_now,
        groups: groups.len(),
        floor_seq: floor,
    };
    fsutil::write_atomic::<StreamError>(output, |w| {
        header.write(&mut *w).map_err(StreamError::from)?;
        if !groups.is_empty() {
            writeln!(
                w,
                "compact\t{floor}\t{absorbed_i}\t{absorbed_r}\t{}",
                groups.len()
            )
            .map_err(StreamError::from)?;
            for g in &groups {
                writeln!(w, "{}", g.encode()).map_err(StreamError::from)?;
            }
        }
        for event in &retained {
            writeln!(w, "{}", event.encode()).map_err(StreamError::from)?;
        }
        Ok(())
    })?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_table::Attribute;

    fn header() -> WalHeader {
        WalHeader {
            seed: 7,
            p: 0.5,
            params: PrivacyParams::new(0.3, 0.3),
            sa: 1,
            schema: Schema::new(vec![
                Attribute::new("Job", ["eng", "doc"]),
                Attribute::new("Disease", ["flu", "none"]),
            ]),
            base_rows: 40,
            first_seq: 1,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rp-wal-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn events_round_trip_through_the_line_codec() {
        let h = header();
        for event in [
            WalEvent::Insert {
                seq: 1,
                codes: vec![0, 1],
            },
            WalEvent::Republish {
                seq: 2,
                key: vec![1],
            },
        ] {
            let line = event.encode();
            let parsed = WalEvent::parse(&line, 1, &h).unwrap();
            assert_eq!(parsed, event, "line `{line}`");
        }
    }

    #[test]
    fn parse_rejects_malformed_events() {
        let h = header();
        for (line, needle) in [
            ("x\t1\t0\t0", "unknown event tag"),
            ("i\t1\t0", "needs 2 codes"),
            ("i\tone\t0\t0", "bad sequence"),
            ("i\t1\t0\t9", "out of range"),
            ("r\t1\t0\t0", "needs 1 codes"),
            ("i", "sequence number"),
        ] {
            let err = WalEvent::parse(line, 3, &h).unwrap_err();
            assert!(err.to_string().contains(needle), "`{line}` -> {err}");
        }
    }

    #[test]
    fn create_append_read_round_trips() {
        let path = tmp("roundtrip.rpwal");
        let _ = std::fs::remove_file(&path);
        let h = header();
        let mut wal = Wal::create(&path, &h).unwrap();
        let events = vec![
            WalEvent::Insert {
                seq: 1,
                codes: vec![0, 1],
            },
            WalEvent::Insert {
                seq: 2,
                codes: vec![1, 0],
            },
            WalEvent::Republish {
                seq: 3,
                key: vec![0],
            },
        ];
        for e in &events {
            wal.append(e).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let file = read_wal(&path).unwrap();
        assert_eq!(file.header, h);
        assert_eq!(file.events, events);
        assert!(file.compaction.is_none());
        // Reopen for append and continue the sequence.
        let (mut wal, replayed) = Wal::open_append(&path, &h).unwrap();
        assert_eq!(replayed.events, events);
        assert_eq!(wal.next_seq(), 4);
        wal.append(&WalEvent::Insert {
            seq: 4,
            codes: vec![0, 0],
        })
        .unwrap();
        wal.sync().unwrap();
        assert_eq!(read_wal(&path).unwrap().events.len(), 4);
    }

    #[test]
    fn torn_tail_is_ignored_and_truncated_on_reopen() {
        let path = tmp("torn.rpwal");
        let _ = std::fs::remove_file(&path);
        let h = header();
        let mut wal = Wal::create(&path, &h).unwrap();
        wal.append(&WalEvent::Insert {
            seq: 1,
            codes: vec![0, 1],
        })
        .unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Simulate a crash mid-append: half an event, no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "i\t2\t1").unwrap();
        }
        let events = read_wal(&path).unwrap().events;
        assert_eq!(events.len(), 1, "torn line must not replay");
        let (mut wal, replayed) = Wal::open_append(&path, &h).unwrap();
        assert_eq!(replayed.events.len(), 1);
        assert_eq!(wal.next_seq(), 2);
        wal.append(&WalEvent::Insert {
            seq: 2,
            codes: vec![1, 1],
        })
        .unwrap();
        wal.sync().unwrap();
        let events = read_wal(&path).unwrap().events;
        assert_eq!(events.len(), 2, "the torn bytes were truncated away");
    }

    #[test]
    fn sequence_gaps_and_header_mismatches_are_rejected() {
        let path = tmp("gaps.rpwal");
        let _ = std::fs::remove_file(&path);
        let h = header();
        let mut wal = Wal::create(&path, &h).unwrap();
        wal.append(&WalEvent::Insert {
            seq: 1,
            codes: vec![0, 1],
        })
        .unwrap();
        wal.sync().unwrap();
        drop(wal);
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "i\t3\t0\t0").unwrap(); // gap: 2 is missing
        }
        let err = read_wal(&path).unwrap_err();
        assert!(err.to_string().contains("sequence"), "{err}");

        let other = WalHeader {
            seed: 8,
            ..header()
        };
        let path2 = tmp("mismatch.rpwal");
        let _ = std::fs::remove_file(&path2);
        Wal::create(&path2, &h).unwrap();
        let err = Wal::open_append(&path2, &other).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
    }

    #[test]
    fn create_refuses_to_overwrite() {
        let path = tmp("exists.rpwal");
        let _ = std::fs::remove_file(&path);
        let h = header();
        Wal::create(&path, &h).unwrap();
        assert!(Wal::create(&path, &h).is_err());
    }

    /// A log where group `[0]` re-publishes at seq 3 and group `[1]`
    /// never does: events 1..3 are absorbable, 4..5 are not.
    fn compactable_log(name: &str) -> (std::path::PathBuf, WalHeader) {
        let path = tmp(name);
        let _ = std::fs::remove_file(&path);
        let h = header();
        let mut wal = Wal::create(&path, &h).unwrap();
        for event in [
            WalEvent::Insert {
                seq: 1,
                codes: vec![0, 0],
            },
            WalEvent::Insert {
                seq: 2,
                codes: vec![0, 1],
            },
            WalEvent::Republish {
                seq: 3,
                key: vec![0],
            },
            WalEvent::Insert {
                seq: 4,
                codes: vec![1, 0],
            },
            WalEvent::Insert {
                seq: 5,
                codes: vec![0, 1],
            },
        ] {
            wal.append(&event).unwrap();
        }
        wal.sync().unwrap();
        (path, h)
    }

    #[test]
    fn compaction_absorbs_superseded_events() {
        let (path, h) = compactable_log("compact-src.rpwal");
        let out = tmp("compact-out.rpwal");
        let stats = compact_wal(&path, &out).unwrap();
        assert_eq!(stats.events_in, 5);
        assert_eq!(stats.events_out, 2, "events 4 and 5 are retained");
        assert_eq!(stats.absorbed, 3);
        assert_eq!(stats.groups, 1);
        assert_eq!(stats.floor_seq, 3);
        let file = read_wal(&out).unwrap();
        let c = file.compaction.expect("compaction section");
        assert_eq!(c.floor_seq, 3);
        assert_eq!(c.absorbed_inserts, 2);
        assert_eq!(c.absorbed_republishes, 1);
        assert_eq!(c.groups.len(), 1);
        assert_eq!(c.groups[0].key, vec![0]);
        assert_eq!(c.groups[0].raw_hist.iter().sum::<u64>(), 2);
        assert_eq!(
            file.events.iter().map(WalEvent::seq).collect::<Vec<_>>(),
            vec![4, 5]
        );
        // Appending resumes past everything the log covers.
        let (wal, _) = Wal::open_append(&out, &h).unwrap();
        assert_eq!(wal.next_seq(), 6);
    }

    #[test]
    fn compacting_twice_is_idempotent() {
        let (path, _) = compactable_log("compact-twice.rpwal");
        let once = tmp("compact-once.rpwal");
        let twice = tmp("compact-twice-out.rpwal");
        compact_wal(&path, &once).unwrap();
        let stats = compact_wal(&once, &twice).unwrap();
        assert_eq!(stats.absorbed, 0, "nothing new to absorb");
        assert_eq!(
            std::fs::read(&once).unwrap(),
            std::fs::read(&twice).unwrap(),
            "a second pass is byte-identical"
        );
    }

    #[test]
    fn in_place_compaction_is_supported() {
        let (path, h) = compactable_log("compact-inplace.rpwal");
        compact_wal(&path, &path).unwrap();
        let file = read_wal(&path).unwrap();
        assert!(file.compaction.is_some());
        assert_eq!(file.events.len(), 2);
        let (wal, _) = Wal::open_append(&path, &h).unwrap();
        assert_eq!(wal.next_seq(), 6);
    }

    #[test]
    fn torn_compaction_section_errors_loudly() {
        let (path, _) = compactable_log("compact-torn-src.rpwal");
        let out = tmp("compact-torn.rpwal");
        compact_wal(&path, &out).unwrap();
        let bytes = std::fs::read(&out).unwrap();
        // Cut inside the `s` record (the line after `compact`).
        let compact_at = bytes
            .windows(8)
            .position(|w| w == b"compact\t")
            .expect("compact line");
        let s_end = compact_at
            + bytes[compact_at..]
                .iter()
                .position(|&b| b == b'\n')
                .unwrap()
            + 4;
        std::fs::write(&out, &bytes[..s_end]).unwrap();
        let err = read_wal(&out).unwrap_err();
        assert!(err.to_string().contains("truncated compaction"), "{err}");
    }

    #[test]
    fn sequence_rules_below_and_above_the_floor() {
        let h = header();
        let (src, _) = compactable_log("compact-seq-src.rpwal");
        let out = tmp("compact-seq.rpwal");
        compact_wal(&src, &out).unwrap();
        let bytes = std::fs::read(&out).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let (head, _events) = text.split_at(text.find("i\t4").unwrap());
        // Retained events below the floor may leave gaps but must stay
        // strictly increasing...
        let ok = tmp("below-floor-ok.rpwal");
        std::fs::write(&ok, format!("{head}i\t2\t1\t0\ni\t4\t1\t0\ni\t5\t0\t1\n")).unwrap();
        let file = read_wal(&ok).unwrap();
        assert_eq!(
            file.events.iter().map(WalEvent::seq).collect::<Vec<_>>(),
            vec![2, 4, 5]
        );
        // ...an out-of-order pair below the floor is rejected...
        let bad = tmp("below-floor-bad.rpwal");
        std::fs::write(&bad, format!("{head}i\t2\t1\t0\ni\t1\t1\t0\n")).unwrap();
        let err = read_wal(&bad).unwrap_err();
        assert!(err.to_string().contains("sequence"), "{err}");
        // ...and above the floor the sequence must be contiguous.
        let gap = tmp("above-floor-gap.rpwal");
        std::fs::write(&gap, format!("{head}i\t5\t1\t0\n")).unwrap();
        let err = read_wal(&gap).unwrap_err();
        assert!(err.to_string().contains("sequence"), "{err}");
        let _ = h;
    }
}
