//! The TCP transport: a [`Server`] accepting concurrent sessions over one
//! shared [`QueryService`].
//!
//! Thread-per-connection over `std::net` — no async runtime, no unsafe.
//! Every accepted connection runs the exact same session loop as the
//! stdio surface ([`crate::serve::serve`]), so the two transports cannot
//! drift apart: a request stream answers byte-identically over either.
//!
//! The listener enforces a connection cap (excess connections receive a
//! single `error code=busy` line and are closed before the `HELLO`
//! banner) and shuts down gracefully: [`ShutdownHandle::signal`] stops
//! the accept loop, then [`Server::run`] joins the in-flight sessions —
//! which end at `quit` or when their client disconnects.
//!
//! The accept loop is resilient: a failed `accept` (fd exhaustion, a
//! connection reset before accept) is logged and retried with an
//! escalating backoff — only shutdown (or the listener being torn down
//! by the OS) ends the loop. Per-connection read/write deadlines
//! ([`ServerConfig::read_timeout`] / [`ServerConfig::write_timeout`])
//! reap idle or wedged sessions so stuck clients cannot pin connection
//! slots forever.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::catalog::Catalog;
use crate::protocol::{ErrorCode, Response};
use crate::serve::{serve, serve_catalog};
use crate::service::QueryService;

/// Default connection cap of [`ServerConfig`].
pub const DEFAULT_MAX_CONNS: usize = 64;

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Maximum concurrent sessions; further connections are refused with
    /// an `error code=busy` line.
    pub max_conns: usize,
    /// Per-connection socket read deadline. A session whose client sends
    /// nothing for this long is reaped — its connection closes and the
    /// slot frees — so idle or wedged clients cannot pin the cap.
    /// `None` (the default) waits indefinitely.
    pub read_timeout: Option<Duration>,
    /// Per-connection socket write deadline: a client that stops
    /// draining its responses for this long is disconnected. `None`
    /// (the default) blocks indefinitely.
    pub write_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_conns: DEFAULT_MAX_CONNS,
            read_timeout: None,
            write_timeout: None,
        }
    }
}

/// Signals a running [`Server`] to stop accepting and drain.
///
/// Cloneable and cheap; obtained from [`Server::shutdown_handle`].
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    addr: SocketAddr,
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests shutdown: the accept loop exits at its next wakeup (a
    /// no-op connection is made so a blocked `accept` returns promptly).
    pub fn signal(&self) {
        self.flag.store(true, Ordering::Release);
        // Wake a blocked accept; failure just means the listener is gone.
        // A wildcard bind address (0.0.0.0 / ::) is not connectable on
        // every platform — dial loopback on the same port instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
    }
}

/// What a [`Server`] answers from: one shared service, or a whole
/// multi-tenant catalog (sessions then run the rp/3 routing loop,
/// [`serve_catalog`]).
#[derive(Debug, Clone)]
enum Backend {
    Single(Arc<QueryService>),
    Catalog(Arc<Catalog>),
}

/// A bound TCP query server over one shared [`QueryService`] — or, with
/// [`Server::bind_catalog`], over a multi-tenant [`Catalog`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    backend: Backend,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (use port 0 to pick a free port) over `service`.
    ///
    /// # Errors
    ///
    /// Returns the bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<QueryService>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        Self::bind_backend(addr, Backend::Single(service), config)
    }

    /// Binds `addr` over a multi-tenant catalog: every session runs the
    /// rp/3 routing loop starting on the catalog's default release.
    ///
    /// # Errors
    ///
    /// Returns the bind failure.
    pub fn bind_catalog(
        addr: impl ToSocketAddrs,
        catalog: Arc<Catalog>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        Self::bind_backend(addr, Backend::Catalog(catalog), config)
    }

    fn bind_backend(
        addr: impl ToSocketAddrs,
        backend: Backend,
        config: ServerConfig,
    ) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            backend,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Returns the socket introspection failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    ///
    /// # Errors
    ///
    /// Returns the socket introspection failure.
    pub fn shutdown_handle(&self) -> io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            addr: self.local_addr()?,
            flag: Arc::clone(&self.shutdown),
        })
    }

    /// The service this server answers from (`None` on a catalog
    /// server — see [`Server::catalog`]).
    pub fn service(&self) -> Option<&Arc<QueryService>> {
        match &self.backend {
            Backend::Single(service) => Some(service),
            Backend::Catalog(_) => None,
        }
    }

    /// The catalog this server answers from (`None` on a single-release
    /// server — see [`Server::service`]).
    pub fn catalog(&self) -> Option<&Arc<Catalog>> {
        match &self.backend {
            Backend::Single(_) => None,
            Backend::Catalog(catalog) => Some(catalog),
        }
    }

    /// Runs the accept loop until shutdown is signalled, then joins the
    /// in-flight sessions. Each connection gets its own thread running
    /// the shared session loop.
    ///
    /// # Errors
    ///
    /// Returns only listener-level failures; per-connection I/O errors
    /// end that session silently (the client went away).
    pub fn run(self) -> io::Result<()> {
        const BACKOFF_FLOOR: Duration = Duration::from_millis(10);
        const BACKOFF_CEIL: Duration = Duration::from_millis(500);
        let active = Arc::new(AtomicUsize::new(0));
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        let mut backoff = BACKOFF_FLOOR;
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match conn {
                Ok(stream) => {
                    backoff = BACKOFF_FLOOR;
                    stream
                }
                Err(e) => {
                    // A failed accept is never fatal: transient errors
                    // (ECONNABORTED, EINTR) and resource exhaustion
                    // (EMFILE) both clear with time, so log, back off
                    // with escalation, and keep serving. Only shutdown
                    // ends the loop.
                    eprintln!("rp-server: accept failed ({e}); retrying in {backoff:?}");
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(BACKOFF_CEIL);
                    continue;
                }
            };
            workers.retain(|w| !w.is_finished());
            if active.load(Ordering::Acquire) >= self.config.max_conns {
                refuse_busy(stream, self.config.max_conns);
                continue;
            }
            active.fetch_add(1, Ordering::AcqRel);
            let backend = self.backend.clone();
            let config = self.config;
            // The guard releases the slot even if the session panics; a
            // failed session just means the client disconnected mid-line.
            let slot = SlotGuard(Arc::clone(&active));
            workers.push(std::thread::spawn(move || {
                let _slot = slot;
                let _ = handle_connection(&backend, stream, &config);
            }));
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Spawns [`Server::run`] on a background thread, returning a handle
    /// for address introspection and graceful shutdown.
    ///
    /// # Errors
    ///
    /// Returns the socket introspection failure.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = self.shutdown_handle()?;
        let thread = std::thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            shutdown,
            thread,
        })
    }
}

/// A running background server: address + shutdown + join.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: ShutdownHandle,
    thread: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A clonable handle that can signal shutdown without consuming this
    /// handle.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Signals shutdown and joins the server thread.
    ///
    /// # Errors
    ///
    /// Returns the accept-loop failure, or [`io::ErrorKind::Other`] if
    /// the server thread panicked.
    pub fn shutdown(self) -> io::Result<()> {
        self.shutdown.signal();
        self.thread
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

/// Releases one connection slot on drop — unwind-safe, so a panicking
/// session can never leak its slot and wedge the cap into refusing
/// everything.
struct SlotGuard(Arc<AtomicUsize>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One session: buffered reader/writer halves over the same socket, then
/// the shared loop (plain or catalog-routed by backend). A session that
/// trips its read/write deadline is *reaped* — reported as a clean end,
/// its connection closed — rather than treated as an I/O failure.
fn handle_connection(
    backend: &Backend,
    stream: TcpStream,
    config: &ServerConfig,
) -> io::Result<()> {
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_write_timeout(config.write_timeout)?;
    let reader = BufReader::new(stream.try_clone()?);
    let writer = BufWriter::new(stream);
    let result = match backend {
        Backend::Single(service) => serve(service, reader, writer),
        Backend::Catalog(catalog) => serve_catalog(catalog, reader, writer),
    };
    match result {
        // Platform-dependent: a timed-out socket read reports
        // WouldBlock (Unix) or TimedOut (Windows).
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            Ok(())
        }
        other => other.map(|_| ()),
    }
}

/// Answers one `busy` error line and closes (no `HELLO`, no session).
fn refuse_busy(stream: TcpStream, cap: usize) {
    crate::obs::global().inc("server.busy_refused");
    let response = Response::Error {
        code: ErrorCode::Busy,
        message: format!("server at its {cap}-connection cap; retry later"),
    };
    let mut writer = BufWriter::new(stream);
    let _ = writeln!(writer, "{}", response.encode());
    let _ = writer.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publisher::Publisher;
    use crate::service::ServiceConfig;
    use rp_table::{Attribute, Schema, TableBuilder};
    use std::io::BufRead;

    fn fixture_service() -> Arc<QueryService> {
        let schema = Schema::new(vec![
            Attribute::new("Job", ["eng", "doc"]),
            Attribute::new("Disease", ["flu", "none"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..400u32 {
            b.push_codes(&[i % 2, (i / 2) % 2]).unwrap();
        }
        let publication = Publisher::new(b.build()).sa(1).seed(3).publish().unwrap();
        Arc::new(QueryService::from_publication(
            &publication,
            ServiceConfig::default(),
        ))
    }

    fn start(max_conns: usize) -> (ServerHandle, Arc<QueryService>) {
        start_with(ServerConfig {
            max_conns,
            ..ServerConfig::default()
        })
    }

    fn start_with(config: ServerConfig) -> (ServerHandle, Arc<QueryService>) {
        let service = fixture_service();
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service), config).unwrap();
        (server.spawn().unwrap(), service)
    }

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Self {
            let stream = TcpStream::connect(addr).unwrap();
            Self {
                reader: BufReader::new(stream.try_clone().unwrap()),
                writer: stream,
            }
        }

        fn read_line(&mut self) -> String {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        }

        fn send(&mut self, line: &str) {
            writeln!(self.writer, "{line}").unwrap();
            self.writer.flush().unwrap();
        }
    }

    #[test]
    fn tcp_session_speaks_the_protocol() {
        let (handle, service) = start(4);
        let mut client = Client::connect(handle.addr());
        let banner = client.read_line();
        assert!(
            matches!(
                Response::parse(&banner).unwrap(),
                Response::Hello {
                    version: crate::protocol::PROTOCOL_VERSION,
                    ..
                }
            ),
            "{banner}"
        );
        client.send("count Job=eng Disease=flu");
        let answer = client.read_line();
        assert!(answer.starts_with("est="), "{answer}");
        client.send("quit");
        assert_eq!(client.read_line(), "bye");
        handle.shutdown().unwrap();
        assert_eq!(service.stats().sessions, 1);
        assert_eq!(service.stats().answered, 2);
    }

    #[test]
    fn connection_cap_refuses_with_busy() {
        let (handle, _service) = start(1);
        let mut first = Client::connect(handle.addr());
        let _banner = first.read_line(); // session is live; the slot is taken
        let mut second = Client::connect(handle.addr());
        let refusal = second.read_line();
        let parsed = Response::parse(&refusal).unwrap();
        assert!(
            matches!(
                parsed,
                Response::Error {
                    code: ErrorCode::Busy,
                    ..
                }
            ),
            "{refusal}"
        );
        first.send("quit");
        assert_eq!(first.read_line(), "bye");
        handle.shutdown().unwrap();
    }

    #[test]
    fn idle_sessions_are_reaped_and_free_their_slot() {
        let (handle, _service) = start_with(ServerConfig {
            max_conns: 1,
            read_timeout: Some(Duration::from_millis(50)),
            ..ServerConfig::default()
        });
        let mut idle = Client::connect(handle.addr());
        let _banner = idle.read_line();
        // Send nothing: the read deadline passes and the server reaps
        // the session — observable as EOF on our side.
        let mut eof = String::new();
        let n = idle.reader.read_line(&mut eof).unwrap();
        assert_eq!(n, 0, "server closed the idle connection, got `{eof}`");
        // The freed slot admits a fresh session on a max_conns=1 server
        // (retrying over the tiny window between socket close and slot
        // release).
        let admitted = (0..50).any(|_| {
            let mut next = Client::connect(handle.addr());
            let line = next.read_line();
            if line.starts_with("HELLO") {
                next.send("quit");
                assert_eq!(next.read_line(), "bye");
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
            false
        });
        assert!(admitted, "reaped slot never freed");
        handle.shutdown().unwrap();
    }

    #[test]
    fn shutdown_is_graceful_and_sessions_drain() {
        let (handle, service) = start(4);
        let mut client = Client::connect(handle.addr());
        let _banner = client.read_line();
        // Signal shutdown while the session is still open: the accept
        // loop stops, but the live session keeps answering until quit.
        let signal = handle.shutdown_handle();
        signal.signal();
        client.send("ping");
        assert_eq!(client.read_line(), "pong");
        client.send("quit");
        assert_eq!(client.read_line(), "bye");
        handle.shutdown().unwrap();
        assert_eq!(service.stats().answered, 2);
    }
}
