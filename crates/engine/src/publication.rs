//! The [`Publication`] artifact: a published table bundled with everything
//! needed to answer queries on it correctly.
//!
//! The paper's workflow is *publish once, answer many count queries*
//! (Section 6: `est = |S*| · F′`). Answering requires more than the
//! perturbed records: the estimator needs the retention probability `p` and
//! the SA domain, reproducing a release needs the seed, and auditing needs
//! the `(λ, δ)` requirement the release was checked against. A
//! `Publication` carries all of it as one typed value, (de)serializable to
//! a simple line-oriented on-disk format so the publish and query sides of
//! a deployment stop re-deriving parameters out-of-band.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

use rp_core::groups::SaSpec;
use rp_core::incremental::GroupStatus;
use rp_core::privacy::PrivacyParams;
use rp_core::sps::SpsStats;
use rp_table::{AttrId, Schema, Table, TableBuilder};

use crate::codec::{canon_f64, read_schema, write_schema, Lines};

/// Summary of the Equation-10 design check the publisher ran before SPS:
/// how the *uniform-perturbation* design stood against `(λ, δ)` on the
/// input table (SPS then enforced the criterion on whatever violated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DesignCheck {
    /// Personal groups in the input table.
    pub total_groups: usize,
    /// Groups whose size exceeded their threshold `sg`.
    pub violating_groups: usize,
    /// Records in the input table.
    pub total_records: u64,
    /// Records belonging to violating groups.
    pub violating_records: u64,
}

impl DesignCheck {
    /// Fraction of groups violating (`vg` of Section 6.2).
    pub fn vg(&self) -> f64 {
        if self.total_groups == 0 {
            0.0
        } else {
            self.violating_groups as f64 / self.total_groups as f64
        }
    }

    /// Fraction of records at risk (`vr` of Section 6.2).
    pub fn vr(&self) -> f64 {
        if self.total_records == 0 {
            0.0
        } else {
            self.violating_records as f64 / self.total_records as f64
        }
    }

    /// Whether plain uniform perturbation already satisfied the criterion
    /// (in which case SPS degenerated to UP).
    pub fn is_private(&self) -> bool {
        self.violating_groups == 0
    }
}

/// Snapshot of one live personal group inside a streaming (v2)
/// publication: everything [`crate::stream::StreamPublisher`] needs to
/// resume the group exactly where the live run left it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveGroupSnapshot {
    /// Public-attribute codes (schema order, SA excluded).
    pub key: Vec<u32>,
    /// Raw SA histogram (owner-side secret state).
    pub raw_hist: Vec<u64>,
    /// Published (perturbed) SA histogram.
    pub published_hist: Vec<u64>,
    /// The group's RNG cursor: the full state of its counter-based
    /// per-group generator (see `crate::stream::rng`).
    pub rng_state: u64,
    /// Compliance status at snapshot time.
    pub status: GroupStatus,
    /// Raw records covered by the group's last SPS re-publication.
    pub republished_len: u64,
}

/// The live extension of a v2 publication: the owner-side state of a
/// streaming run, serialized alongside the batch fields so live and
/// batch releases share one artifact format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveState {
    /// Rows of [`Publication::table`] that belong to the immutable batch
    /// base; the remaining rows are materialized from the live groups.
    pub base_rows: usize,
    /// Sequence number of the last WAL event this snapshot covers;
    /// restore replays only events after it.
    pub wal_seq: u64,
    /// Records inserted into the stream so far.
    pub inserted: u64,
    /// Re-publication events so far.
    pub republished: u64,
    /// Every live group, sorted by key (the canonical order).
    pub groups: Vec<LiveGroupSnapshot>,
}

/// A reconstruction-private release: the published table `D*₂` plus the
/// metadata required to audit it and to answer count queries from it.
///
/// Build one with [`crate::Publisher`], persist it with
/// [`Publication::save`], and answer from it with [`crate::QueryEngine`].
/// A release produced by the streaming path additionally carries a
/// [`LiveState`] extension (the v2 on-disk format) from which
/// [`crate::stream::StreamPublisher`] resumes; batch consumers can ignore
/// it — the [`Publication::table`] already includes the rows
/// materialized from the live groups.
#[derive(Debug, Clone, PartialEq)]
pub struct Publication {
    table: Table,
    sa: AttrId,
    p: f64,
    params: PrivacyParams,
    seed: u64,
    stats: SpsStats,
    check: DesignCheck,
    live: Option<LiveState>,
}

impl Publication {
    /// Assembles a publication from its parts. Intended for
    /// [`crate::Publisher`] and deserialization; answering code should not
    /// need it.
    ///
    /// # Panics
    ///
    /// Panics if `sa` is out of range for the table's schema.
    pub fn from_parts(
        table: Table,
        sa: AttrId,
        p: f64,
        params: PrivacyParams,
        seed: u64,
        stats: SpsStats,
        check: DesignCheck,
    ) -> Self {
        assert!(
            sa < table.schema().arity(),
            "SA attribute {sa} out of range for arity {}",
            table.schema().arity()
        );
        Self {
            table,
            sa,
            p,
            params,
            seed,
            stats,
            check,
            live: None,
        }
    }

    /// Attaches a live-state extension (turning the artifact into the v2
    /// format on save). Intended for [`crate::stream::StreamPublisher`].
    ///
    /// # Panics
    ///
    /// Panics if `live.base_rows` exceeds the table's row count or the
    /// live published histograms do not sum to the non-base rows.
    pub fn with_live(mut self, live: LiveState) -> Self {
        assert!(
            live.base_rows <= self.table.rows(),
            "base_rows {} exceeds table rows {}",
            live.base_rows,
            self.table.rows()
        );
        let live_rows: u64 = live
            .groups
            .iter()
            .map(|g| g.published_hist.iter().sum::<u64>())
            .sum();
        assert_eq!(
            live_rows,
            (self.table.rows() - live.base_rows) as u64,
            "live published histograms must account for every non-base row"
        );
        self.live = Some(live);
        self
    }

    /// The live-state extension of a streaming (v2) release, if any.
    pub fn live(&self) -> Option<&LiveState> {
        self.live.as_ref()
    }

    /// The published table `D*₂`.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The published schema (generalized public attributes + SA).
    pub fn schema(&self) -> &Schema {
        self.table.schema()
    }

    /// The sensitive attribute index.
    pub fn sa(&self) -> AttrId {
        self.sa
    }

    /// The sensitive attribute's name.
    pub fn sa_name(&self) -> &str {
        self.schema().attribute(self.sa).name()
    }

    /// The retention probability `p` the release was perturbed with.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The `(λ, δ)` requirement the release enforces.
    pub fn params(&self) -> PrivacyParams {
        self.params
    }

    /// The RNG seed the release was produced from (the whole pipeline is a
    /// pure function of it — see `tests/determinism.rs`).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Counters of the SPS run that produced the release.
    pub fn stats(&self) -> SpsStats {
        self.stats
    }

    /// The pre-publication Equation-10 design check.
    pub fn check(&self) -> DesignCheck {
        self.check
    }

    /// The SA/NA split of the published schema.
    pub fn spec(&self) -> SaSpec {
        SaSpec::new(&self.table, self.sa)
    }

    /// Serializes the publication to its on-disk format: v1 for batch
    /// releases, v2 when a [`LiveState`] extension is attached.
    ///
    /// The format is line-oriented and tab-separated: a magic line, one
    /// `key\t...` metadata line per field, one `attr` line per schema
    /// attribute (name followed by its domain values), then the records as
    /// rows of dictionary codes; a v2 artifact appends a `live` header and
    /// one `lgroup` line per live group. Identical publications serialize
    /// to identical bytes, so `save ∘ load` is the identity on files.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or if an attribute name or domain
    /// value contains a tab or newline (unrepresentable in the format).
    pub fn save<W: Write>(&self, mut w: W) -> Result<(), PublicationError> {
        let schema = self.table.schema();
        let magic = if self.live.is_some() {
            MAGIC_V2
        } else {
            MAGIC_V1
        };
        writeln!(w, "{magic}")?;
        writeln!(w, "sa\t{}", self.sa)?;
        writeln!(w, "p\t{}", canon_f64(self.p))?;
        writeln!(w, "lambda\t{}", canon_f64(self.params.lambda()))?;
        writeln!(w, "delta\t{}", canon_f64(self.params.delta()))?;
        writeln!(w, "seed\t{}", self.seed)?;
        writeln!(
            w,
            "stats\t{}\t{}\t{}\t{}\t{}",
            self.stats.groups,
            self.stats.groups_sampled,
            self.stats.input_records,
            self.stats.sampled_records,
            self.stats.output_records
        )?;
        writeln!(
            w,
            "check\t{}\t{}\t{}\t{}",
            self.check.total_groups,
            self.check.violating_groups,
            self.check.total_records,
            self.check.violating_records
        )?;
        write_schema(&mut w, schema)?;
        writeln!(w, "rows\t{}", self.table.rows())?;
        let arity = schema.arity();
        for r in 0..self.table.rows() {
            for a in 0..arity {
                if a == 0 {
                    write!(w, "{}", self.table.code(r, a))?;
                } else {
                    write!(w, "\t{}", self.table.code(r, a))?;
                }
            }
            writeln!(w)?;
        }
        if let Some(live) = &self.live {
            writeln!(
                w,
                "live\t{}\t{}\t{}\t{}\t{}",
                live.groups.len(),
                live.base_rows,
                live.wal_seq,
                live.inserted,
                live.republished
            )?;
            for g in &live.groups {
                write!(w, "lgroup")?;
                for &code in &g.key {
                    write!(w, "\t{code}")?;
                }
                for &c in &g.raw_hist {
                    write!(w, "\t{c}")?;
                }
                for &c in &g.published_hist {
                    write!(w, "\t{c}")?;
                }
                let status = match g.status {
                    GroupStatus::Compliant => 'c',
                    GroupStatus::NeedsResampling => 'f',
                };
                writeln!(w, "\t{}\t{}\t{}", g.rng_state, status, g.republished_len)?;
            }
        }
        Ok(())
    }

    /// Saves to a file path, atomically and durably: the artifact is
    /// written to a temp sibling, fsynced, renamed over `path`, and the
    /// parent directory synced — a crash mid-save leaves the previous
    /// artifact intact, never a torn or clobbered file.
    ///
    /// # Errors
    ///
    /// As [`Publication::save`], plus file-creation errors.
    pub fn save_to_path(&self, path: impl AsRef<Path>) -> Result<(), PublicationError> {
        crate::fsutil::write_atomic(path.as_ref(), |w| self.save(w))
    }

    /// Deserializes a publication from the on-disk format (v1 or v2 —
    /// the two magics; v1 artifacts keep loading unchanged).
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or any structural problem (bad
    /// magic, missing fields, malformed numbers, out-of-domain codes, an
    /// inconsistent live section).
    pub fn load<R: BufRead>(r: R) -> Result<Self, PublicationError> {
        let mut lines = Lines::new(r);
        let version = {
            let magic = lines.next_line()?;
            match magic {
                m if m == MAGIC_V1 => 1,
                m if m == MAGIC_V2 => 2,
                other => {
                    let message =
                        format!("expected magic `{MAGIC_V1}` or `{MAGIC_V2}`, got `{other}`");
                    return Err(PublicationError::Format { line: 1, message });
                }
            }
        };
        let sa: AttrId = lines.field("sa")?.parse_one()?;
        let sa_line = lines.line_no;
        let p: f64 = lines.field("p")?.parse_one()?;
        if !(p > 0.0 && p < 1.0) {
            return Err(lines.err(format!("retention p must lie in (0, 1), got {p}")));
        }
        let lambda: f64 = lines.field("lambda")?.parse_one()?;
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(lines.err(format!("lambda must be positive and finite, got {lambda}")));
        }
        let delta: f64 = lines.field("delta")?.parse_one()?;
        if !(delta > 0.0 && delta <= 1.0) {
            return Err(lines.err(format!("delta must lie in (0, 1], got {delta}")));
        }
        let seed: u64 = lines.field("seed")?.parse_one()?;
        let stats_fields = lines.field("stats")?;
        let stats = SpsStats {
            groups: stats_fields.parse_at(0)?,
            groups_sampled: stats_fields.parse_at(1)?,
            input_records: stats_fields.parse_at(2)?,
            sampled_records: stats_fields.parse_at(3)?,
            output_records: stats_fields.parse_at(4)?,
        };
        let check_fields = lines.field("check")?;
        let check = DesignCheck {
            total_groups: check_fields.parse_at(0)?,
            violating_groups: check_fields.parse_at(1)?,
            total_records: check_fields.parse_at(2)?,
            violating_records: check_fields.parse_at(3)?,
        };
        let attributes = read_schema(&mut lines)?;
        let arity = attributes.len();
        if sa >= arity {
            return Err(PublicationError::Format {
                line: sa_line,
                message: format!("sa index {sa} out of range for arity {arity}"),
            });
        }
        // Mirror the publish-time shape invariants: the answering side
        // assumes at least one public attribute and a non-trivial SA
        // domain (`PerturbationMatrix` asserts m >= 2 at query time).
        if arity < 2 {
            return Err(lines.err(format!(
                "publication needs at least one public attribute besides SA, got arity {arity}"
            )));
        }
        let m = attributes[sa].domain_size();
        if m < 2 {
            return Err(lines.err(format!("SA domain must have at least 2 values, got {m}")));
        }
        let params = PrivacyParams::new(lambda, delta);
        let schema = Schema::new(attributes);
        let rows: usize = lines.field("rows")?.parse_one()?;
        // The row count is untrusted input: cap the pre-allocation so a
        // corrupt header cannot force a huge reservation before any record
        // is parsed (the builder grows past the cap as real rows arrive).
        // Schema clones are Arc-backed, so keeping one for the live
        // section's key validation is free.
        let mut builder = TableBuilder::with_capacity(schema.clone(), rows.min(1 << 20));
        let mut codes = Vec::with_capacity(arity.min(1 << 10));
        for _ in 0..rows {
            let line_no = lines.line_no + 1;
            let bad = {
                let line = lines.next_line()?;
                codes.clear();
                let mut bad = None;
                for part in line.split('\t') {
                    match part.parse::<u32>() {
                        Ok(c) => codes.push(c),
                        Err(e) => {
                            bad = Some(format!("bad code `{part}`: {e}"));
                            break;
                        }
                    }
                }
                bad
            };
            if let Some(message) = bad {
                return Err(PublicationError::Format {
                    line: line_no,
                    message,
                });
            }
            builder
                .push_codes(&codes)
                .map_err(|e| PublicationError::Format {
                    line: line_no,
                    message: e.to_string(),
                })?;
        }
        let live = if version >= 2 {
            Some(read_live(&mut lines, &schema, sa, rows, m)?)
        } else {
            None
        };
        // A rows header that undercounts the actual content would otherwise
        // load as a silently truncated release.
        lines.expect_eof()?;
        Ok(Self {
            table: builder.build(),
            sa,
            p,
            params,
            seed,
            stats,
            check,
            live,
        })
    }

    /// Loads from a file path (buffered).
    ///
    /// # Errors
    ///
    /// As [`Publication::load`], plus file-open errors.
    pub fn load_from_path(path: impl AsRef<Path>) -> Result<Self, PublicationError> {
        let file = File::open(path)?;
        Self::load(BufReader::new(file))
    }
}

const MAGIC_V1: &str = "rp-publication v1";
const MAGIC_V2: &str = "rp-publication v2";

/// Parses the live section of a v2 artifact, validating it against the
/// already-parsed batch part (key domains, histogram arity `m`, and that
/// the live published histograms account exactly for the non-base rows).
fn read_live<R: BufRead>(
    lines: &mut Lines<R>,
    schema: &Schema,
    sa: AttrId,
    rows: usize,
    m: usize,
) -> Result<LiveState, PublicationError> {
    let header = lines.field("live")?;
    let count: usize = header.parse_at(0)?;
    let base_rows: usize = header.parse_at(1)?;
    let wal_seq: u64 = header.parse_at(2)?;
    let inserted: u64 = header.parse_at(3)?;
    let republished: u64 = header.parse_at(4)?;
    if base_rows > rows {
        return Err(lines.err(format!(
            "live base_rows {base_rows} exceeds row count {rows}"
        )));
    }
    let na_attrs: Vec<AttrId> = (0..schema.arity()).filter(|&a| a != sa).collect();
    let width = na_attrs.len() + 2 * m + 3;
    // Like the row count, the group count is untrusted: cap the
    // pre-allocation; real groups past the cap still load.
    let mut groups: Vec<LiveGroupSnapshot> = Vec::with_capacity(count.min(1 << 16));
    let mut live_rows = 0u64;
    for _ in 0..count {
        let f = lines.field("lgroup")?;
        if f.values.len() != width {
            return Err(f.error(format!(
                "lgroup line needs {width} fields, got {}",
                f.values.len()
            )));
        }
        let mut key = Vec::with_capacity(na_attrs.len());
        for (i, &attr) in na_attrs.iter().enumerate() {
            let code: u32 = f.parse_at(i)?;
            let domain = schema.attribute(attr).domain_size();
            if code as usize >= domain {
                return Err(f.error(format!(
                    "key code {code} out of range for attribute `{}` (domain {domain})",
                    schema.attribute(attr).name()
                )));
            }
            key.push(code);
        }
        let base = na_attrs.len();
        let mut raw_hist = Vec::with_capacity(m);
        let mut published_hist = Vec::with_capacity(m);
        for i in 0..m {
            raw_hist.push(f.parse_at(base + i)?);
        }
        for i in 0..m {
            published_hist.push(f.parse_at(base + m + i)?);
        }
        let rng_state: u64 = f.parse_at(base + 2 * m)?;
        let status = match f.values[base + 2 * m + 1] {
            "c" => GroupStatus::Compliant,
            "f" => GroupStatus::NeedsResampling,
            other => return Err(f.error(format!("bad status `{other}` (want `c` or `f`)"))),
        };
        let republished_len: u64 = f.parse_at(base + 2 * m + 2)?;
        if let Some(prev) = groups.last() {
            if prev.key >= key {
                return Err(f.error("lgroup keys must be strictly increasing"));
            }
        }
        live_rows += published_hist.iter().sum::<u64>();
        groups.push(LiveGroupSnapshot {
            key,
            raw_hist,
            published_hist,
            rng_state,
            status,
            republished_len,
        });
    }
    if live_rows != (rows - base_rows) as u64 {
        return Err(lines.err(format!(
            "live published histograms sum to {live_rows} but the artifact has {} non-base rows",
            rows - base_rows
        )));
    }
    Ok(LiveState {
        base_rows,
        wal_seq,
        inserted,
        republished,
        groups,
    })
}

/// Errors raised by publication (de)serialization.
#[derive(Debug)]
pub enum PublicationError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the input at a 1-based line number.
    Format {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An attribute name or value contains a tab or newline and cannot be
    /// written in the line-oriented format.
    Unrepresentable(String),
}

impl fmt::Display for PublicationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PublicationError::Io(e) => write!(f, "I/O error: {e}"),
            PublicationError::Format { line, message } => {
                write!(f, "line {line}: {message}")
            }
            PublicationError::Unrepresentable(s) => {
                write!(f, "value `{}` contains tab/newline", s.escape_debug())
            }
        }
    }
}

impl std::error::Error for PublicationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PublicationError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PublicationError {
    fn from(e: io::Error) -> Self {
        PublicationError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_table::Attribute;

    fn demo_publication() -> Publication {
        let schema = Schema::new(vec![
            Attribute::new("Gender", ["male", "female"]),
            Attribute::new("Disease", ["flu", "hiv", "none"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..50u32 {
            b.push_codes(&[i % 2, i % 3]).unwrap();
        }
        Publication::from_parts(
            b.build(),
            1,
            0.5,
            PrivacyParams::new(0.3, 0.3),
            42,
            SpsStats {
                groups: 2,
                groups_sampled: 1,
                input_records: 50,
                sampled_records: 20,
                output_records: 50,
            },
            DesignCheck {
                total_groups: 2,
                violating_groups: 1,
                total_records: 50,
                violating_records: 30,
            },
        )
    }

    #[test]
    fn save_load_round_trips_value() {
        let p = demo_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        let p2 = Publication::load(&bytes[..]).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        let p = demo_publication();
        let mut first = Vec::new();
        p.save(&mut first).unwrap();
        let p2 = Publication::load(&first[..]).unwrap();
        let mut second = Vec::new();
        p2.save(&mut second).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn load_rejects_bad_magic() {
        let err = Publication::load(&b"not a publication\n"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn load_rejects_truncation() {
        let p = demo_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        let cut = bytes.len() - 10;
        let err = Publication::load(&bytes[..cut]).unwrap_err();
        assert!(err.to_string().contains("end of input") || err.to_string().contains("bad"));
    }

    #[test]
    fn load_rejects_invalid_privacy_params_without_panicking() {
        let p = demo_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        for (needle, replacement, expect) in [
            ("lambda\t0.3\n", "lambda\t0\n", "lambda"),
            ("delta\t0.3\n", "delta\t2\n", "delta"),
        ] {
            let broken = text.replace(needle, replacement);
            assert_ne!(text, broken, "fixture must contain `{needle}`");
            let err = Publication::load(broken.as_bytes()).unwrap_err();
            assert!(err.to_string().contains(expect), "{err}");
        }
    }

    #[test]
    fn load_caps_preallocation_from_untrusted_arity() {
        let p = demo_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        // A huge claimed arity must fail cleanly (truncation), not panic
        // with a capacity overflow while pre-allocating.
        let broken = text.replace("attrs\t2\n", "attrs\t99999999999999999\n");
        assert_ne!(text, broken);
        let err = Publication::load(broken.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected `attr` line"), "{err}");
    }

    #[test]
    fn load_rejects_degenerate_shapes() {
        let p = demo_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        // SA domain collapsed to one value: must fail at load, not panic
        // at answer time.
        let broken = text.replace("attr\tDisease\tflu\thiv\tnone\n", "attr\tDisease\tflu\n");
        assert_ne!(text, broken);
        let err = Publication::load(broken.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("at least 2 values"), "{err}");
    }

    #[test]
    fn load_rejects_trailing_content() {
        let p = demo_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        // An undercounting rows header must not load as a truncated release.
        let text = String::from_utf8(bytes).unwrap();
        let broken = text.replace("rows\t50\n", "rows\t49\n");
        assert_ne!(text, broken);
        let err = Publication::load(broken.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing content"), "{err}");
    }

    #[test]
    fn load_caps_preallocation_from_untrusted_row_count() {
        let p = demo_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        // A huge claimed row count with no rows behind it must fail with a
        // clean truncation error, not an allocation abort.
        let broken = text.replace("rows\t50\n", &format!("rows\t{}\n", u64::MAX));
        assert_ne!(text, broken);
        let err = Publication::load(broken.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("end of input"), "{err}");
    }

    #[test]
    fn load_rejects_out_of_domain_code() {
        let p = demo_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let broken = text.replace("\n0\t0\n", "\n0\t9\n");
        assert_ne!(text, broken, "fixture must contain the row");
        let err = Publication::load(broken.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn unrepresentable_values_refused_at_save() {
        let schema = Schema::new(vec![
            Attribute::new("A", ["x\ty"]),
            Attribute::new("B", ["u", "v"]),
        ]);
        let t = TableBuilder::new(schema).build();
        let p = Publication::from_parts(
            t,
            1,
            0.5,
            PrivacyParams::new(0.3, 0.3),
            0,
            SpsStats::default(),
            DesignCheck::default(),
        );
        let mut bytes = Vec::new();
        assert!(matches!(
            p.save(&mut bytes),
            Err(PublicationError::Unrepresentable(_))
        ));
    }

    /// A v2 publication: the 50 base rows plus two live groups
    /// materialized as 5 extra rows.
    fn demo_v2_publication() -> Publication {
        let schema = Schema::new(vec![
            Attribute::new("Gender", ["male", "female"]),
            Attribute::new("Disease", ["flu", "hiv", "none"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..50u32 {
            b.push_codes(&[i % 2, i % 3]).unwrap();
        }
        // Materialized live rows, sorted by (key, sa).
        for codes in [[0, 0], [0, 0], [0, 2], [1, 1], [1, 1]] {
            b.push_codes(&codes).unwrap();
        }
        let live = LiveState {
            base_rows: 50,
            wal_seq: 7,
            inserted: 5,
            republished: 1,
            groups: vec![
                LiveGroupSnapshot {
                    key: vec![0],
                    raw_hist: vec![1, 1, 1],
                    published_hist: vec![2, 0, 1],
                    rng_state: 0xDEAD_BEEF,
                    status: GroupStatus::Compliant,
                    republished_len: 3,
                },
                LiveGroupSnapshot {
                    key: vec![1],
                    raw_hist: vec![0, 2, 0],
                    published_hist: vec![0, 2, 0],
                    rng_state: 42,
                    status: GroupStatus::NeedsResampling,
                    republished_len: 0,
                },
            ],
        };
        Publication::from_parts(
            b.build(),
            1,
            0.5,
            PrivacyParams::new(0.3, 0.3),
            42,
            SpsStats::default(),
            DesignCheck::default(),
        )
        .with_live(live)
    }

    #[test]
    fn v2_save_load_round_trips_value_and_bytes() {
        let p = demo_v2_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(text.starts_with("rp-publication v2\n"), "{text}");
        let p2 = Publication::load(&bytes[..]).unwrap();
        assert_eq!(p, p2);
        assert_eq!(p2.live().unwrap().groups.len(), 2);
        let mut second = Vec::new();
        p2.save(&mut second).unwrap();
        assert_eq!(bytes, second, "v2 save ∘ load must be byte-identical");
    }

    #[test]
    fn v1_artifacts_still_load_without_live_state() {
        let p = demo_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        assert!(bytes.starts_with(b"rp-publication v1\n"));
        let p2 = Publication::load(&bytes[..]).unwrap();
        assert!(p2.live().is_none());
        assert_eq!(p, p2);
    }

    #[test]
    fn v2_rejects_inconsistent_live_sections() {
        let p = demo_v2_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        for (needle, replacement, expect) in [
            // Published sums no longer match the non-base rows.
            ("\t2\t0\t1\t3735928559", "\t9\t0\t1\t3735928559", "sum to"),
            // Unknown status token.
            ("\t3735928559\tc\t3", "\t3735928559\tz\t3", "bad status"),
            // base_rows beyond the row count.
            ("live\t2\t50\t7", "live\t2\t5000\t7", "exceeds row count"),
            // Key out of the attribute domain.
            ("lgroup\t1\t0\t2\t0", "lgroup\t7\t0\t2\t0", "out of range"),
            // Truncated live section: fewer lgroup lines than declared.
            ("live\t2\t50\t7", "live\t3\t50\t7", "end of input"),
        ] {
            let broken = text.replace(needle, replacement);
            assert_ne!(text, broken, "fixture must contain `{needle}`");
            let err = Publication::load(broken.as_bytes()).unwrap_err();
            assert!(err.to_string().contains(expect), "{needle} -> {err}");
        }
        // Reordered groups violate the canonical key order.
        let g0 = text
            .lines()
            .find(|l| l.starts_with("lgroup\t0"))
            .unwrap()
            .to_string();
        let g1 = text
            .lines()
            .find(|l| l.starts_with("lgroup\t1"))
            .unwrap()
            .to_string();
        let swapped = text
            .replace(&g0, "PLACEHOLDER")
            .replace(&g1, &g0)
            .replace("PLACEHOLDER", &g1);
        let err = Publication::load(swapped.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("strictly increasing"), "{err}");
    }

    #[test]
    fn check_rates() {
        let c = DesignCheck {
            total_groups: 4,
            violating_groups: 1,
            total_records: 100,
            violating_records: 30,
        };
        assert!((c.vg() - 0.25).abs() < 1e-12);
        assert!((c.vr() - 0.3).abs() < 1e-12);
        assert!(!c.is_private());
        assert!(DesignCheck::default().is_private());
    }
}
