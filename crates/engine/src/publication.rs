//! The [`Publication`] artifact: a published table bundled with everything
//! needed to answer queries on it correctly.
//!
//! The paper's workflow is *publish once, answer many count queries*
//! (Section 6: `est = |S*| · F′`). Answering requires more than the
//! perturbed records: the estimator needs the retention probability `p` and
//! the SA domain, reproducing a release needs the seed, and auditing needs
//! the `(λ, δ)` requirement the release was checked against. A
//! `Publication` carries all of it as one typed value, (de)serializable to
//! a simple line-oriented on-disk format so the publish and query sides of
//! a deployment stop re-deriving parameters out-of-band.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use rp_core::groups::SaSpec;
use rp_core::privacy::PrivacyParams;
use rp_core::sps::SpsStats;
use rp_table::{AttrId, Attribute, Schema, Table, TableBuilder};

/// Summary of the Equation-10 design check the publisher ran before SPS:
/// how the *uniform-perturbation* design stood against `(λ, δ)` on the
/// input table (SPS then enforced the criterion on whatever violated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DesignCheck {
    /// Personal groups in the input table.
    pub total_groups: usize,
    /// Groups whose size exceeded their threshold `sg`.
    pub violating_groups: usize,
    /// Records in the input table.
    pub total_records: u64,
    /// Records belonging to violating groups.
    pub violating_records: u64,
}

impl DesignCheck {
    /// Fraction of groups violating (`vg` of Section 6.2).
    pub fn vg(&self) -> f64 {
        if self.total_groups == 0 {
            0.0
        } else {
            self.violating_groups as f64 / self.total_groups as f64
        }
    }

    /// Fraction of records at risk (`vr` of Section 6.2).
    pub fn vr(&self) -> f64 {
        if self.total_records == 0 {
            0.0
        } else {
            self.violating_records as f64 / self.total_records as f64
        }
    }

    /// Whether plain uniform perturbation already satisfied the criterion
    /// (in which case SPS degenerated to UP).
    pub fn is_private(&self) -> bool {
        self.violating_groups == 0
    }
}

/// A reconstruction-private release: the published table `D*₂` plus the
/// metadata required to audit it and to answer count queries from it.
///
/// Build one with [`crate::Publisher`], persist it with
/// [`Publication::save`], and answer from it with [`crate::QueryEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct Publication {
    table: Table,
    sa: AttrId,
    p: f64,
    params: PrivacyParams,
    seed: u64,
    stats: SpsStats,
    check: DesignCheck,
}

impl Publication {
    /// Assembles a publication from its parts. Intended for
    /// [`crate::Publisher`] and deserialization; answering code should not
    /// need it.
    ///
    /// # Panics
    ///
    /// Panics if `sa` is out of range for the table's schema.
    pub fn from_parts(
        table: Table,
        sa: AttrId,
        p: f64,
        params: PrivacyParams,
        seed: u64,
        stats: SpsStats,
        check: DesignCheck,
    ) -> Self {
        assert!(
            sa < table.schema().arity(),
            "SA attribute {sa} out of range for arity {}",
            table.schema().arity()
        );
        Self {
            table,
            sa,
            p,
            params,
            seed,
            stats,
            check,
        }
    }

    /// The published table `D*₂`.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The published schema (generalized public attributes + SA).
    pub fn schema(&self) -> &Schema {
        self.table.schema()
    }

    /// The sensitive attribute index.
    pub fn sa(&self) -> AttrId {
        self.sa
    }

    /// The sensitive attribute's name.
    pub fn sa_name(&self) -> &str {
        self.schema().attribute(self.sa).name()
    }

    /// The retention probability `p` the release was perturbed with.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The `(λ, δ)` requirement the release enforces.
    pub fn params(&self) -> PrivacyParams {
        self.params
    }

    /// The RNG seed the release was produced from (the whole pipeline is a
    /// pure function of it — see `tests/determinism.rs`).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Counters of the SPS run that produced the release.
    pub fn stats(&self) -> SpsStats {
        self.stats
    }

    /// The pre-publication Equation-10 design check.
    pub fn check(&self) -> DesignCheck {
        self.check
    }

    /// The SA/NA split of the published schema.
    pub fn spec(&self) -> SaSpec {
        SaSpec::new(&self.table, self.sa)
    }

    /// Serializes the publication to the v1 on-disk format.
    ///
    /// The format is line-oriented and tab-separated: a magic line, one
    /// `key\t...` metadata line per field, one `attr` line per schema
    /// attribute (name followed by its domain values), then the records as
    /// rows of dictionary codes. Identical publications serialize to
    /// identical bytes, so `save ∘ load` is the identity on files.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or if an attribute name or domain
    /// value contains a tab or newline (unrepresentable in the format).
    pub fn save<W: Write>(&self, mut w: W) -> Result<(), PublicationError> {
        let schema = self.table.schema();
        for (_, attr) in schema.iter() {
            check_writable(attr.name())?;
            for v in attr.dictionary().values() {
                check_writable(v)?;
            }
        }
        writeln!(w, "{MAGIC}")?;
        writeln!(w, "sa\t{}", self.sa)?;
        writeln!(w, "p\t{}", self.p)?;
        writeln!(w, "lambda\t{}", self.params.lambda())?;
        writeln!(w, "delta\t{}", self.params.delta())?;
        writeln!(w, "seed\t{}", self.seed)?;
        writeln!(
            w,
            "stats\t{}\t{}\t{}\t{}\t{}",
            self.stats.groups,
            self.stats.groups_sampled,
            self.stats.input_records,
            self.stats.sampled_records,
            self.stats.output_records
        )?;
        writeln!(
            w,
            "check\t{}\t{}\t{}\t{}",
            self.check.total_groups,
            self.check.violating_groups,
            self.check.total_records,
            self.check.violating_records
        )?;
        writeln!(w, "attrs\t{}", schema.arity())?;
        for (_, attr) in schema.iter() {
            write!(w, "attr\t{}", attr.name())?;
            for v in attr.dictionary().values() {
                write!(w, "\t{v}")?;
            }
            writeln!(w)?;
        }
        writeln!(w, "rows\t{}", self.table.rows())?;
        let arity = schema.arity();
        for r in 0..self.table.rows() {
            for a in 0..arity {
                if a == 0 {
                    write!(w, "{}", self.table.code(r, a))?;
                } else {
                    write!(w, "\t{}", self.table.code(r, a))?;
                }
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Saves to a file path (buffered).
    ///
    /// # Errors
    ///
    /// As [`Publication::save`], plus file-creation errors.
    pub fn save_to_path(&self, path: impl AsRef<Path>) -> Result<(), PublicationError> {
        let file = File::create(path)?;
        self.save(BufWriter::new(file))
    }

    /// Deserializes a publication from the v1 on-disk format.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or any structural problem (bad
    /// magic, missing fields, malformed numbers, out-of-domain codes).
    pub fn load<R: BufRead>(r: R) -> Result<Self, PublicationError> {
        let mut lines = Lines::new(r);
        let magic_err = {
            let magic = lines.next_line()?;
            (magic != MAGIC).then(|| format!("expected magic `{MAGIC}`, got `{magic}`"))
        };
        if let Some(message) = magic_err {
            return Err(PublicationError::Format { line: 1, message });
        }
        let sa: AttrId = lines.field("sa")?.parse_one()?;
        let sa_line = lines.line_no;
        let p: f64 = lines.field("p")?.parse_one()?;
        if !(p > 0.0 && p < 1.0) {
            return Err(lines.err(format!("retention p must lie in (0, 1), got {p}")));
        }
        let lambda: f64 = lines.field("lambda")?.parse_one()?;
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(lines.err(format!("lambda must be positive and finite, got {lambda}")));
        }
        let delta: f64 = lines.field("delta")?.parse_one()?;
        if !(delta > 0.0 && delta <= 1.0) {
            return Err(lines.err(format!("delta must lie in (0, 1], got {delta}")));
        }
        let seed: u64 = lines.field("seed")?.parse_one()?;
        let stats_fields = lines.field("stats")?;
        let stats = SpsStats {
            groups: stats_fields.parse_at(0)?,
            groups_sampled: stats_fields.parse_at(1)?,
            input_records: stats_fields.parse_at(2)?,
            sampled_records: stats_fields.parse_at(3)?,
            output_records: stats_fields.parse_at(4)?,
        };
        let check_fields = lines.field("check")?;
        let check = DesignCheck {
            total_groups: check_fields.parse_at(0)?,
            violating_groups: check_fields.parse_at(1)?,
            total_records: check_fields.parse_at(2)?,
            violating_records: check_fields.parse_at(3)?,
        };
        let arity: usize = lines.field("attrs")?.parse_one()?;
        // Like `rows` below, `attrs` is untrusted: cap the pre-allocations
        // so a corrupt header cannot trigger a capacity-overflow panic or a
        // huge reservation (a real arity past the cap still loads, slower).
        let mut attributes = Vec::with_capacity(arity.min(1 << 10));
        for _ in 0..arity {
            let f = lines.field("attr")?;
            if f.values.is_empty() {
                return Err(f.error("attr line needs a name"));
            }
            attributes.push(Attribute::new(f.values[0], f.values[1..].iter().copied()));
        }
        if sa >= arity {
            return Err(PublicationError::Format {
                line: sa_line,
                message: format!("sa index {sa} out of range for arity {arity}"),
            });
        }
        // Mirror the publish-time shape invariants: the answering side
        // assumes at least one public attribute and a non-trivial SA
        // domain (`PerturbationMatrix` asserts m >= 2 at query time).
        if arity < 2 {
            return Err(lines.err(format!(
                "publication needs at least one public attribute besides SA, got arity {arity}"
            )));
        }
        let m = attributes[sa].domain_size();
        if m < 2 {
            return Err(lines.err(format!("SA domain must have at least 2 values, got {m}")));
        }
        let params = PrivacyParams::new(lambda, delta);
        let schema = Schema::new(attributes);
        let rows: usize = lines.field("rows")?.parse_one()?;
        // The row count is untrusted input: cap the pre-allocation so a
        // corrupt header cannot force a huge reservation before any record
        // is parsed (the builder grows past the cap as real rows arrive).
        let mut builder = TableBuilder::with_capacity(schema, rows.min(1 << 20));
        let mut codes = Vec::with_capacity(arity.min(1 << 10));
        for _ in 0..rows {
            let line_no = lines.line_no + 1;
            let bad = {
                let line = lines.next_line()?;
                codes.clear();
                let mut bad = None;
                for part in line.split('\t') {
                    match part.parse::<u32>() {
                        Ok(c) => codes.push(c),
                        Err(e) => {
                            bad = Some(format!("bad code `{part}`: {e}"));
                            break;
                        }
                    }
                }
                bad
            };
            if let Some(message) = bad {
                return Err(PublicationError::Format {
                    line: line_no,
                    message,
                });
            }
            builder
                .push_codes(&codes)
                .map_err(|e| PublicationError::Format {
                    line: line_no,
                    message: e.to_string(),
                })?;
        }
        // A rows header that undercounts the actual content would otherwise
        // load as a silently truncated release.
        lines.expect_eof()?;
        Ok(Self {
            table: builder.build(),
            sa,
            p,
            params,
            seed,
            stats,
            check,
        })
    }

    /// Loads from a file path (buffered).
    ///
    /// # Errors
    ///
    /// As [`Publication::load`], plus file-open errors.
    pub fn load_from_path(path: impl AsRef<Path>) -> Result<Self, PublicationError> {
        let file = File::open(path)?;
        Self::load(BufReader::new(file))
    }
}

const MAGIC: &str = "rp-publication v1";

fn check_writable(s: &str) -> Result<(), PublicationError> {
    if s.contains('\t') || s.contains('\n') || s.contains('\r') {
        return Err(PublicationError::Unrepresentable(s.to_string()));
    }
    Ok(())
}

/// Errors raised by publication (de)serialization.
#[derive(Debug)]
pub enum PublicationError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the input at a 1-based line number.
    Format {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An attribute name or value contains a tab or newline and cannot be
    /// written in the line-oriented format.
    Unrepresentable(String),
}

impl fmt::Display for PublicationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PublicationError::Io(e) => write!(f, "I/O error: {e}"),
            PublicationError::Format { line, message } => {
                write!(f, "line {line}: {message}")
            }
            PublicationError::Unrepresentable(s) => {
                write!(f, "value `{}` contains tab/newline", s.escape_debug())
            }
        }
    }
}

impl std::error::Error for PublicationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PublicationError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PublicationError {
    fn from(e: io::Error) -> Self {
        PublicationError::Io(e)
    }
}

/// Line reader with position tracking for error messages.
struct Lines<R> {
    inner: R,
    line_no: usize,
    buf: String,
}

/// One parsed `key\tv1\tv2...` metadata line.
struct Field<'a> {
    key: &'a str,
    values: Vec<&'a str>,
    line: usize,
}

impl<R: BufRead> Lines<R> {
    fn new(inner: R) -> Self {
        Self {
            inner,
            line_no: 0,
            buf: String::new(),
        }
    }

    fn err(&self, message: String) -> PublicationError {
        PublicationError::Format {
            line: self.line_no,
            message,
        }
    }

    fn next_line(&mut self) -> Result<&str, PublicationError> {
        self.buf.clear();
        let n = self.inner.read_line(&mut self.buf)?;
        self.line_no += 1;
        if n == 0 {
            return Err(PublicationError::Format {
                line: self.line_no,
                message: "unexpected end of input".to_string(),
            });
        }
        Ok(self.buf.trim_end_matches(['\n', '\r']))
    }

    fn expect_eof(&mut self) -> Result<(), PublicationError> {
        self.buf.clear();
        if self.inner.read_line(&mut self.buf)? != 0 {
            return Err(PublicationError::Format {
                line: self.line_no + 1,
                message: "trailing content after the declared row count".to_string(),
            });
        }
        Ok(())
    }

    fn field(&mut self, key: &'static str) -> Result<Field<'_>, PublicationError> {
        let line_no = self.line_no + 1;
        let line = self.next_line()?;
        let mut parts = line.split('\t');
        let got = parts.next().unwrap_or("");
        if got != key {
            return Err(PublicationError::Format {
                line: line_no,
                message: format!("expected `{key}` line, got `{got}`"),
            });
        }
        Ok(Field {
            key,
            values: parts.collect(),
            line: line_no,
        })
    }
}

impl Field<'_> {
    fn error(&self, message: impl Into<String>) -> PublicationError {
        PublicationError::Format {
            line: self.line,
            message: message.into(),
        }
    }

    fn parse_at<T: std::str::FromStr>(&self, i: usize) -> Result<T, PublicationError>
    where
        T::Err: fmt::Display,
    {
        let raw = self
            .values
            .get(i)
            .ok_or_else(|| self.error(format!("`{}` line needs field {i}", self.key)))?;
        raw.parse()
            .map_err(|e| self.error(format!("bad `{}` field `{raw}`: {e}", self.key)))
    }

    fn parse_one<T: std::str::FromStr>(&self) -> Result<T, PublicationError>
    where
        T::Err: fmt::Display,
    {
        if self.values.len() != 1 {
            return Err(self.error(format!(
                "`{}` line needs exactly one value, got {}",
                self.key,
                self.values.len()
            )));
        }
        self.parse_at(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_table::Attribute;

    fn demo_publication() -> Publication {
        let schema = Schema::new(vec![
            Attribute::new("Gender", ["male", "female"]),
            Attribute::new("Disease", ["flu", "hiv", "none"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..50u32 {
            b.push_codes(&[i % 2, i % 3]).unwrap();
        }
        Publication::from_parts(
            b.build(),
            1,
            0.5,
            PrivacyParams::new(0.3, 0.3),
            42,
            SpsStats {
                groups: 2,
                groups_sampled: 1,
                input_records: 50,
                sampled_records: 20,
                output_records: 50,
            },
            DesignCheck {
                total_groups: 2,
                violating_groups: 1,
                total_records: 50,
                violating_records: 30,
            },
        )
    }

    #[test]
    fn save_load_round_trips_value() {
        let p = demo_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        let p2 = Publication::load(&bytes[..]).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        let p = demo_publication();
        let mut first = Vec::new();
        p.save(&mut first).unwrap();
        let p2 = Publication::load(&first[..]).unwrap();
        let mut second = Vec::new();
        p2.save(&mut second).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn load_rejects_bad_magic() {
        let err = Publication::load(&b"not a publication\n"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn load_rejects_truncation() {
        let p = demo_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        let cut = bytes.len() - 10;
        let err = Publication::load(&bytes[..cut]).unwrap_err();
        assert!(err.to_string().contains("end of input") || err.to_string().contains("bad"));
    }

    #[test]
    fn load_rejects_invalid_privacy_params_without_panicking() {
        let p = demo_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        for (needle, replacement, expect) in [
            ("lambda\t0.3\n", "lambda\t0\n", "lambda"),
            ("delta\t0.3\n", "delta\t2\n", "delta"),
        ] {
            let broken = text.replace(needle, replacement);
            assert_ne!(text, broken, "fixture must contain `{needle}`");
            let err = Publication::load(broken.as_bytes()).unwrap_err();
            assert!(err.to_string().contains(expect), "{err}");
        }
    }

    #[test]
    fn load_caps_preallocation_from_untrusted_arity() {
        let p = demo_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        // A huge claimed arity must fail cleanly (truncation), not panic
        // with a capacity overflow while pre-allocating.
        let broken = text.replace("attrs\t2\n", "attrs\t99999999999999999\n");
        assert_ne!(text, broken);
        let err = Publication::load(broken.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected `attr` line"), "{err}");
    }

    #[test]
    fn load_rejects_degenerate_shapes() {
        let p = demo_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        // SA domain collapsed to one value: must fail at load, not panic
        // at answer time.
        let broken = text.replace("attr\tDisease\tflu\thiv\tnone\n", "attr\tDisease\tflu\n");
        assert_ne!(text, broken);
        let err = Publication::load(broken.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("at least 2 values"), "{err}");
    }

    #[test]
    fn load_rejects_trailing_content() {
        let p = demo_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        // An undercounting rows header must not load as a truncated release.
        let text = String::from_utf8(bytes).unwrap();
        let broken = text.replace("rows\t50\n", "rows\t49\n");
        assert_ne!(text, broken);
        let err = Publication::load(broken.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing content"), "{err}");
    }

    #[test]
    fn load_caps_preallocation_from_untrusted_row_count() {
        let p = demo_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        // A huge claimed row count with no rows behind it must fail with a
        // clean truncation error, not an allocation abort.
        let broken = text.replace("rows\t50\n", &format!("rows\t{}\n", u64::MAX));
        assert_ne!(text, broken);
        let err = Publication::load(broken.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("end of input"), "{err}");
    }

    #[test]
    fn load_rejects_out_of_domain_code() {
        let p = demo_publication();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let broken = text.replace("\n0\t0\n", "\n0\t9\n");
        assert_ne!(text, broken, "fixture must contain the row");
        let err = Publication::load(broken.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn unrepresentable_values_refused_at_save() {
        let schema = Schema::new(vec![
            Attribute::new("A", ["x\ty"]),
            Attribute::new("B", ["u", "v"]),
        ]);
        let t = TableBuilder::new(schema).build();
        let p = Publication::from_parts(
            t,
            1,
            0.5,
            PrivacyParams::new(0.3, 0.3),
            0,
            SpsStats::default(),
            DesignCheck::default(),
        );
        let mut bytes = Vec::new();
        assert!(matches!(
            p.save(&mut bytes),
            Err(PublicationError::Unrepresentable(_))
        ));
    }

    #[test]
    fn check_rates() {
        let c = DesignCheck {
            total_groups: 4,
            violating_groups: 1,
            total_records: 100,
            violating_records: 30,
        };
        assert!((c.vg() - 0.25).abs() < 1e-12);
        assert!((c.vr() - 0.3).abs() < 1e-12);
        assert!(!c.is_private());
        assert!(DesignCheck::default().is_private());
    }
}
