//! Figure 1 regeneration bench: the `sg` curves (Equation 10 evaluated
//! over the frequency grid for both panels).

use criterion::{criterion_group, criterion_main, Criterion};
use rp_core::privacy::{max_group_size, PrivacyParams};
use rp_experiments::figure1;

fn bench(c: &mut Criterion) {
    c.bench_function("figure1/both_panels", |b| b.iter(figure1::run));
    c.bench_function("figure1/single_sg", |b| {
        let params = PrivacyParams::new(0.3, 0.3);
        b.iter(|| max_group_size(params, 0.5, 50, 0.3));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
