//! Benches for the streaming subsystem: the durable insert path, WAL
//! replay, snapshot serialization and the live query view.
//!
//! * `stream/insert_wal` — one record through the full durable path:
//!   WAL append + per-group RNG perturbation + live-group update
//!   (buffered log; the sync cost is `flush`'s, measured separately);
//! * `stream/flush` — the durability point: WAL sync to stable storage;
//! * `stream/commit_batch{1,8,64}` — one *durable* insert under group
//!   commit at that batch size: the batch's single fsync amortized over
//!   its inserts (batch 1 is sync-per-insert, the floor);
//! * `stream/replay_1k` — rebuilding stream state from a 1000-event WAL
//!   (clean start), the restart-time cost;
//! * `stream/snapshot_1k` — materializing the v2 artifact (base + live
//!   rows + live section) for a 1k-record stream;
//! * `stream/live_query` — one uncached count query answered against
//!   base + live view through a streaming `QueryService`.

use std::path::PathBuf;

use criterion::{criterion_group, criterion_main, Criterion};
use rp_engine::{
    Publication, Publisher, QueryService, Request, Response, ServiceConfig, SessionStats,
    StreamConfig, StreamPublisher, WireQuery,
};
use rp_table::{Attribute, Schema, TableBuilder};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rp-bench-stream-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(format!("{}.spill", path.display()));
    path
}

/// A small base release: 12 groups over (Job, City), SA = Disease.
fn base_publication() -> Publication {
    let schema = Schema::new(vec![
        Attribute::new("Job", ["eng", "doc", "law"]),
        Attribute::new("City", ["rome", "oslo", "lima", "kiev"]),
        Attribute::new("Disease", ["flu", "hiv", "none"]),
    ]);
    let mut b = TableBuilder::new(schema);
    for i in 0..1200u32 {
        b.push_codes(&[i % 3, (i / 3) % 4, (i / 12) % 3]).unwrap();
    }
    Publisher::new(b.build()).sa(2).seed(5).publish().unwrap()
}

/// The record cycle the insert benches draw from.
fn record(i: u32) -> Vec<u32> {
    vec![i % 3, (i / 3) % 4, (i * 7 / 5) % 3]
}

/// A stream pre-loaded with `n` inserts on a fresh WAL.
fn loaded_stream(name: &str, n: u32) -> StreamPublisher {
    let mut stream =
        StreamPublisher::open(base_publication(), &tmp(name), StreamConfig::default()).unwrap();
    for i in 0..n {
        stream.insert_codes(&record(i)).unwrap();
    }
    stream
}

fn bench_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream");

    group.bench_function("insert_wal", |b| {
        let mut stream = loaded_stream("insert.rpwal", 0);
        let mut i = 0u32;
        b.iter(|| {
            let outcome = stream.insert_codes(&record(i)).unwrap();
            i += 1;
            outcome.group_size
        });
    });

    group.bench_function("flush", |b| {
        let mut stream = loaded_stream("sync.rpwal", 64);
        let mut i = 64u32;
        b.iter(|| {
            // One buffered insert then the durability point, so the
            // number tracks "cost to make one acknowledged record
            // durable" rather than an empty sync.
            stream.insert_codes(&record(i)).unwrap();
            i += 1;
            stream.flush().unwrap()
        });
    });

    // Group commit: each iteration pushes one full batch through the
    // durable path (appends + exactly one fsync), so the per-iteration
    // time divided by the batch size is the amortized per-insert cost.
    for batch in [1u64, 8, 64] {
        group.bench_function(format!("commit_batch{batch}"), |b| {
            let mut stream = StreamPublisher::open(
                base_publication(),
                &tmp(&format!("commit-{batch}.rpwal")),
                StreamConfig {
                    commit_batch: batch,
                    ..StreamConfig::default()
                },
            )
            .unwrap();
            let mut i = 0u32;
            b.iter(|| {
                for _ in 0..batch {
                    stream.insert_codes(&record(i)).unwrap();
                    i += 1;
                }
                stream.durable_seq()
            });
        });
    }

    {
        let wal = tmp("replay-1k.rpwal");
        let mut live =
            StreamPublisher::open(base_publication(), &wal, StreamConfig::default()).unwrap();
        for i in 0..1000u32 {
            live.insert_codes(&record(i)).unwrap();
        }
        live.flush().unwrap();
        drop(live);
        let base = base_publication();
        group.bench_function("replay_1k", |b| {
            b.iter(|| {
                let stream =
                    StreamPublisher::replay(base.clone(), &wal, StreamConfig::default()).unwrap();
                assert_eq!(stream.inserted(), 1000);
                stream.wal_seq()
            });
        });
    }

    group.bench_function("snapshot_1k", |b| {
        let mut stream = loaded_stream("snapshot.rpwal", 1000);
        b.iter(|| {
            let snapshot = stream.snapshot().unwrap();
            assert_eq!(snapshot.live().unwrap().inserted, 1000);
            snapshot.table().rows()
        });
    });

    group.bench_function("live_query", |b| {
        let stream = loaded_stream("query.rpwal", 1000);
        // Cache off: measure the computed base + live merge, not a hit.
        let service = QueryService::streaming(stream, None, ServiceConfig { cache_entries: 0 });
        let request = Request::Query(WireQuery::new(vec![("Job", "eng"), ("Disease", "flu")]));
        let mut session = SessionStats::default();
        b.iter(|| {
            let r = service.handle(&request, &mut session);
            assert!(matches!(r, Response::Answer(_)), "{}", r.encode());
            r
        });
    });

    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
