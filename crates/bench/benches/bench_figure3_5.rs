//! Figures 3/5 regeneration bench: the UP-vs-SPS relative-error protocol
//! (pool generation, histogram-level publication, indexed query answering)
//! at reduced pool/run counts.

use criterion::{criterion_group, criterion_main, Criterion};
use rp_bench::{adult_fixture, census_fixture};
use rp_experiments::error::{self, ErrorProtocol};
use rp_experiments::violation::SweepAxis;

fn protocol() -> ErrorProtocol {
    ErrorProtocol {
        pool_size: 300,
        runs: 2,
        seed: 1,
    }
}

fn bench(c: &mut Criterion) {
    let adult = adult_fixture();
    let census = census_fixture();
    let mut group = c.benchmark_group("figure3_5");
    group.sample_size(10);
    group.bench_function("figure3_adult_default_point", |b| {
        b.iter(|| error::sweep(&adult, SweepAxis::P, &[0.5], protocol()));
    });
    group.bench_function("figure5_census_default_point", |b| {
        b.iter(|| error::sweep(&census, SweepAxis::P, &[0.5], protocol()));
    });
    group.bench_function("pool_generation_adult", |b| {
        b.iter(|| error::build_pool(&adult, protocol()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
