//! Table 2 regeneration bench: the `2(b/x)²` disclosure-indicator grid
//! (pure closed form; this bench mostly tracks that the analytic path
//! stays allocation-light).

use criterion::{criterion_group, criterion_main, Criterion};
use rp_experiments::table2;

fn bench(c: &mut Criterion) {
    c.bench_function("table2/grid", |b| b.iter(table2::run));
    c.bench_function("table2/render", |b| {
        let grid = table2::run();
        b.iter(|| table2::render(&grid));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
