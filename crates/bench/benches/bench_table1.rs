//! Table 1 regeneration bench: the two-query Laplace ratio attack on the
//! (reduced) synthetic ADULT, across the paper's three ε settings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rp_bench::adult_fixture;
use rp_experiments::table1;

fn bench(c: &mut Criterion) {
    let dataset = adult_fixture();
    let mut group = c.benchmark_group("table1");
    group.sample_size(20);
    for eps in [0.01, 0.1, 0.5] {
        group.bench_with_input(BenchmarkId::new("ratio_attack", eps), &eps, |b, &eps| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                table1::run(&dataset.raw, &[eps], 10, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
