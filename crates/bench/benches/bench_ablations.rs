//! Ablation benches for the design choices called out in DESIGN.md §6:
//!
//! 1. sort-based vs hash-based grouping;
//! 2. closed-form MLE vs matrix-inverse MLE vs EM reconstruction;
//! 3. record-level vs histogram-level perturbation inside SPS;
//! 4. grouped-index vs full-scan query answering.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_bench::adult_fixture;
use rp_core::em::{em_reconstruct, EmOptions};
use rp_core::estimate::{estimate_by_scan, GroupedView};
use rp_core::groups::SaSpec;
use rp_core::mle::{reconstruct_histogram, reconstruct_histogram_via_inverse};
use rp_core::privacy::PrivacyParams;
use rp_core::sps::{sps, sps_histograms, uniform_perturb, SpsConfig};
use rp_datagen::adult;
use rp_table::{group_by_hash, group_by_sort, CountQuery};

fn ablation_grouping(c: &mut Criterion) {
    let dataset = adult_fixture();
    let na = [0usize, 1, 2, 3];
    let mut group = c.benchmark_group("ablation_grouping");
    group.sample_size(20);
    group.bench_function("sort_based_paper", |b| {
        b.iter(|| group_by_sort(&dataset.raw, &na));
    });
    group.bench_function("hash_based", |b| {
        b.iter(|| group_by_hash(&dataset.raw, &na));
    });
    group.finish();
}

fn ablation_reconstruction(c: &mut Criterion) {
    let hist: Vec<u64> = (0..50).map(|i| 37 + i * 11).collect();
    let mut group = c.benchmark_group("ablation_reconstruction");
    group.bench_function("closed_form", |b| {
        b.iter(|| reconstruct_histogram(&hist, 0.3));
    });
    group.bench_function("matrix_inverse", |b| {
        b.iter(|| reconstruct_histogram_via_inverse(&hist, 0.3));
    });
    group.bench_function("em_iterative", |b| {
        b.iter(|| em_reconstruct(&hist, 0.3, EmOptions::default()));
    });
    group.finish();
}

fn ablation_sps_level(c: &mut Criterion) {
    let dataset = adult_fixture();
    let config = SpsConfig {
        p: 0.5,
        params: PrivacyParams::new(0.3, 0.3),
    };
    let mut group = c.benchmark_group("ablation_sps_level");
    group.sample_size(10);
    group.bench_function("record_level", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| sps(&mut rng, &dataset.generalized, &dataset.groups, config));
    });
    group.bench_function("histogram_level", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| sps_histograms(&mut rng, &dataset.groups, config));
    });
    group.finish();
}

fn ablation_query_strategy(c: &mut Criterion) {
    let dataset = adult_fixture();
    let mut rng = StdRng::seed_from_u64(4);
    let spec = SaSpec::new(&dataset.generalized, adult::attr::INCOME);
    let published = uniform_perturb(&mut rng, &dataset.generalized, &spec, 0.5);
    let view = GroupedView::from_perturbed_table(&dataset.groups, &published);
    let query = CountQuery::new(vec![(0, 0)], adult::attr::INCOME, 1).expect("valid count query");
    let mut group = c.benchmark_group("ablation_query_strategy");
    group.bench_function("full_scan", |b| {
        b.iter(|| estimate_by_scan(&published, &query, 0.5));
    });
    group.bench_function("grouped_index", |b| {
        b.iter(|| view.estimate(&query, 0.5));
    });
    group.finish();
}

fn ablation_merge_test(c: &mut Criterion) {
    let dataset = adult_fixture();
    let spec = SaSpec::new(&dataset.raw, adult::attr::INCOME);
    let mut group = c.benchmark_group("ablation_merge_test");
    group.sample_size(10);
    group.bench_function("chi2_paper", |b| {
        b.iter(|| {
            rp_core::generalize::Generalization::fit_with(
                &dataset.raw,
                &spec,
                0.05,
                rp_core::MergeTest::Chi2,
            )
        });
    });
    group.bench_function("g_test", |b| {
        b.iter(|| {
            rp_core::generalize::Generalization::fit_with(
                &dataset.raw,
                &spec,
                0.05,
                rp_core::MergeTest::GTest,
            )
        });
    });
    group.finish();
}

fn ablation_selection_path(c: &mut Criterion) {
    let dataset = adult_fixture();
    let index = rp_table::InvertedIndex::build(&dataset.raw);
    let pattern = rp_table::Pattern::from_codes(&[0, 1, 2], &[8, 0, 0]);
    let mut group = c.benchmark_group("ablation_selection_path");
    group.bench_function("full_scan_select", |b| {
        b.iter(|| pattern.select(&dataset.raw));
    });
    group.bench_function("inverted_index_select", |b| {
        b.iter(|| index.select(&pattern));
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_grouping,
    ablation_reconstruction,
    ablation_sps_level,
    ablation_query_strategy,
    ablation_merge_test,
    ablation_selection_path
);
criterion_main!(benches);
