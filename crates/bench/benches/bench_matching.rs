//! Benches for the vectorized data-path kernels:
//!
//! * `matching/*` — bitmap AND-matching vs the row-at-a-time scan for
//!   Section-6 count queries on a published table (plus the one-off cost of
//!   building the bitmap index);
//! * `grouping_sharded/*` — `PersonalGroups::build_sharded` at shard counts
//!   K ∈ {1, 4, 16} (single-threaded, so the numbers isolate the sharded
//!   kernel itself rather than the machine's core count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_bench::adult_fixture;
use rp_core::groups::{PersonalGroups, SaSpec};
use rp_core::sps::uniform_perturb;
use rp_datagen::adult;
use rp_table::{BitmapIndex, CountQuery};

fn bench_matching(c: &mut Criterion) {
    let dataset = adult_fixture();
    let mut rng = StdRng::seed_from_u64(7);
    let spec = SaSpec::new(&dataset.generalized, adult::attr::INCOME);
    let published = uniform_perturb(&mut rng, &dataset.generalized, &spec, 0.5);
    let index = BitmapIndex::build(&published);
    let queries = [
        CountQuery::new(vec![(0, 0)], adult::attr::INCOME, 1).expect("valid count query"),
        CountQuery::new(vec![(0, 1), (1, 0)], adult::attr::INCOME, 0).expect("valid count query"),
        CountQuery::new(vec![(2, 0), (3, 1)], adult::attr::INCOME, 1).expect("valid count query"),
    ];
    let mut group = c.benchmark_group("matching");
    group.bench_function("row_scan", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| q.answer_with_support(&published))
                .collect::<Vec<_>>()
        });
    });
    group.bench_function("bitmap", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| q.answer_with_support_indexed(&index))
                .collect::<Vec<_>>()
        });
    });
    group.bench_function("bitmap_build", |b| {
        b.iter(|| BitmapIndex::build(&published));
    });
    group.finish();
}

fn bench_grouping_sharded(c: &mut Criterion) {
    let dataset = adult_fixture();
    let spec = SaSpec::new(&dataset.generalized, adult::attr::INCOME);
    let mut group = c.benchmark_group("grouping_sharded");
    group.sample_size(20);
    for shards in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("k", shards), &shards, |b, &shards| {
            b.iter(|| PersonalGroups::build_sharded(&dataset.generalized, spec.clone(), shards, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching, bench_grouping_sharded);
criterion_main!(benches);
