//! Benches for the multi-tenant catalog: what routing a request through
//! a [`CatalogSession`] costs over handing it straight to the tenant's
//! `QueryService`.
//!
//! * `catalog/handle_line_single` — the single-tenant baseline: one full
//!   per-line path (parse, dispatch, encode) on a bare service;
//! * `catalog/handle_line_default_route` — the same line through a
//!   two-tenant catalog session's default route (the epoch-validated
//!   fast path on top of the baseline; the PR-7 budget is <15% over
//!   `handle_line_single`, measured ~3-8%);
//! * `catalog/handle_line_qualified` — the one-shot `count@beta` form:
//!   qualifier parsing plus a checkout of the non-current tenant;
//! * `catalog/use_switch` — rebinding the session between two tenants
//!   with `use`, the sticky counterpart of the qualifier.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use rp_engine::{Catalog, CatalogSession, Publisher, QueryService, ServiceConfig, SessionStats};
use rp_table::{Attribute, Schema, TableBuilder};

/// One 6-group fixture release (groups stay UP-degenerate, so answers are
/// cache-friendly and deterministic).
fn fixture_service(rows: u32, seed: u64) -> QueryService {
    let schema = Schema::new(vec![
        Attribute::new("Job", ["eng", "doc", "law"]),
        Attribute::new("City", ["rome", "oslo"]),
        Attribute::new("Disease", ["flu", "none"]),
    ]);
    let mut b = TableBuilder::new(schema);
    for i in 0..rows {
        b.push_codes(&[i % 3, (i / 3) % 2, (i / 6) % 2]).unwrap();
    }
    let publication = Publisher::new(b.build())
        .sa(2)
        .seed(seed)
        .publish()
        .expect("fixture publishes");
    QueryService::from_publication(
        &publication,
        ServiceConfig {
            cache_entries: 1024,
        },
    )
}

fn fixture_catalog() -> Catalog {
    let catalog = Catalog::new("alpha").expect("valid default name");
    catalog
        .open("alpha", Arc::new(fixture_service(1800, 41)))
        .expect("open alpha");
    catalog
        .open("beta", Arc::new(fixture_service(1200, 43)))
        .expect("open beta");
    catalog
}

fn bench_catalog(c: &mut Criterion) {
    const LINE: &str = "count Job=eng Disease=flu";

    let single = fixture_service(1800, 41);
    let catalog = fixture_catalog();

    let mut group = c.benchmark_group("catalog");
    group.bench_function("handle_line_single", |b| {
        let mut session = SessionStats::default();
        b.iter(|| {
            single
                .handle_line(LINE, &mut session)
                .expect("non-blank line answers")
        });
    });
    group.bench_function("handle_line_default_route", |b| {
        let mut routing = CatalogSession::new(&catalog);
        let mut session = SessionStats::default();
        b.iter(|| {
            routing
                .handle_line(LINE, &mut session)
                .expect("non-blank line answers")
        });
    });
    group.bench_function("handle_line_qualified", |b| {
        let mut routing = CatalogSession::new(&catalog);
        let mut session = SessionStats::default();
        b.iter(|| {
            routing
                .handle_line("count@beta Job=eng Disease=flu", &mut session)
                .expect("non-blank line answers")
        });
    });
    group.bench_function("use_switch", |b| {
        let mut routing = CatalogSession::new(&catalog);
        let mut session = SessionStats::default();
        let mut to_beta = true;
        b.iter(|| {
            let line = if to_beta { "use beta" } else { "use alpha" };
            to_beta = !to_beta;
            routing
                .handle_line(line, &mut session)
                .expect("non-blank line answers")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_catalog);
criterion_main!(benches);
