//! Benches for the observability core: the per-event costs the serving
//! stack pays when instrumented, and the scrape-side rendering cost.
//!
//! * `obs/counter_inc` — one relaxed atomic counter increment, the cost
//!   of every `obs.inc(..)` site;
//! * `obs/span` — open + drop one always-on span (two clock reads and a
//!   histogram record);
//! * `obs/histogram_record` — one log₂-bucketed record (bucket index,
//!   three relaxed atomics);
//! * `obs/histogram_quantile` — snapshot a populated histogram and
//!   derive p50/p90/p99 from its buckets;
//! * `obs/metrics_render` — render the full registry as one canonical
//!   rp/5 `metrics` response line (the scrape path).

use criterion::{criterion_group, criterion_main, Criterion};
use rp_engine::protocol::WireHistogram;
use rp_engine::{Registry, Response};

/// A local registry pre-populated so quantile/render paths see realistic
/// bucket occupancy (never the process-global one: benches must not
/// perturb other targets' metrics).
fn populated_registry() -> Registry {
    let registry = Registry::new();
    for i in 0..4096u64 {
        registry.record("wal.sync", i * 131 + 17);
        registry.record("serve.request", i * 7 + 3);
    }
    for _ in 0..1000 {
        registry.inc("catalog.reload");
    }
    registry
}

/// The scrape path: registry contents to one canonical response line.
fn render_metrics(registry: &Registry) -> String {
    let response = Response::Metrics {
        counters: registry
            .counter_values()
            .into_iter()
            .map(|(name, value)| (name.to_string(), value))
            .collect(),
        histograms: registry
            .histogram_summaries()
            .into_iter()
            .map(|(name, s)| WireHistogram {
                name: name.to_string(),
                count: s.count,
                p50: s.p50,
                p90: s.p90,
                p99: s.p99,
                max: s.max,
                mean: if s.count == 0 {
                    0.0
                } else {
                    s.sum as f64 / s.count as f64
                },
            })
            .collect(),
    };
    response.encode()
}

fn bench_obs(c: &mut Criterion) {
    let registry = populated_registry();

    let mut group = c.benchmark_group("obs");
    group.bench_function("counter_inc", |b| {
        b.iter(|| registry.inc("stream.republish"));
    });
    group.bench_function("span", |b| {
        b.iter(|| {
            let span = registry.span("wal.sync");
            drop(span);
        });
    });
    group.bench_function("histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            registry.record("serve.request", v >> 40);
        });
    });
    group.bench_function("histogram_quantile", |b| {
        b.iter(|| {
            let summaries = registry.histogram_summaries();
            let wal = summaries
                .iter()
                .find(|(name, _)| *name == "wal.sync")
                .expect("wal.sync is a registered histogram");
            assert!(wal.1.p50 <= wal.1.p99, "quantiles are monotone");
            (wal.1.p50, wal.1.p90, wal.1.p99)
        });
    });
    group.bench_function("metrics_render", |b| {
        b.iter(|| {
            let line = render_metrics(&registry);
            assert!(line.starts_with("metrics "), "canonical prefix");
            line
        });
    });
    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
