//! Component microbenches: throughput of the primitives the experiments
//! are built from (perturbation, MLE/EM reconstruction, grouping, χ² test,
//! query answering).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_bench::adult_fixture;
use rp_core::em::{em_reconstruct, EmOptions};
use rp_core::estimate::GroupedView;
use rp_core::groups::{PersonalGroups, SaSpec};
use rp_core::mle::reconstruct_histogram;
use rp_core::perturb::UniformPerturbation;
use rp_core::sps::up_histograms;
use rp_datagen::adult::{self, AdultConfig};
use rp_stats::chi2::binned_chi2_test;
use rp_table::{group_by_hash, group_by_sort, CountQuery};

fn bench_perturbation(c: &mut Criterion) {
    let mut group = c.benchmark_group("perturbation");
    for rows in [10_000usize, 45_222] {
        let table = adult::generate(AdultConfig {
            rows,
            ..AdultConfig::default()
        });
        let op = UniformPerturbation::new(0.5, 2);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(
            BenchmarkId::new("record_level", rows),
            &table,
            |b, table| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| op.perturb_table(&mut rng, table, adult::attr::INCOME));
            },
        );
        let hist = table.histogram(adult::attr::INCOME).unwrap();
        group.bench_with_input(
            BenchmarkId::new("histogram_level", rows),
            &hist,
            |b, hist| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| op.perturb_histogram(&mut rng, hist));
            },
        );
    }
    group.finish();
}

fn bench_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconstruction");
    let hist: Vec<u64> = (0..50).map(|i| 100 + i * 7).collect();
    group.bench_function("mle_m50", |b| {
        b.iter(|| reconstruct_histogram(&hist, 0.5));
    });
    group.bench_function("em_m50", |b| {
        b.iter(|| em_reconstruct(&hist, 0.5, EmOptions::default()));
    });
    group.finish();
}

fn bench_grouping(c: &mut Criterion) {
    let table = adult::generate(AdultConfig {
        rows: 45_222,
        ..AdultConfig::default()
    });
    let mut group = c.benchmark_group("grouping");
    group.sample_size(20);
    group.throughput(Throughput::Elements(table.rows() as u64));
    group.bench_function("personal_groups_sorted", |b| {
        b.iter(|| {
            let spec = SaSpec::new(&table, adult::attr::INCOME);
            PersonalGroups::build(&table, spec)
        });
    });
    group.bench_function("group_by_sort", |b| {
        b.iter(|| group_by_sort(&table, &[0, 1, 2, 3]));
    });
    group.bench_function("group_by_hash", |b| {
        b.iter(|| group_by_hash(&table, &[0, 1, 2, 3]));
    });
    group.finish();
}

fn bench_chi2(c: &mut Criterion) {
    let a: Vec<u64> = (0..50).map(|i| 1000 + i * 13).collect();
    let b_hist: Vec<u64> = (0..50).map(|i| 900 + i * 17).collect();
    c.bench_function("chi2/binned_test_m50", |b| {
        b.iter(|| binned_chi2_test(&a, &b_hist, 0.05));
    });
}

fn bench_query_answering(c: &mut Criterion) {
    let dataset = adult_fixture();
    let mut rng = StdRng::seed_from_u64(2);
    let view = GroupedView::from_histograms(
        &dataset.groups,
        up_histograms(&mut rng, &dataset.groups, 0.5),
    );
    let query = CountQuery::new(vec![(0, 0)], adult::attr::INCOME, 1).expect("valid count query");
    let mut group = c.benchmark_group("query_answering");
    group.bench_function("grouped_view", |b| {
        b.iter(|| view.estimate(&query, 0.5));
    });
    let queries = vec![query.clone(); 64];
    group.bench_function("match_index_64", |b| {
        b.iter(|| view.match_index(&queries));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_perturbation,
    bench_reconstruction,
    bench_grouping,
    bench_chi2,
    bench_query_answering
);
criterion_main!(benches);
