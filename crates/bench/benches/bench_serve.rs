//! Benches for the serving stack: requests/sec through one
//! `QueryService`, the layer every transport (stdio, TCP) runs over.
//!
//! * `serve/query_cache_on` — the steady-state hit path: the same query
//!   repeated against a warm answer cache;
//! * `serve/query_cache_off` — the same request stream with the cache
//!   disabled, i.e. a full bitmap-match + reconstruction per request;
//! * `serve/query_distinct_cache_on` — 16 distinct queries cycling
//!   within capacity (hit path with key variety);
//! * `serve/batch8` — an 8-query batch answered through one prepared NA
//!   match index;
//! * `serve/handle_line` — the full per-line path including request
//!   parsing and response encoding, cache on (observability recording,
//!   the production default);
//! * `serve/handle_line_obs_off` — the same path with the metrics
//!   registry disabled; the ratio against `handle_line` is the
//!   instrumentation overhead CI guards (budget ~5%).

use criterion::{criterion_group, criterion_main, Criterion};
use rp_bench::adult_fixture;
use rp_engine::{
    Publisher, QueryService, Request, Response, ServiceConfig, SessionStats, WireQuery,
};

/// Builds the service over the reduced published ADULT fixture.
fn service(cache_entries: usize) -> QueryService {
    let dataset = adult_fixture();
    let publication = Publisher::new(dataset.generalized.clone())
        .sa(dataset.sa)
        .seed(7)
        .publish()
        .expect("generalized ADULT publishes");
    QueryService::from_publication(&publication, ServiceConfig { cache_entries })
}

/// Wire queries built from the served schema: one NA condition from
/// `attr` plus an SA condition, all by name as a client would send them.
fn wire_queries(service: &QueryService, count: usize) -> Vec<WireQuery> {
    let schema = service.engine().schema();
    let sa = service.engine().sa();
    let sa_name = schema.attribute(sa).name().to_string();
    let sa_dict = schema.attribute(sa).dictionary();
    // The line protocol frames conditions as whitespace-separated tokens,
    // so generalized labels containing spaces cannot ride the wire; skip
    // them (clients query such releases by the remaining token values).
    let is_token = rp_engine::protocol::is_token;
    let na_conditions: Vec<(&str, &str)> = (0..schema.arity())
        .filter(|&attr| attr != sa)
        .flat_map(|attr| {
            let attribute = schema.attribute(attr);
            attribute
                .dictionary()
                .values()
                .iter()
                .map(move |value| (attribute.name(), value.as_str()))
        })
        .filter(|&(_, v)| is_token(v))
        .collect();
    let sa_values: Vec<&str> = sa_dict
        .values()
        .iter()
        .map(String::as_str)
        .filter(|v| is_token(v))
        .collect();
    assert!(
        !na_conditions.is_empty() && !sa_values.is_empty(),
        "fixture has token-safe values"
    );
    (0..count)
        .map(|i| {
            let (col, value) = na_conditions[i % na_conditions.len()];
            let sa_value = sa_values[i % sa_values.len()];
            WireQuery::new(vec![(col, value), (&sa_name, sa_value)])
        })
        .collect()
}

fn expect_answered(response: &Response) {
    assert!(
        matches!(response, Response::Answer(_) | Response::Batch(_)),
        "service refused a bench request: {}",
        response.encode()
    );
}

fn bench_serve(c: &mut Criterion) {
    let cached = service(1024);
    let uncached = service(0);
    let queries = wire_queries(&cached, 16);
    let single = Request::Query(queries[0].clone());
    let batch = Request::Batch(queries[..8].to_vec());
    let distinct: Vec<Request> = queries.iter().map(|q| Request::Query(q.clone())).collect();
    let line = single.encode();

    let mut group = c.benchmark_group("serve");
    group.bench_function("query_cache_on", |b| {
        let mut session = SessionStats::default();
        b.iter(|| {
            let r = cached.handle(&single, &mut session);
            expect_answered(&r);
            r
        });
    });
    group.bench_function("query_cache_off", |b| {
        let mut session = SessionStats::default();
        b.iter(|| {
            let r = uncached.handle(&single, &mut session);
            expect_answered(&r);
            r
        });
    });
    group.bench_function("query_distinct_cache_on", |b| {
        let mut session = SessionStats::default();
        let mut i = 0usize;
        b.iter(|| {
            let r = cached.handle(&distinct[i % distinct.len()], &mut session);
            i += 1;
            expect_answered(&r);
            r
        });
    });
    group.bench_function("batch8", |b| {
        let mut session = SessionStats::default();
        b.iter(|| {
            let r = uncached.handle(&batch, &mut session);
            expect_answered(&r);
            r
        });
    });
    group.bench_function("handle_line", |b| {
        let mut session = SessionStats::default();
        b.iter(|| {
            let r = cached
                .handle_line(&line, &mut session)
                .expect("non-empty line");
            expect_answered(&r);
            r.encode()
        });
    });
    group.bench_function("handle_line_obs_off", |b| {
        let obs = rp_engine::obs::global();
        obs.set_enabled(false);
        let mut session = SessionStats::default();
        b.iter(|| {
            let r = cached
                .handle_line(&line, &mut session)
                .expect("non-empty line");
            expect_answered(&r);
            r.encode()
        });
        obs.set_enabled(true);
    });
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
