//! Tables 4/5 regeneration bench: the χ² generalization pass (pairwise
//! tests + union-find merge + table rewrite) on both reduced fixtures.

use criterion::{criterion_group, criterion_main, Criterion};
use rp_bench::{adult_fixture, census_fixture};
use rp_core::generalize::Generalization;
use rp_core::groups::SaSpec;
use rp_experiments::tables45;

fn bench(c: &mut Criterion) {
    let adult = adult_fixture();
    let census = census_fixture();
    let mut group = c.benchmark_group("table4_5");
    group.sample_size(10);
    group.bench_function("fit_adult", |b| {
        let spec = SaSpec::new(&adult.raw, adult.sa);
        b.iter(|| Generalization::fit(&adult.raw, &spec, 0.05));
    });
    group.bench_function("fit_census", |b| {
        let spec = SaSpec::new(&census.raw, census.sa);
        b.iter(|| Generalization::fit(&census.raw, &spec, 0.05));
    });
    group.bench_function("apply_adult", |b| {
        b.iter(|| adult.generalization.apply(&adult.raw));
    });
    group.bench_function("impact_report_adult", |b| {
        b.iter(|| tables45::run(&adult));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
