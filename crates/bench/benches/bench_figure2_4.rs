//! Figures 2/4 regeneration bench: the violation sweeps (vg/vr) over
//! p, λ and δ on both reduced fixtures.

use criterion::{criterion_group, criterion_main, Criterion};
use rp_bench::{adult_fixture, census_fixture};
use rp_core::privacy::{check_groups, PrivacyParams};
use rp_experiments::violation;

fn bench(c: &mut Criterion) {
    let adult = adult_fixture();
    let census = census_fixture();
    let mut group = c.benchmark_group("figure2_4");
    group.sample_size(20);
    group.bench_function("figure2_adult_sweeps", |b| {
        b.iter(|| violation::run_all(&adult));
    });
    group.bench_function("figure4_census_sweeps", |b| {
        b.iter(|| violation::run_all(&census));
    });
    group.bench_function("single_check_census", |b| {
        let params = PrivacyParams::new(0.3, 0.3);
        b.iter(|| check_groups(&census.groups, 0.5, params));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
