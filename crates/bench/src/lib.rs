//! # rp-bench
//!
//! Criterion benchmark harness for the reconstruction-privacy workspace:
//! one bench per paper table/figure (reduced scale — the full-scale
//! regeneration lives in the `repro` binary of `rp-experiments`), plus
//! component microbenches and the ablation benches called out in
//! DESIGN.md §6.
//!
//! Shared fixtures live here so every bench sees identical inputs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rp_experiments::config::PreparedDataset;

/// Rows used for the reduced ADULT fixture in benches.
pub const BENCH_ADULT_ROWS: usize = 12_000;

/// Rows used for the reduced CENSUS fixture in benches.
pub const BENCH_CENSUS_ROWS: usize = 40_000;

/// The reduced ADULT fixture (generated + generalized + grouped).
pub fn adult_fixture() -> PreparedDataset {
    PreparedDataset::adult_small(BENCH_ADULT_ROWS)
}

/// The reduced CENSUS fixture.
pub fn census_fixture() -> PreparedDataset {
    PreparedDataset::census(BENCH_CENSUS_ROWS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_materialize() {
        let a = adult_fixture();
        assert_eq!(a.raw.rows(), BENCH_ADULT_ROWS);
        let c = census_fixture();
        assert_eq!(c.raw.rows(), BENCH_CENSUS_ROWS);
    }
}
