//! Value-level fixture tests for the table substrate: a small named table
//! with known answers for every predicate and query path, and the CSV
//! round trip both directions (table → CSV → table and CSV text → table).

use std::io::Cursor;

use rp_table::{read_csv, write_csv, Attribute, CountQuery, Pattern, Schema, TableBuilder, Term};

/// Six hospital records over (Job, Gender, Disease) with Disease sensitive.
///
/// | row | Job      | Gender | Disease   |
/// |-----|----------|--------|-----------|
/// | 0   | Engineer | M      | Asthma    |
/// | 1   | Engineer | M      | Flu       |
/// | 2   | Engineer | F      | Asthma    |
/// | 3   | Lawyer   | F      | Diabetes  |
/// | 4   | Lawyer   | M      | Asthma    |
/// | 5   | Writer   | F      | Flu       |
fn fixture() -> rp_table::Table {
    let schema = Schema::new(vec![
        Attribute::new("Job", ["Engineer", "Lawyer", "Writer"]),
        Attribute::new("Gender", ["M", "F"]),
        Attribute::new("Disease", ["Asthma", "Flu", "Diabetes"]),
    ]);
    let rows: [[u32; 3]; 6] = [
        [0, 0, 0],
        [0, 0, 1],
        [0, 1, 0],
        [1, 1, 2],
        [1, 0, 0],
        [2, 1, 1],
    ];
    let mut builder = TableBuilder::new(schema);
    for row in rows {
        builder.push_codes(&row).expect("codes in domain");
    }
    builder.build()
}

#[test]
fn predicates_select_the_expected_rows() {
    let t = fixture();

    // Job = Engineer (code 0): rows 0, 1, 2.
    let engineers = Pattern::new(vec![(0, Term::Value(0))]);
    assert_eq!(engineers.select(&t), vec![0, 1, 2]);
    assert_eq!(engineers.count(&t), 3);

    // All wildcards: everything matches.
    let all = Pattern::all_wildcards(&[0, 1]);
    assert_eq!(all.count(&t), 6);
    assert!(all.has_wildcard());
    assert_eq!(all.dimensionality(), 0);

    // Job = Lawyer AND Gender = M: row 4 only.
    let lawyer_m = Pattern::from_codes(&[0, 1], &[1, 0]);
    assert_eq!(lawyer_m.select(&t), vec![4]);
    assert!(lawyer_m.matches_row(&t, 4));
    assert!(!lawyer_m.matches_row(&t, 3));

    // matches_key works on bare NA keys, wildcards included.
    let m_any_job = Pattern::new(vec![(1, Term::Value(0))]);
    assert!(m_any_job.matches_key(&[0, 1], &[2, 0]));
    assert!(!m_any_job.matches_key(&[0, 1], &[2, 1]));

    // Validation catches out-of-domain codes and bad attributes.
    assert!(Pattern::new(vec![(0, Term::Value(9))])
        .validate(t.schema())
        .is_err());
    assert!(engineers.validate(t.schema()).is_ok());
}

#[test]
fn count_queries_answer_exactly() {
    let t = fixture();

    // "Engineers with asthma": rows 0 and 2.
    let q = CountQuery::new(vec![(0, 0)], 2, 0).expect("valid count query");
    assert_eq!(q.answer(&t), 2);
    let (support, answer) = q.answer_with_support(&t);
    assert_eq!((support, answer), (3, 2), "3 engineers, 2 with asthma");
    assert!(
        (q.selectivity(&t) - 2.0 / 6.0).abs() < 1e-12,
        "selectivity is answer / |D|"
    );

    // Unconditioned SA count: all Asthma records.
    let asthma = CountQuery::new(vec![], 2, 0).expect("valid count query");
    assert_eq!(asthma.answer(&t), 3);

    // Two NA conditions: female flu cases outside engineering.
    let writer_f_flu = CountQuery::new(vec![(0, 2), (1, 1)], 2, 1).expect("valid count query");
    assert_eq!(writer_f_flu.answer(&t), 1);
    assert_eq!(writer_f_flu.dimensionality(), 2);
}

#[test]
fn csv_round_trip_preserves_rows_and_schema() {
    let t = fixture();
    let mut buffer = Vec::new();
    write_csv(&t, &mut buffer).expect("in-memory write");

    let text = String::from_utf8(buffer.clone()).expect("CSV is UTF-8");
    assert!(text.starts_with("Job,Gender,Disease\n"));
    assert_eq!(text.lines().count(), 7, "header + 6 records");

    let back = read_csv(Cursor::new(&buffer)).expect("own output parses");
    assert_eq!(back.rows(), t.rows());
    assert_eq!(back.schema().names(), t.schema().names());
    for row in 0..t.rows() {
        assert_eq!(
            back.decode_row(row).expect("in range"),
            t.decode_row(row).expect("in range"),
            "row {row} changed across the round trip"
        );
    }

    // Queries answer identically on the re-imported table (codes may be
    // re-interned; answers must not change).
    let q = CountQuery::new(vec![(0, 0)], 2, 0).expect("valid count query");
    let translate = |attr: usize, code: u32| {
        let value = t.schema().attribute(attr).dictionary().value(code).unwrap();
        back.schema()
            .attribute(attr)
            .dictionary()
            .code(value)
            .unwrap()
    };
    let q2 = q.map_codes(translate);
    assert_eq!(q.answer(&t), q2.answer(&back));
}

#[test]
fn csv_import_handles_messy_but_valid_input() {
    let text = "Job , Gender\nEngineer, M\n\nLawyer ,F\n";
    let t = read_csv(Cursor::new(text.as_bytes())).expect("trimmed fields parse");
    assert_eq!(t.rows(), 2, "blank lines are skipped");
    assert_eq!(t.schema().names(), vec!["Job", "Gender"]);
    assert_eq!(t.decode_row(1).unwrap(), vec!["Lawyer", "F"]);

    // Ragged rows are a structured error, not a panic.
    let bad = "A,B\n1,2,3\n";
    assert!(read_csv(Cursor::new(bad.as_bytes())).is_err());

    // Empty input has no header.
    assert!(read_csv(Cursor::new(b"" as &[u8])).is_err());
}
