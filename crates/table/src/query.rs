//! Count queries of the paper's Section 6 form:
//!
//! ```sql
//! SELECT COUNT(*) FROM D
//! WHERE A1 = a1 AND ... AND Ad = ad AND SA = sa
//! ```
//!
//! A [`CountQuery`] separates the public-attribute (`NA`) conditions from
//! the sensitive-attribute condition because the two are treated differently
//! when answering on perturbed data: the `NA` part selects the subset `S*`
//! exactly (public attributes are never perturbed), while the `SA` part must
//! be *reconstructed* from the perturbed column.

use crate::error::TableError;
use crate::predicate::{Pattern, Term};
use crate::schema::{AttrId, Schema};
use crate::table::Table;

/// A conjunctive count query with an optional sensitive-attribute condition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CountQuery {
    na_pattern: Pattern,
    sa_attr: AttrId,
    sa_value: u32,
}

impl CountQuery {
    /// Creates a query from `NA` equality conditions plus the condition
    /// `SA = sa_value`.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::SaAmongConditions`] if `sa_attr` also appears
    /// among the `NA` conditions (the SA condition would be double-counted).
    pub fn new(
        na_conditions: Vec<(AttrId, u32)>,
        sa_attr: AttrId,
        sa_value: u32,
    ) -> Result<Self, TableError> {
        if na_conditions.iter().any(|&(a, _)| a == sa_attr) {
            return Err(TableError::SaAmongConditions { sa_attr });
        }
        let na_pattern = Pattern::new(
            na_conditions
                .into_iter()
                .map(|(a, c)| (a, Term::Value(c)))
                .collect(),
        );
        Ok(Self {
            na_pattern,
            sa_attr,
            sa_value,
        })
    }

    /// The public-attribute part of the WHERE clause.
    pub fn na_pattern(&self) -> &Pattern {
        &self.na_pattern
    }

    /// The sensitive attribute being counted.
    pub fn sa_attr(&self) -> AttrId {
        self.sa_attr
    }

    /// The sensitive value being counted.
    pub fn sa_value(&self) -> u32 {
        self.sa_value
    }

    /// Query dimensionality `d` — the number of `NA` conditions.
    pub fn dimensionality(&self) -> usize {
        self.na_pattern.dimensionality()
    }

    /// Validates attribute ids and codes against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<(), TableError> {
        self.na_pattern.validate(schema)?;
        schema.get(self.sa_attr)?;
        schema.check_code(self.sa_attr, self.sa_value)
    }

    /// The exact answer `ans` on a raw table: rows matching both the `NA`
    /// conditions and `SA = sa`.
    pub fn answer(&self, table: &Table) -> u64 {
        (0..table.rows())
            .filter(|&r| {
                self.na_pattern.matches_row(table, r)
                    && table.code(r, self.sa_attr) == self.sa_value
            })
            .count() as u64
    }

    /// As [`CountQuery::answer_with_support`] but evaluated against a
    /// prebuilt [`crate::bitmap::BitmapIndex`]: the `NA` conjunction is the
    /// AND of per-`(attribute, code)` bitmaps, 64 rows per word, instead of
    /// a row-at-a-time scan. Answers are identical; the index pays off once
    /// several queries are asked of the same table.
    pub fn answer_with_support_indexed(&self, index: &crate::bitmap::BitmapIndex) -> (u64, u64) {
        index.support_and_observed(self)
    }

    /// The number of rows matching only the `NA` part (`|S|`), and the
    /// number also matching `SA = sa` (`ans`), in one scan.
    pub fn answer_with_support(&self, table: &Table) -> (u64, u64) {
        let mut support = 0u64;
        let mut ans = 0u64;
        for r in 0..table.rows() {
            if self.na_pattern.matches_row(table, r) {
                support += 1;
                if table.code(r, self.sa_attr) == self.sa_value {
                    ans += 1;
                }
            }
        }
        (support, ans)
    }

    /// Selectivity `ans / |D|` on a raw table. Zero for an empty table.
    pub fn selectivity(&self, table: &Table) -> f64 {
        if table.is_empty() {
            return 0.0;
        }
        self.answer(table) as f64 / table.rows() as f64
    }

    /// Rewrites this query through a per-attribute code translation, used
    /// when queries posed on original `NA` values must be answered on a
    /// generalized table. `translate(attr, code)` returns the new code.
    pub fn map_codes(&self, mut translate: impl FnMut(AttrId, u32) -> u32) -> Self {
        let terms = self
            .na_pattern
            .terms()
            .iter()
            .map(|&(a, t)| match t {
                Term::Wildcard => (a, Term::Wildcard),
                Term::Value(c) => (a, Term::Value(translate(a, c))),
            })
            .collect();
        Self {
            na_pattern: Pattern::new(terms),
            sa_attr: self.sa_attr,
            sa_value: self.sa_value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use crate::table::TableBuilder;

    fn demo_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("Gender", ["male", "female"]),
            Attribute::new("Job", ["eng", "doc"]),
            Attribute::new("Disease", ["flu", "hiv", "bc"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for row in [
            ["male", "eng", "flu"],
            ["male", "eng", "hiv"],
            ["male", "eng", "flu"],
            ["female", "doc", "bc"],
            ["female", "eng", "flu"],
        ] {
            b.push_values(&row).unwrap();
        }
        b.build()
    }

    #[test]
    fn answer_counts_conjunction() {
        let t = demo_table();
        // Gender=male AND Job=eng AND Disease=flu
        let q = CountQuery::new(vec![(0, 0), (1, 0)], 2, 0).unwrap();
        assert_eq!(q.answer(&t), 2);
        assert_eq!(q.dimensionality(), 2);
    }

    #[test]
    fn answer_with_support_splits_na_and_sa() {
        let t = demo_table();
        let q = CountQuery::new(vec![(0, 0), (1, 0)], 2, 0).unwrap();
        let (support, ans) = q.answer_with_support(&t);
        assert_eq!(support, 3); // male engineers
        assert_eq!(ans, 2); // of which flu
    }

    #[test]
    fn empty_na_counts_sa_marginal() {
        let t = demo_table();
        let q = CountQuery::new(vec![], 2, 0).unwrap();
        assert_eq!(q.answer(&t), 3);
        let (support, ans) = q.answer_with_support(&t);
        assert_eq!(support, 5);
        assert_eq!(ans, 3);
    }

    #[test]
    fn selectivity_fraction() {
        let t = demo_table();
        let q = CountQuery::new(vec![(0, 1)], 2, 2).unwrap(); // female AND bc
        assert!((q.selectivity(&t) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn validate_checks_schema() {
        let t = demo_table();
        let ok = CountQuery::new(vec![(0, 0)], 2, 1).unwrap();
        assert!(ok.validate(t.schema()).is_ok());
        let bad_code = CountQuery::new(vec![(0, 5)], 2, 1).unwrap();
        assert!(bad_code.validate(t.schema()).is_err());
        let bad_sa = CountQuery::new(vec![(0, 0)], 2, 9).unwrap();
        assert!(bad_sa.validate(t.schema()).is_err());
    }

    #[test]
    fn sa_in_na_rejected() {
        assert!(matches!(
            CountQuery::new(vec![(2, 0)], 2, 1),
            Err(TableError::SaAmongConditions { sa_attr: 2 })
        ));
    }

    #[test]
    fn map_codes_rewrites_na_only() {
        let q = CountQuery::new(vec![(0, 1), (1, 0)], 2, 2).unwrap();
        // Collapse every NA code to 0.
        let mapped = q.map_codes(|_, _| 0);
        assert_eq!(mapped.sa_value(), 2, "SA condition untouched");
        let codes: Vec<u32> = mapped
            .na_pattern()
            .terms()
            .iter()
            .map(|&(_, t)| match t {
                Term::Value(c) => c,
                Term::Wildcard => u32::MAX,
            })
            .collect();
        assert_eq!(codes, vec![0, 0]);
    }
}
