//! # rp-table
//!
//! In-memory columnar store for categorical microdata — the database
//! substrate of the reconstruction-privacy workspace (Rust reproduction of
//! *Reconstruction Privacy: Enabling Statistical Learning*, EDBT 2015).
//!
//! The paper's data model is a table `D` with several public attributes
//! (`NA`) and one sensitive attribute (`SA`), all categorical. This crate
//! provides:
//!
//! * [`dictionary`] — bidirectional value↔code maps per attribute.
//! * [`schema`] — named attributes with fixed domains.
//! * [`table`] — dictionary-encoded columns, a row builder, row selection
//!   and histograms.
//! * [`predicate`] — the `D(x1, ..., xn)` selection patterns with wildcards
//!   (personal vs aggregate groups, Section 3.2).
//! * [`group`] — sort-based (as prescribed by the paper's SPS algorithm) and
//!   hash-based group-by producing personal groups.
//! * [`query`] — the Section-6 conjunctive count queries with one `SA`
//!   condition.
//! * [`index`] — an inverted index with posting-list intersection, the
//!   fast access path for selective conjunctions.
//! * [`bitmap`] — per-`(attribute, code)` selection bitmaps combined with
//!   bitwise AND: the vectorized matching path for conjunctive patterns,
//!   count queries and the engine's group-key match index.
//! * [`parallel`] — deterministic shard fan-out (results independent of the
//!   thread count) used by the sharded grouping and index kernels.
//! * [`csv`] — CSV import/export so real microdata (e.g. the actual UCI
//!   ADULT file) can be loaded in place of the synthetic substitutes.
//!
//! Which attribute plays the role of `SA` is decided by the layers above
//! (`rp-core`); this crate is policy-free.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitmap;
pub mod csv;
pub mod dictionary;
pub mod error;
pub mod group;
pub mod index;
pub mod ops;
pub mod parallel;
pub mod predicate;
pub mod query;
mod recycle;
pub mod schema;
pub mod table;

pub use bitmap::{Bitmap, BitmapIndex};
pub use csv::{read_csv, write_csv, CsvError};
pub use dictionary::Dictionary;
pub use error::TableError;
pub use group::{group_by_hash, group_by_hash_sharded, group_by_sort, Group, Grouping};
pub use index::InvertedIndex;
pub use predicate::{Pattern, Term};
pub use query::CountQuery;
pub use schema::{AttrId, Attribute, Schema};
pub use table::{Column, RunWriter, Table, TableBuilder};
