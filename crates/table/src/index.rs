//! Inverted index over categorical columns: per-value posting lists with
//! sorted-merge intersection for conjunctive selections.
//!
//! An alternative access path to [`Pattern::select`]'s full scan
//! (`crate::predicate`); for selective conjunctions on large tables the
//! intersection of short posting lists is substantially faster. Quantified
//! by the `ablation_query_strategy` bench.

use crate::predicate::{Pattern, Term};
use crate::schema::AttrId;
use crate::table::Table;

/// Posting lists for every `(attribute, value)` pair of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvertedIndex {
    /// `postings[attr][value]` = sorted row ids carrying that value.
    postings: Vec<Vec<Vec<u32>>>,
    rows: usize,
}

impl InvertedIndex {
    /// Builds the index over every attribute of `table` in one pass.
    pub fn build(table: &Table) -> Self {
        let mut postings: Vec<Vec<Vec<u32>>> = (0..table.schema().arity())
            .map(|a| vec![Vec::new(); table.schema().attribute(a).domain_size()])
            .collect();
        for (attr, lists) in postings.iter_mut().enumerate() {
            for (row, &code) in table.column(attr).codes().iter().enumerate() {
                lists[code as usize].push(row as u32);
            }
        }
        Self {
            postings,
            rows: table.rows(),
        }
    }

    /// Number of rows in the indexed table.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The sorted posting list of `(attr, value)`.
    ///
    /// # Panics
    ///
    /// Panics if `attr` or `value` is out of range.
    pub fn postings(&self, attr: AttrId, value: u32) -> &[u32] {
        &self.postings[attr][value as usize]
    }

    /// Row ids matching a conjunctive pattern, via shortest-first posting
    /// intersection. Wildcard terms are skipped (they constrain nothing);
    /// an all-wildcard or empty pattern yields all rows.
    pub fn select(&self, pattern: &Pattern) -> Vec<u32> {
        let mut lists: Vec<&[u32]> = pattern
            .terms()
            .iter()
            .filter_map(|&(attr, term)| match term {
                Term::Wildcard => None,
                Term::Value(code) => Some(self.postings(attr, code)),
            })
            .collect();
        if lists.is_empty() {
            return (0..self.rows as u32).collect();
        }
        // Intersect starting from the shortest list.
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<u32> = lists[0].to_vec();
        for other in &lists[1..] {
            result = intersect_sorted(&result, other);
            if result.is_empty() {
                break;
            }
        }
        result
    }

    /// Matching-row count without materializing ids beyond the running
    /// intersection.
    pub fn count(&self, pattern: &Pattern) -> u64 {
        self.select(pattern).len() as u64
    }
}

/// Intersection of two sorted u32 slices (galloping when lengths are
/// lopsided).
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    // Gallop if one side is much longer.
    if a.len() * 16 < b.len() {
        return a
            .iter()
            .filter(|&&x| b.binary_search(&x).is_ok())
            .copied()
            .collect();
    }
    if b.len() * 16 < a.len() {
        return intersect_sorted(b, a);
    }
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use crate::table::TableBuilder;

    fn demo_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("G", ["a", "b"]),
            Attribute::new("J", ["x", "y", "z"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..300u32 {
            b.push_codes(&[i % 2, i % 3]).unwrap();
        }
        b.build()
    }

    #[test]
    fn postings_partition_rows() {
        let t = demo_table();
        let idx = InvertedIndex::build(&t);
        assert_eq!(idx.postings(0, 0).len() + idx.postings(0, 1).len(), 300);
        for &r in idx.postings(1, 2) {
            assert_eq!(t.code(r as usize, 1), 2);
        }
    }

    #[test]
    fn index_select_matches_scan_select() {
        let t = demo_table();
        let idx = InvertedIndex::build(&t);
        for pattern in [
            Pattern::from_codes(&[0], &[1]),
            Pattern::from_codes(&[0, 1], &[0, 2]),
            Pattern::new(vec![(0, Term::Wildcard), (1, Term::Value(1))]),
            Pattern::new(vec![]),
        ] {
            assert_eq!(
                idx.select(&pattern),
                pattern.select(&t),
                "pattern {pattern:?}"
            );
            assert_eq!(idx.count(&pattern), pattern.count(&t));
        }
    }

    #[test]
    fn empty_intersection_short_circuits() {
        let schema = Schema::new(vec![
            Attribute::new("A", ["p", "q"]),
            Attribute::new("B", ["r", "s"]),
        ]);
        let mut b = TableBuilder::new(schema);
        b.push_values(&["p", "r"]).unwrap();
        b.push_values(&["q", "s"]).unwrap();
        let t = b.build();
        let idx = InvertedIndex::build(&t);
        let p = Pattern::from_codes(&[0, 1], &[0, 1]); // p ∧ s: nobody
        assert!(idx.select(&p).is_empty());
    }

    #[test]
    fn intersect_sorted_balanced_and_galloping() {
        let a: Vec<u32> = (0..1000).step_by(3).collect();
        let b: Vec<u32> = (0..1000).step_by(5).collect();
        let expected: Vec<u32> = (0..1000).step_by(15).collect();
        assert_eq!(intersect_sorted(&a, &b), expected);
        // Lopsided inputs exercise the galloping path.
        let tiny = vec![0u32, 15, 999];
        let huge: Vec<u32> = (0..1000).collect();
        assert_eq!(intersect_sorted(&tiny, &huge), tiny);
        assert_eq!(intersect_sorted(&huge, &tiny), tiny);
    }

    #[test]
    fn empty_table_index() {
        let schema = Schema::new(vec![Attribute::new("A", ["x"])]);
        let t = TableBuilder::new(schema).build();
        let idx = InvertedIndex::build(&t);
        assert_eq!(idx.rows(), 0);
        assert!(idx.select(&Pattern::from_codes(&[0], &[0])).is_empty());
        assert!(idx.select(&Pattern::new(vec![])).is_empty());
    }
}
