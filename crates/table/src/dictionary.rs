//! Bidirectional value dictionaries for categorical attributes.
//!
//! Every attribute in the microdata model is categorical; columns store
//! compact `u32` codes and the dictionary maps codes back to the original
//! string values. Insertion order defines the code assignment, which keeps
//! synthetic-data generation and tests deterministic.

use std::collections::HashMap;

/// An append-only bidirectional mapping between string values and `u32`
/// codes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dictionary {
    values: Vec<String>,
    codes: HashMap<String, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dictionary from an iterator of values, assigning codes in
    /// iteration order. Duplicate values keep their first code.
    pub fn from_values<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut dict = Self::new();
        for v in values {
            dict.intern(v.into());
        }
        dict
    }

    /// Returns the code for `value`, inserting it if absent.
    pub fn intern(&mut self, value: impl Into<String>) -> u32 {
        let value = value.into();
        if let Some(&code) = self.codes.get(&value) {
            return code;
        }
        let code = u32::try_from(self.values.len()).expect("dictionary exceeds u32 codes");
        self.codes.insert(value.clone(), code);
        self.values.push(value);
        code
    }

    /// Returns the code for `value` if present.
    pub fn code(&self, value: &str) -> Option<u32> {
        self.codes.get(value).copied()
    }

    /// Returns the value for `code` if in range.
    pub fn value(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// Number of distinct values (the domain size).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(code, value)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u32, v.as_str()))
    }

    /// All values in code order.
    pub fn values(&self) -> &[String] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_sequential_codes() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("male"), 0);
        assert_eq!(d.intern("female"), 1);
        assert_eq!(d.intern("male"), 0, "re-interning keeps the first code");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn round_trip_code_value() {
        let d = Dictionary::from_values(["a", "b", "c"]);
        for (code, value) in d.iter() {
            assert_eq!(d.code(value), Some(code));
            assert_eq!(d.value(code), Some(value));
        }
        assert_eq!(d.code("missing"), None);
        assert_eq!(d.value(99), None);
    }

    #[test]
    fn from_values_dedups() {
        let d = Dictionary::from_values(["x", "y", "x", "z", "y"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.values(), &["x".to_string(), "y".into(), "z".into()]);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.iter().count(), 0);
    }
}
