//! Selection bitmaps: one bit per row (or per group key) for every
//! `(attribute, code)` pair, combined with bitwise AND to evaluate
//! conjunctive patterns 64 rows at a time.
//!
//! This is the vectorized counterpart of [`Pattern::matches_row`]'s
//! row-at-a-time scan: a [`BitmapIndex`] is built column by column in one
//! pass, and every conjunctive selection afterwards is a handful of word-wide
//! AND + popcount loops. The same structure doubles as the *group-key* match
//! index behind `rp-core`'s `GroupedView` and the query engine's prepared
//! pools, where each bit stands for one personal group instead of one row.
//! Quantified by the `matching` bench group (`bench_matching`).

use crate::predicate::{Pattern, Term};
use crate::query::CountQuery;
use crate::schema::AttrId;
use crate::table::Table;

/// A fixed-length bit set over row (or group) indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-zeros bitmap over `len` positions.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// An all-ones bitmap over `len` positions (tail bits stay clear so
    /// [`Bitmap::count_ones`] is exact).
    pub fn ones(len: usize) -> Self {
        let mut bitmap = Self {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bitmap.mask_tail();
        bitmap
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of positions (not set bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range for length {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether bit `i` is set.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range for length {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// The raw 64-bit words (tail bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut word = w;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros();
                word &= word - 1;
                Some(wi as u32 * 64 + bit)
            })
        })
    }
}

/// Per-`(attribute, code)` selection bitmaps over a sequence of coded rows.
///
/// Built column by column — one pass per indexed attribute — and queried by
/// ANDing the bitmaps named by a pattern's equality terms. Semantics mirror
/// [`Pattern::matches_key`]: attributes the index does not cover (and
/// wildcard terms) constrain nothing, and a code outside the indexed domain
/// matches no position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitmapIndex {
    len: usize,
    attrs: Vec<AttrId>,
    /// `bitmaps[attr_pos][code]`, aligned with `attrs`.
    bitmaps: Vec<Vec<Bitmap>>,
}

impl BitmapIndex {
    /// Builds the index over every attribute of `table`, one column pass
    /// per attribute.
    pub fn build(table: &Table) -> Self {
        let attrs: Vec<AttrId> = (0..table.schema().arity()).collect();
        let columns: Vec<&[u32]> = attrs.iter().map(|&a| table.column(a).codes()).collect();
        let domains: Vec<usize> = attrs
            .iter()
            .map(|&a| table.schema().attribute(a).domain_size())
            .collect();
        Self::from_columns(&attrs, &columns, &domains, 1, 1)
    }

    /// Builds the index from parallel code columns (one slice per attribute
    /// in `attrs`), `domains[i]` giving the code domain of `attrs[i]`.
    ///
    /// `shards` splits each column into word-aligned chunks that are filled
    /// independently (and merged by copying disjoint word ranges), so the
    /// result is bit-for-bit identical for every shard count; `threads > 1`
    /// builds the shards on a scoped thread pool with the same guarantee.
    ///
    /// # Panics
    ///
    /// Panics if the slices are not parallel, a code exceeds its domain, or
    /// `shards == 0`.
    pub fn from_columns(
        attrs: &[AttrId],
        columns: &[&[u32]],
        domains: &[usize],
        shards: usize,
        threads: usize,
    ) -> Self {
        assert_eq!(attrs.len(), columns.len(), "attrs and columns parallel");
        assert_eq!(attrs.len(), domains.len(), "attrs and domains parallel");
        assert!(shards > 0, "need at least one shard");
        let len = columns.first().map_or(0, |c| c.len());
        for c in columns {
            assert_eq!(c.len(), len, "columns must have equal length");
        }
        // Word-aligned chunk boundaries so shards fill disjoint word ranges.
        let words = len.div_ceil(64);
        let shard_count = shards.min(words.max(1));
        let words_per_shard = words.div_ceil(shard_count);
        let bounds: Vec<(usize, usize)> = (0..shard_count)
            .map(|s| {
                let w0 = s * words_per_shard;
                let w1 = ((s + 1) * words_per_shard).min(words);
                ((w0 * 64).min(len), (w1 * 64).min(len))
            })
            .collect();
        // Each shard builds the word range of every (attr, code) bitmap for
        // its row chunk; the merge below copies disjoint word ranges.
        let partials = crate::parallel::run_shards(bounds.len(), threads, |s| {
            let (start, end) = bounds[s];
            let local_words = (end - start).div_ceil(64);
            let mut local: Vec<Vec<Vec<u64>>> = domains
                .iter()
                .map(|&d| vec![vec![0u64; local_words]; d])
                .collect();
            for (per_code, (&column, &domain)) in local.iter_mut().zip(columns.iter().zip(domains))
            {
                for (i, &code) in column[start..end].iter().enumerate() {
                    assert!(
                        (code as usize) < domain,
                        "code {code} out of range for domain {domain}"
                    );
                    per_code[code as usize][i / 64] |= 1u64 << (i % 64);
                }
            }
            local
        });
        let mut bitmaps: Vec<Vec<Bitmap>> = domains
            .iter()
            .map(|&d| vec![Bitmap::zeros(len); d])
            .collect();
        for (shard, &(start, _)) in partials.iter().zip(&bounds) {
            let word_base = start / 64;
            for (per_attr, local_attr) in bitmaps.iter_mut().zip(shard) {
                for (bitmap, local_words) in per_attr.iter_mut().zip(local_attr) {
                    bitmap.words[word_base..word_base + local_words.len()]
                        .copy_from_slice(local_words);
                }
            }
        }
        Self {
            len,
            attrs: attrs.to_vec(),
            bitmaps,
        }
    }

    /// Number of indexed positions (rows or group keys).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index covers zero positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bitmap of `(attr, code)`, if the attribute is indexed and the
    /// code within its domain.
    pub fn bitmap(&self, attr: AttrId, code: u32) -> Option<&Bitmap> {
        let pos = self.attrs.iter().position(|&a| a == attr)?;
        self.bitmaps[pos].get(code as usize)
    }

    /// Evaluates a conjunctive pattern: the AND of the bitmaps named by its
    /// equality terms. Returns `None` when no term constrains an indexed
    /// attribute (everything matches); an out-of-domain code yields an
    /// all-zeros bitmap.
    pub fn select_bitmap(&self, pattern: &Pattern) -> Option<Bitmap> {
        let mut result: Option<Bitmap> = None;
        for &(attr, term) in pattern.terms() {
            let Term::Value(code) = term else { continue };
            if !self.attrs.contains(&attr) {
                continue;
            }
            let term_bitmap = match self.bitmap(attr, code) {
                Some(b) => b.clone(),
                None => Bitmap::zeros(self.len),
            };
            match &mut result {
                None => result = Some(term_bitmap),
                Some(acc) => acc.and_assign(&term_bitmap),
            }
        }
        result
    }

    /// Indices matching the pattern, ascending — bitmap counterpart of
    /// [`Pattern::select`].
    pub fn select(&self, pattern: &Pattern) -> Vec<u32> {
        match self.select_bitmap(pattern) {
            Some(bitmap) => bitmap.iter_ones().collect(),
            None => (0..self.len as u32).collect(),
        }
    }

    /// Matching-position count — bitmap counterpart of [`Pattern::count`].
    pub fn count(&self, pattern: &Pattern) -> u64 {
        match self.select_bitmap(pattern) {
            Some(bitmap) => bitmap.count_ones(),
            None => self.len as u64,
        }
    }

    /// `(support, observed)` of a count query: positions matching the `NA`
    /// pattern, and of those the ones carrying `SA = sa_value` — the bitmap
    /// counterpart of [`CountQuery::answer_with_support`].
    ///
    /// # Panics
    ///
    /// Panics if the query's SA attribute is not covered by this index:
    /// unindexed attributes are "unconstrained" for `NA` terms (matching
    /// [`Pattern::matches_key`]), but an uncounted SA would silently answer
    /// `observed = 0`, so a partial (e.g. keys-only) index is rejected
    /// loudly instead. An SA *code* outside the indexed domain is fine —
    /// no position carries it, so `observed` is genuinely zero.
    pub fn support_and_observed(&self, query: &CountQuery) -> (u64, u64) {
        assert!(
            self.attrs.contains(&query.sa_attr()),
            "SA attribute {} is not covered by this bitmap index",
            query.sa_attr()
        );
        let sa_bitmap = self.bitmap(query.sa_attr(), query.sa_value());
        match self.select_bitmap(query.na_pattern()) {
            Some(na) => {
                let support = na.count_ones();
                let observed = match sa_bitmap {
                    Some(sa) => {
                        let mut both = na;
                        both.and_assign(sa);
                        both.count_ones()
                    }
                    None => 0,
                };
                (support, observed)
            }
            None => (self.len as u64, sa_bitmap.map_or(0, Bitmap::count_ones)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use crate::table::TableBuilder;

    fn demo_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("G", ["a", "b"]),
            Attribute::new("J", ["x", "y", "z"]),
            Attribute::with_anonymous_domain("SA", 4),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..300u32 {
            b.push_codes(&[i % 2, i % 3, i % 4]).unwrap();
        }
        b.build()
    }

    #[test]
    fn bitmap_set_get_count() {
        let mut b = Bitmap::zeros(130);
        assert_eq!(b.count_ones(), 0);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(64) && !b.get(63));
        assert_eq!(b.count_ones(), 3);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn ones_masks_tail_bits() {
        let b = Bitmap::ones(70);
        assert_eq!(b.count_ones(), 70);
        assert_eq!(Bitmap::ones(0).count_ones(), 0);
        assert_eq!(Bitmap::ones(64).count_ones(), 64);
    }

    #[test]
    fn and_assign_intersects() {
        let mut a = Bitmap::zeros(100);
        let mut b = Bitmap::zeros(100);
        for i in (0..100).step_by(2) {
            a.set(i);
        }
        for i in (0..100).step_by(3) {
            b.set(i);
        }
        a.and_assign(&b);
        assert_eq!(
            a.iter_ones().collect::<Vec<_>>(),
            (0..100).step_by(6).map(|i| i as u32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn index_select_matches_scan() {
        let t = demo_table();
        let idx = BitmapIndex::build(&t);
        for pattern in [
            Pattern::from_codes(&[0], &[1]),
            Pattern::from_codes(&[0, 1], &[0, 2]),
            Pattern::new(vec![(0, Term::Wildcard), (1, Term::Value(1))]),
            Pattern::new(vec![]),
            Pattern::from_codes(&[1], &[9]), // out-of-domain code
        ] {
            assert_eq!(idx.select(&pattern), pattern.select(&t), "{pattern:?}");
            assert_eq!(idx.count(&pattern), pattern.count(&t), "{pattern:?}");
        }
    }

    #[test]
    fn support_and_observed_matches_query_scan() {
        let t = demo_table();
        let idx = BitmapIndex::build(&t);
        for query in [
            CountQuery::new(vec![(0, 0)], 2, 1).unwrap(),
            CountQuery::new(vec![(0, 1), (1, 2)], 2, 3).unwrap(),
            CountQuery::new(vec![], 2, 0).unwrap(),
        ] {
            assert_eq!(
                idx.support_and_observed(&query),
                query.answer_with_support(&t),
                "{query:?}"
            );
        }
    }

    #[test]
    fn sharded_build_is_bit_identical() {
        let t = demo_table();
        let attrs: Vec<AttrId> = vec![0, 1, 2];
        let columns: Vec<&[u32]> = attrs.iter().map(|&a| t.column(a).codes()).collect();
        let domains = vec![2, 3, 4];
        let reference = BitmapIndex::from_columns(&attrs, &columns, &domains, 1, 1);
        for shards in [2, 3, 7, 64] {
            for threads in [1, 3] {
                let sharded =
                    BitmapIndex::from_columns(&attrs, &columns, &domains, shards, threads);
                assert_eq!(reference, sharded, "shards={shards} threads={threads}");
            }
        }
    }

    #[test]
    fn unindexed_attribute_is_unconstrained() {
        let t = demo_table();
        let attrs: Vec<AttrId> = vec![0];
        let columns: Vec<&[u32]> = vec![t.column(0).codes()];
        let idx = BitmapIndex::from_columns(&attrs, &columns, &[2], 1, 1);
        // A term on attribute 1 constrains nothing in a keys-only index.
        let p = Pattern::from_codes(&[0, 1], &[1, 2]);
        assert_eq!(idx.count(&p), 150);
        assert!(idx.bitmap(1, 0).is_none());
    }

    #[test]
    fn empty_index() {
        let idx = BitmapIndex::from_columns(&[0], &[&[]], &[3], 4, 2);
        assert!(idx.is_empty());
        assert_eq!(idx.count(&Pattern::from_codes(&[0], &[1])), 0);
        assert_eq!(idx.select(&Pattern::new(vec![])), Vec::<u32>::new());
    }
}
