//! Predicates over table rows: conjunctions of equality conditions with
//! wildcard support.
//!
//! This mirrors the paper's `D(x1, ..., xn)` notation, where each `xi` is
//! either a domain value of attribute `Ai` or the wildcard `⁎` that matches
//! every value. A pattern with no wildcards selects a *personal group*; a
//! pattern with at least one wildcard selects an *aggregate group*
//! (Section 3.2).

use crate::error::TableError;
use crate::schema::{AttrId, Schema};
use crate::table::Table;

/// One coordinate of a selection pattern: a concrete value code or the
/// wildcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// Matches every domain value of the attribute.
    Wildcard,
    /// Matches exactly this code.
    Value(u32),
}

impl Term {
    /// Whether this term matches `code`.
    #[inline]
    pub fn matches(&self, code: u32) -> bool {
        match self {
            Term::Wildcard => true,
            Term::Value(v) => *v == code,
        }
    }

    /// Whether this term is the wildcard.
    pub fn is_wildcard(&self) -> bool {
        matches!(self, Term::Wildcard)
    }
}

/// A selection pattern `(x1, ..., xk)` over a subset of attributes: the
/// conjunction of equality conditions, with wildcards allowed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    terms: Vec<(AttrId, Term)>,
}

impl Pattern {
    /// Creates a pattern from explicit `(attribute, term)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the same attribute appears twice.
    pub fn new(terms: Vec<(AttrId, Term)>) -> Self {
        for (i, (a, _)) in terms.iter().enumerate() {
            for (b, _) in &terms[i + 1..] {
                assert!(a != b, "attribute {a} appears twice in pattern");
            }
        }
        Self { terms }
    }

    /// Creates the all-wildcard pattern over `attrs` (matches everything).
    pub fn all_wildcards(attrs: &[AttrId]) -> Self {
        Self::new(attrs.iter().map(|&a| (a, Term::Wildcard)).collect())
    }

    /// Creates a fully-specified (no wildcard) pattern from parallel slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or repeat an attribute.
    pub fn from_codes(attrs: &[AttrId], codes: &[u32]) -> Self {
        assert_eq!(attrs.len(), codes.len(), "attrs and codes must be parallel");
        Self::new(
            attrs
                .iter()
                .zip(codes)
                .map(|(&a, &c)| (a, Term::Value(c)))
                .collect(),
        )
    }

    /// The `(attribute, term)` pairs.
    pub fn terms(&self) -> &[(AttrId, Term)] {
        &self.terms
    }

    /// Number of non-wildcard conditions (the query dimensionality `d` of
    /// Section 6).
    pub fn dimensionality(&self) -> usize {
        self.terms.iter().filter(|(_, t)| !t.is_wildcard()).count()
    }

    /// Whether this pattern has at least one wildcard among its terms.
    pub fn has_wildcard(&self) -> bool {
        self.terms.iter().any(|(_, t)| t.is_wildcard())
    }

    /// Validates the pattern against a schema (attribute ids in range, codes
    /// within their domains).
    pub fn validate(&self, schema: &Schema) -> Result<(), TableError> {
        for &(attr, term) in &self.terms {
            schema.get(attr)?;
            if let Term::Value(code) = term {
                schema.check_code(attr, code)?;
            }
        }
        Ok(())
    }

    /// Whether row `row` of `table` satisfies every term.
    #[inline]
    pub fn matches_row(&self, table: &Table, row: usize) -> bool {
        self.terms
            .iter()
            .all(|&(attr, term)| term.matches(table.code(row, attr)))
    }

    /// Indices of all rows of `table` matching the pattern.
    pub fn select(&self, table: &Table) -> Vec<u32> {
        (0..table.rows())
            .filter(|&r| self.matches_row(table, r))
            .map(|r| r as u32)
            .collect()
    }

    /// Number of rows of `table` matching the pattern (a COUNT(*) without
    /// materializing indices).
    pub fn count(&self, table: &Table) -> u64 {
        (0..table.rows())
            .filter(|&r| self.matches_row(table, r))
            .count() as u64
    }

    /// Whether a group key (codes over `attrs`, in the same order) satisfies
    /// the pattern. Attributes absent from `attrs` are treated as wildcards.
    pub fn matches_key(&self, attrs: &[AttrId], key: &[u32]) -> bool {
        self.terms.iter().all(
            |&(attr, term)| match attrs.iter().position(|&a| a == attr) {
                Some(i) => term.matches(key[i]),
                None => true,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use crate::table::TableBuilder;

    fn demo_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("Gender", ["male", "female"]),
            Attribute::new("Job", ["eng", "doc"]),
            Attribute::new("Disease", ["flu", "hiv", "bc"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for row in [
            ["male", "eng", "flu"],
            ["male", "eng", "hiv"],
            ["female", "doc", "bc"],
            ["female", "eng", "flu"],
            ["male", "doc", "flu"],
        ] {
            b.push_values(&row).unwrap();
        }
        b.build()
    }

    #[test]
    fn personal_pattern_selects_exact_rows() {
        let t = demo_table();
        // male ∧ eng
        let p = Pattern::from_codes(&[0, 1], &[0, 0]);
        assert_eq!(p.select(&t), vec![0, 1]);
        assert_eq!(p.count(&t), 2);
        assert!(!p.has_wildcard());
        assert_eq!(p.dimensionality(), 2);
    }

    #[test]
    fn wildcard_pattern_is_aggregate() {
        let t = demo_table();
        // ⁎ ∧ eng
        let p = Pattern::new(vec![(0, Term::Wildcard), (1, Term::Value(0))]);
        assert_eq!(p.select(&t), vec![0, 1, 3]);
        assert!(p.has_wildcard());
        assert_eq!(p.dimensionality(), 1);
    }

    #[test]
    fn all_wildcards_matches_everything() {
        let t = demo_table();
        let p = Pattern::all_wildcards(&[0, 1, 2]);
        assert_eq!(p.count(&t), 5);
        assert_eq!(p.dimensionality(), 0);
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let t = demo_table();
        let p = Pattern::new(vec![]);
        assert_eq!(p.count(&t), 5);
        assert!(!p.has_wildcard());
    }

    #[test]
    fn validate_catches_bad_terms() {
        let t = demo_table();
        let bad_attr = Pattern::new(vec![(7, Term::Value(0))]);
        assert!(bad_attr.validate(t.schema()).is_err());
        let bad_code = Pattern::new(vec![(0, Term::Value(9))]);
        assert!(bad_code.validate(t.schema()).is_err());
        let ok = Pattern::new(vec![(0, Term::Value(1)), (2, Term::Wildcard)]);
        assert!(ok.validate(t.schema()).is_ok());
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_attribute_rejected() {
        Pattern::new(vec![(0, Term::Value(0)), (0, Term::Value(1))]);
    }

    #[test]
    fn matches_key_ignores_absent_attrs() {
        // Pattern over Gender=male, Disease=flu; keys only carry Gender+Job.
        let p = Pattern::new(vec![(0, Term::Value(0)), (2, Term::Value(0))]);
        assert!(p.matches_key(&[0, 1], &[0, 1]));
        assert!(!p.matches_key(&[0, 1], &[1, 1]));
        // With Disease present in the key, it is enforced.
        assert!(!p.matches_key(&[0, 2], &[0, 1]));
        assert!(p.matches_key(&[0, 2], &[0, 0]));
    }

    #[test]
    fn count_matches_select_len() {
        let t = demo_table();
        for p in [
            Pattern::from_codes(&[2], &[0]),
            Pattern::new(vec![(1, Term::Value(1)), (2, Term::Wildcard)]),
        ] {
            assert_eq!(p.count(&t) as usize, p.select(&t).len());
        }
    }
}
