//! Group-by machinery: partitioning a table into the equivalence classes of
//! its public attributes.
//!
//! A *personal group* `D(x1, ..., xn)` contains all records agreeing on
//! every public attribute (Section 3.2 of the paper). The paper's SPS
//! algorithm obtains them by sorting on `NA` followed by `SA`; a hash-based
//! group-by is provided as well and kept as an ablation target
//! (DESIGN.md §6.1) — both produce identical partitions, normalized to key
//! order.

use std::collections::HashMap;

use crate::schema::AttrId;
use crate::table::Table;

/// One group: its key (codes over the grouping attributes, in the order they
/// were supplied) and the member row indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Codes of the grouping attributes identifying this group.
    pub key: Vec<u32>,
    /// Row indices (into the grouped table) of the group's members.
    pub rows: Vec<u32>,
}

impl Group {
    /// Group size `|g|`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the group is empty (cannot happen for groups produced by the
    /// group-by operators, but useful for hand-built groups in tests).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// The result of partitioning a table by a set of attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grouping {
    attrs: Vec<AttrId>,
    groups: Vec<Group>,
}

impl Grouping {
    /// The grouping attributes, in the order used to build keys.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// All groups, sorted by key.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// Number of groups, `|G|`.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Average group size `|D| / |G|`.
    ///
    /// # Panics
    ///
    /// Panics if there are no groups.
    pub fn average_size(&self) -> f64 {
        assert!(!self.is_empty(), "no groups to average over");
        let total: usize = self.groups.iter().map(Group::len).sum();
        total as f64 / self.groups.len() as f64
    }
}

/// Hash-based group-by: one pass, `O(|D|)` expected.
///
/// # Panics
///
/// Panics if `attrs` is empty or contains an out-of-range attribute.
pub fn group_by_hash(table: &Table, attrs: &[AttrId]) -> Grouping {
    assert!(!attrs.is_empty(), "grouping needs at least one attribute");
    for &a in attrs {
        assert!(a < table.schema().arity(), "attribute {a} out of range");
    }
    let mut map: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
    for row in 0..table.rows() {
        let key: Vec<u32> = attrs.iter().map(|&a| table.code(row, a)).collect();
        map.entry(key).or_default().push(row as u32);
    }
    let mut groups: Vec<Group> = map
        .into_iter()
        .map(|(key, rows)| Group { key, rows })
        .collect();
    groups.sort_by(|a, b| a.key.cmp(&b.key));
    Grouping {
        attrs: attrs.to_vec(),
        groups,
    }
}

/// Sort-based group-by, the `O(|D| log |D|)` strategy prescribed by the
/// paper's SPS preprocessing: sort row indices by the grouping attributes,
/// then cut the sorted run into groups with one scan.
///
/// # Panics
///
/// Panics if `attrs` is empty or contains an out-of-range attribute.
pub fn group_by_sort(table: &Table, attrs: &[AttrId]) -> Grouping {
    assert!(!attrs.is_empty(), "grouping needs at least one attribute");
    for &a in attrs {
        assert!(a < table.schema().arity(), "attribute {a} out of range");
    }
    let mut order: Vec<u32> = (0..table.rows() as u32).collect();
    order.sort_by(|&x, &y| {
        for &a in attrs {
            let cx = table.code(x as usize, a);
            let cy = table.code(y as usize, a);
            match cx.cmp(&cy) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    });
    let mut groups = Vec::new();
    let mut start = 0usize;
    while start < order.len() {
        let key: Vec<u32> = attrs
            .iter()
            .map(|&a| table.code(order[start] as usize, a))
            .collect();
        let mut end = start + 1;
        while end < order.len()
            && attrs.iter().all(|&a| {
                table.code(order[end] as usize, a) == table.code(order[start] as usize, a)
            })
        {
            end += 1;
        }
        groups.push(Group {
            key,
            rows: order[start..end].to_vec(),
        });
        start = end;
    }
    Grouping {
        attrs: attrs.to_vec(),
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use crate::table::TableBuilder;

    fn demo_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("Gender", ["male", "female"]),
            Attribute::new("Job", ["eng", "doc"]),
            Attribute::new("Disease", ["flu", "hiv", "bc"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for row in [
            ["male", "eng", "flu"],
            ["female", "doc", "bc"],
            ["male", "eng", "hiv"],
            ["female", "eng", "flu"],
            ["male", "doc", "flu"],
            ["male", "eng", "flu"],
        ] {
            b.push_values(&row).unwrap();
        }
        b.build()
    }

    #[test]
    fn hash_groups_partition_rows() {
        let t = demo_table();
        let g = group_by_hash(&t, &[0, 1]);
        assert_eq!(g.len(), 4); // (m,e), (m,d), (f,e), (f,d)
        let total: usize = g.groups().iter().map(Group::len).sum();
        assert_eq!(total, t.rows());
        // Every row appears exactly once.
        let mut seen = vec![false; t.rows()];
        for grp in g.groups() {
            for &r in &grp.rows {
                assert!(!seen[r as usize], "row {r} in two groups");
                seen[r as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hash_and_sort_agree() {
        let t = demo_table();
        for attrs in [vec![0], vec![1], vec![0, 1], vec![0, 1, 2]] {
            let h = group_by_hash(&t, &attrs);
            let mut s = group_by_sort(&t, &attrs);
            // Sort rows within groups for comparison (hash preserves row
            // order already; sort-based uses a stable sort so it does too,
            // but normalize anyway).
            let normalize = |g: &mut Grouping| {
                for grp in &mut g.groups {
                    grp.rows.sort_unstable();
                }
            };
            let mut h = h.clone();
            normalize(&mut h);
            normalize(&mut s);
            assert_eq!(h, s, "strategies disagree on attrs {attrs:?}");
        }
    }

    #[test]
    fn groups_sorted_by_key() {
        let t = demo_table();
        let g = group_by_hash(&t, &[0, 1]);
        let keys: Vec<&Vec<u32>> = g.groups().iter().map(|grp| &grp.key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn group_members_match_key() {
        let t = demo_table();
        let g = group_by_sort(&t, &[0, 1]);
        for grp in g.groups() {
            for &r in &grp.rows {
                for (i, &a) in g.attrs().iter().enumerate() {
                    assert_eq!(t.code(r as usize, a), grp.key[i]);
                }
            }
        }
    }

    #[test]
    fn average_size() {
        let t = demo_table();
        let g = group_by_hash(&t, &[0, 1]);
        let expected = t.rows() as f64 / g.len() as f64;
        assert!((g.average_size() - expected).abs() < 1e-12);
    }

    #[test]
    fn single_attribute_grouping() {
        let t = demo_table();
        let g = group_by_sort(&t, &[0]);
        assert_eq!(g.len(), 2);
        let male = &g.groups()[0];
        assert_eq!(male.key, vec![0]);
        assert_eq!(male.len(), 4);
    }

    #[test]
    fn empty_table_has_no_groups() {
        let schema = Schema::new(vec![Attribute::new("A", ["x", "y"])]);
        let t = TableBuilder::new(schema).build();
        assert!(group_by_hash(&t, &[0]).is_empty());
        assert!(group_by_sort(&t, &[0]).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_attrs_rejected() {
        group_by_hash(&demo_table(), &[]);
    }
}
