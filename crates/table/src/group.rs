//! Group-by machinery: partitioning a table into the equivalence classes of
//! its public attributes.
//!
//! A *personal group* `D(x1, ..., xn)` contains all records agreeing on
//! every public attribute (Section 3.2 of the paper). The paper's SPS
//! algorithm obtains them by sorting on `NA` followed by `SA`; a hash-based
//! group-by is provided as well and kept as an ablation target
//! (DESIGN.md §6.1) — both produce identical partitions, normalized to key
//! order.
//!
//! All strategies run on *packed keys*: the grouping columns are folded into
//! one mixed-radix `u64` per row, column by column, so comparisons, hashing
//! and bucketing touch a single machine word instead of re-reading the table
//! per attribute. Tables whose key-domain cross product overflows `u64`
//! fall back to materialized `Vec<u32>` keys. [`group_by_hash_sharded`]
//! additionally splits the rows into `K` hash-disjoint shards with a
//! deterministic merge, so the result is identical for every shard and
//! thread count.

use std::collections::HashMap;

use crate::parallel::run_shards;
use crate::schema::AttrId;
use crate::table::Table;

/// One group: its key (codes over the grouping attributes, in the order they
/// were supplied) and the member row indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Codes of the grouping attributes identifying this group.
    pub key: Vec<u32>,
    /// Row indices (into the grouped table) of the group's members.
    pub rows: Vec<u32>,
}

impl Group {
    /// Group size `|g|`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the group is empty (cannot happen for groups produced by the
    /// group-by operators, but useful for hand-built groups in tests).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// The result of partitioning a table by a set of attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grouping {
    attrs: Vec<AttrId>,
    groups: Vec<Group>,
}

impl Grouping {
    /// The grouping attributes, in the order used to build keys.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// All groups, sorted by key.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// Number of groups, `|G|`.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Average group size `|D| / |G|`.
    ///
    /// # Panics
    ///
    /// Panics if there are no groups.
    pub fn average_size(&self) -> f64 {
        assert!(!self.is_empty(), "no groups to average over");
        let total: usize = self.groups.iter().map(Group::len).sum();
        total as f64 / self.groups.len() as f64
    }
}

fn check_attrs(table: &Table, attrs: &[AttrId]) {
    assert!(!attrs.is_empty(), "grouping needs at least one attribute");
    for &a in attrs {
        assert!(a < table.schema().arity(), "attribute {a} out of range");
    }
}

/// Mixed-radix packing of the grouping columns: one `u64` key per row,
/// accumulated column by column (`key = key * domain + code`), plus the
/// radices needed to decode. `None` when the domain cross product overflows
/// `u64` (the callers then fall back to materialized keys). Packed keys
/// compare in the same order as the code tuples, so sorting them sorts the
/// groups lexicographically.
fn pack_keys(table: &Table, attrs: &[AttrId]) -> Option<(Vec<u64>, Vec<u64>)> {
    let mut product: u128 = 1;
    let mut radices = Vec::with_capacity(attrs.len());
    for &a in attrs {
        let d = table.schema().attribute(a).domain_size().max(1) as u128;
        product = product.checked_mul(d)?;
        if product > u64::MAX as u128 {
            return None;
        }
        radices.push(d as u64);
    }
    let mut keys = vec![0u64; table.rows()];
    for (&a, &d) in attrs.iter().zip(&radices) {
        let column = table.column(a).codes();
        for (key, &code) in keys.iter_mut().zip(column) {
            *key = *key * d + u64::from(code);
        }
    }
    Some((keys, radices))
}

/// Decodes a mixed-radix key back into its code tuple (inverse of
/// [`pack_keys`]' accumulation).
fn unpack_key(mut key: u64, radices: &[u64]) -> Vec<u32> {
    let mut codes = vec![0u32; radices.len()];
    for (code, &d) in codes.iter_mut().zip(radices).rev() {
        *code = (key % d) as u32;
        key /= d;
    }
    codes
}

/// Materialized row keys for the (rare) unpackable case: one flat buffer,
/// keys compared as `&[u32]` slices.
fn materialize_keys(table: &Table, attrs: &[AttrId]) -> Vec<u32> {
    let mut flat = vec![0u32; table.rows() * attrs.len()];
    for (i, &a) in attrs.iter().enumerate() {
        let column = table.column(a).codes();
        for (row, &code) in column.iter().enumerate() {
            flat[row * attrs.len() + i] = code;
        }
    }
    flat
}

/// Cuts sorted `(key, row)` pairs into groups.
fn cut_runs(pairs: &[(u64, u32)], radices: &[u64]) -> Vec<Group> {
    let mut groups = Vec::new();
    let mut start = 0usize;
    while start < pairs.len() {
        let key = pairs[start].0;
        let mut end = start + 1;
        while end < pairs.len() && pairs[end].0 == key {
            end += 1;
        }
        groups.push(Group {
            key: unpack_key(key, radices),
            rows: pairs[start..end].iter().map(|&(_, r)| r).collect(),
        });
        start = end;
    }
    groups
}

/// Direct-address grouping over packed `(key, row)` pairs: count per key,
/// then scatter rows in pair order (ascending rows in ⇒ ascending rows per
/// group out). `O(pairs + product)`; only used when the key space is
/// comparable to the row count. Two passes, hence the `Clone` iterator.
fn group_by_counting<I>(pairs: I, count: usize, product: usize, radices: &[u64]) -> Vec<Group>
where
    I: Iterator<Item = (u64, u32)> + Clone,
{
    let mut counts = vec![0u32; product];
    for (k, _) in pairs.clone() {
        counts[k as usize] += 1;
    }
    // Ascending-key prefix sums double as scatter cursors.
    let mut starts = vec![0u32; product];
    let mut running = 0u32;
    for (start, &count) in starts.iter_mut().zip(&counts) {
        *start = running;
        running += count;
    }
    let mut cursors = starts.clone();
    let mut rows_flat = vec![0u32; count];
    for (k, row) in pairs {
        let cursor = &mut cursors[k as usize];
        rows_flat[*cursor as usize] = row;
        *cursor += 1;
    }
    counts
        .iter()
        .enumerate()
        .filter(|&(_, &count)| count > 0)
        .map(|(k, &count)| {
            let start = starts[k] as usize;
            Group {
                key: unpack_key(k as u64, radices),
                rows: rows_flat[start..start + count as usize].to_vec(),
            }
        })
        .collect()
}

/// Above this key-space size the hash strategy stops direct addressing and
/// buckets through a `HashMap` instead.
const DIRECT_ADDRESS_MAX: usize = 1 << 22;

/// Whether a packed key space of `product` cells is worth direct
/// addressing for `rows` rows: the `O(product)` count/scatter tables must
/// be comparable to the row count (small products are always fine — the
/// tables fit in cache), and are capped at [`DIRECT_ADDRESS_MAX`] outright.
fn direct_addressable(product: u128, rows: usize) -> bool {
    product <= DIRECT_ADDRESS_MAX as u128 && product <= (4 * rows).max(1 << 16) as u128
}

/// Hash-based group-by: one pass, `O(|D|)` expected.
///
/// Keys are packed into single `u64`s; when the key space is small enough
/// the "hash" degenerates to direct addressing (a perfect hash over the
/// mixed-radix key), otherwise a `HashMap` over the packed keys is used.
/// Both produce groups sorted by key with member rows ascending.
///
/// # Panics
///
/// Panics if `attrs` is empty or contains an out-of-range attribute.
pub fn group_by_hash(table: &Table, attrs: &[AttrId]) -> Grouping {
    check_attrs(table, attrs);
    if let Some((keys, radices)) = pack_keys(table, attrs) {
        let product: u128 = radices.iter().map(|&d| d as u128).product();
        let groups = if direct_addressable(product, keys.len()) {
            group_by_counting(
                keys.iter().copied().zip(0u32..),
                keys.len(),
                product as usize,
                &radices,
            )
        } else {
            let mut map: HashMap<u64, Vec<u32>> = HashMap::new();
            for (row, &k) in keys.iter().enumerate() {
                map.entry(k).or_default().push(row as u32);
            }
            // rp-analyze: allow(determinism, "collected then sorted by packed key on the next line before emission")
            let mut pairs: Vec<(u64, Vec<u32>)> = map.into_iter().collect();
            pairs.sort_unstable_by_key(|&(k, _)| k);
            pairs
                .into_iter()
                .map(|(k, rows)| Group {
                    key: unpack_key(k, &radices),
                    rows,
                })
                .collect()
        };
        return Grouping {
            attrs: attrs.to_vec(),
            groups,
        };
    }
    // Unpackable key space: hash materialized Vec<u32> keys.
    let mut map: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
    for row in 0..table.rows() {
        let key: Vec<u32> = attrs.iter().map(|&a| table.code(row, a)).collect();
        map.entry(key).or_default().push(row as u32);
    }
    let mut groups: Vec<Group> = map
        // rp-analyze: allow(determinism, "collected then sorted by key below before emission")
        .into_iter()
        .map(|(key, rows)| Group { key, rows })
        .collect();
    groups.sort_by(|a, b| a.key.cmp(&b.key));
    Grouping {
        attrs: attrs.to_vec(),
        groups,
    }
}

/// Sort-based group-by, the `O(|D| log |D|)` strategy prescribed by the
/// paper's SPS preprocessing: sort `(packed key, row)` pairs — one `u64`
/// compare per step instead of a per-attribute column walk — then cut the
/// sorted run into groups with one scan.
///
/// # Panics
///
/// Panics if `attrs` is empty or contains an out-of-range attribute.
pub fn group_by_sort(table: &Table, attrs: &[AttrId]) -> Grouping {
    check_attrs(table, attrs);
    if let Some((keys, radices)) = pack_keys(table, attrs) {
        let mut pairs: Vec<(u64, u32)> = keys.into_iter().zip(0u32..).collect();
        pairs.sort_unstable();
        return Grouping {
            attrs: attrs.to_vec(),
            groups: cut_runs(&pairs, &radices),
        };
    }
    // Unpackable key space: sort row indices over materialized keys.
    let width = attrs.len();
    let flat = materialize_keys(table, attrs);
    let mut order: Vec<u32> = (0..table.rows() as u32).collect();
    order.sort_by_key(|&r| &flat[r as usize * width..(r as usize + 1) * width]);
    let mut groups = Vec::new();
    let mut start = 0usize;
    while start < order.len() {
        let key = &flat[order[start] as usize * width..(order[start] as usize + 1) * width];
        let mut end = start + 1;
        while end < order.len()
            && &flat[order[end] as usize * width..(order[end] as usize + 1) * width] == key
        {
            end += 1;
        }
        groups.push(Group {
            key: key.to_vec(),
            rows: order[start..end].to_vec(),
        });
        start = end;
    }
    Grouping {
        attrs: attrs.to_vec(),
        groups,
    }
}

/// Finalizer step of SplitMix64 — mixes a packed key into a well-spread
/// shard hash. Fixed constants, so shard assignment is deterministic across
/// runs, platforms and thread counts.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over a code tuple, for the unpackable fallback.
#[inline]
fn fnv1a(codes: &[u32]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &c in codes {
        for byte in c.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// Sharded hash group-by: rows are dealt to `shards` hash-disjoint shards
/// (every row of a group lands in the same shard), each shard is grouped
/// independently — on up to `threads` scoped workers — and the per-shard
/// results are merged by a global key sort.
///
/// The output is identical to [`group_by_hash`] for **every** combination
/// of `shards` and `threads` (groups sorted by key, member rows ascending):
/// sharding is purely an execution strategy, never an observable one.
///
/// # Panics
///
/// Panics if `attrs` is empty, contains an out-of-range attribute, or
/// `shards == 0`.
pub fn group_by_hash_sharded(
    table: &Table,
    attrs: &[AttrId],
    shards: usize,
    threads: usize,
) -> Grouping {
    check_attrs(table, attrs);
    assert!(shards > 0, "need at least one shard");
    if shards == 1 {
        return group_by_hash(table, attrs);
    }
    let mut groups: Vec<Group> = if let Some((keys, radices)) = pack_keys(table, attrs) {
        // Deal (key, row) pairs to shards; push order keeps rows ascending.
        let mut buckets: Vec<Vec<(u64, u32)>> = vec![Vec::new(); shards];
        for (row, &k) in keys.iter().enumerate() {
            buckets[(splitmix64(k) % shards as u64) as usize].push((k, row as u32));
        }
        let product: u128 = radices.iter().map(|&d| d as u128).product();
        let radices = &radices;
        run_shards(shards, threads, |s| {
            let pairs = &buckets[s];
            // Decide per shard: the count/scatter tables span the *global*
            // key space, so they must be justified by this shard's own row
            // count — otherwise every shard would pay (and, threaded, hold)
            // product-sized allocations for a fraction of the rows.
            if direct_addressable(product, pairs.len()) {
                group_by_counting(
                    pairs.iter().copied(),
                    pairs.len(),
                    product as usize,
                    radices,
                )
            } else {
                let mut pairs = pairs.clone();
                pairs.sort_unstable();
                cut_runs(&pairs, radices)
            }
        })
        .into_iter()
        .flatten()
        .collect()
    } else {
        let width = attrs.len();
        let flat = materialize_keys(table, attrs);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for row in 0..table.rows() {
            let key = &flat[row * width..(row + 1) * width];
            buckets[(fnv1a(key) % shards as u64) as usize].push(row as u32);
        }
        let flat = &flat;
        run_shards(shards, threads, |s| {
            let mut map: HashMap<&[u32], Vec<u32>> = HashMap::new();
            for &row in &buckets[s] {
                let key = &flat[row as usize * width..(row as usize + 1) * width];
                map.entry(key).or_default().push(row);
            }
            let mut groups: Vec<Group> = map
                // rp-analyze: allow(determinism, "per-shard groups are collected then sorted by key before the shards are merged")
                .into_iter()
                .map(|(key, rows)| Group {
                    key: key.to_vec(),
                    rows,
                })
                .collect();
            groups.sort_by(|a, b| a.key.cmp(&b.key));
            groups
        })
        .into_iter()
        .flatten()
        .collect()
    };
    // Shards hold disjoint key sets, so one global sort restores key order.
    groups.sort_by(|a, b| a.key.cmp(&b.key));
    Grouping {
        attrs: attrs.to_vec(),
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use crate::table::TableBuilder;

    fn demo_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("Gender", ["male", "female"]),
            Attribute::new("Job", ["eng", "doc"]),
            Attribute::new("Disease", ["flu", "hiv", "bc"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for row in [
            ["male", "eng", "flu"],
            ["female", "doc", "bc"],
            ["male", "eng", "hiv"],
            ["female", "eng", "flu"],
            ["male", "doc", "flu"],
            ["male", "eng", "flu"],
        ] {
            b.push_values(&row).unwrap();
        }
        b.build()
    }

    #[test]
    fn hash_groups_partition_rows() {
        let t = demo_table();
        let g = group_by_hash(&t, &[0, 1]);
        assert_eq!(g.len(), 4); // (m,e), (m,d), (f,e), (f,d)
        let total: usize = g.groups().iter().map(Group::len).sum();
        assert_eq!(total, t.rows());
        // Every row appears exactly once.
        let mut seen = vec![false; t.rows()];
        for grp in g.groups() {
            for &r in &grp.rows {
                assert!(!seen[r as usize], "row {r} in two groups");
                seen[r as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hash_and_sort_agree() {
        let t = demo_table();
        for attrs in [vec![0], vec![1], vec![0, 1], vec![0, 1, 2]] {
            let h = group_by_hash(&t, &attrs);
            let mut s = group_by_sort(&t, &attrs);
            // Sort rows within groups for comparison (hash preserves row
            // order already; sort-based uses a stable sort so it does too,
            // but normalize anyway).
            let normalize = |g: &mut Grouping| {
                for grp in &mut g.groups {
                    grp.rows.sort_unstable();
                }
            };
            let mut h = h.clone();
            normalize(&mut h);
            normalize(&mut s);
            assert_eq!(h, s, "strategies disagree on attrs {attrs:?}");
        }
    }

    #[test]
    fn groups_sorted_by_key() {
        let t = demo_table();
        let g = group_by_hash(&t, &[0, 1]);
        let keys: Vec<&Vec<u32>> = g.groups().iter().map(|grp| &grp.key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn group_members_match_key() {
        let t = demo_table();
        let g = group_by_sort(&t, &[0, 1]);
        for grp in g.groups() {
            for &r in &grp.rows {
                for (i, &a) in g.attrs().iter().enumerate() {
                    assert_eq!(t.code(r as usize, a), grp.key[i]);
                }
            }
        }
    }

    #[test]
    fn average_size() {
        let t = demo_table();
        let g = group_by_hash(&t, &[0, 1]);
        let expected = t.rows() as f64 / g.len() as f64;
        assert!((g.average_size() - expected).abs() < 1e-12);
    }

    #[test]
    fn single_attribute_grouping() {
        let t = demo_table();
        let g = group_by_sort(&t, &[0]);
        assert_eq!(g.len(), 2);
        let male = &g.groups()[0];
        assert_eq!(male.key, vec![0]);
        assert_eq!(male.len(), 4);
    }

    #[test]
    fn empty_table_has_no_groups() {
        let schema = Schema::new(vec![Attribute::new("A", ["x", "y"])]);
        let t = TableBuilder::new(schema).build();
        assert!(group_by_hash(&t, &[0]).is_empty());
        assert!(group_by_sort(&t, &[0]).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_attrs_rejected() {
        group_by_hash(&demo_table(), &[]);
    }

    #[test]
    fn sharded_matches_unsharded_for_all_k_and_threads() {
        let t = demo_table();
        let reference = group_by_hash(&t, &[0, 1]);
        for shards in [1, 2, 3, 8, 64] {
            for threads in [1, 4] {
                let sharded = group_by_hash_sharded(&t, &[0, 1], shards, threads);
                assert_eq!(reference, sharded, "K={shards} threads={threads}");
            }
        }
    }

    /// Five attributes with 2^16 values each: the 2^80 key space cannot be
    /// packed into a u64, exercising the materialized-key fallbacks.
    fn unpackable_table() -> Table {
        let schema = Schema::new(
            (0..5)
                .map(|i| Attribute::with_anonymous_domain(format!("A{i}"), 1 << 16))
                .collect(),
        );
        let mut b = TableBuilder::new(schema);
        for i in 0..200u32 {
            b.push_codes(&[i % 3, (i % 5) * 1000, i % 2, 65_535 - (i % 4), i % 7])
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn unpackable_key_space_falls_back_consistently() {
        let t = unpackable_table();
        let attrs = [0, 1, 2, 3, 4];
        let s = group_by_sort(&t, &attrs);
        let h = group_by_hash(&t, &attrs);
        assert_eq!(s, h);
        let total: usize = s.groups().iter().map(Group::len).sum();
        assert_eq!(total, t.rows());
        for shards in [1, 4, 9] {
            assert_eq!(s, group_by_hash_sharded(&t, &attrs, shards, 2));
        }
    }

    #[test]
    fn packed_key_order_matches_lexicographic() {
        let t = demo_table();
        let g = group_by_sort(&t, &[1, 0]); // non-schema attribute order
        let keys: Vec<&Vec<u32>> = g.groups().iter().map(|grp| &grp.key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // Keys are in the supplied attribute order (Job first).
        for grp in g.groups() {
            for &r in &grp.rows {
                assert_eq!(t.code(r as usize, 1), grp.key[0]);
                assert_eq!(t.code(r as usize, 0), grp.key[1]);
            }
        }
    }
}
