//! Deterministic shard fan-out: run `shards` independent jobs, optionally on
//! a scoped thread pool, and return their results in shard order.
//!
//! Every sharded kernel in the workspace (grouping, bitmap-index
//! construction, per-group histograms) is written as "shard → independent
//! result, then an order-preserving merge", so the output is a pure function
//! of the input and the shard count — never of the thread count. This helper
//! owns the only `std::thread` usage: shard indices are dealt round-robin to
//! at most `threads` workers and results are reassembled by index.

/// Runs `f(0), f(1), ..., f(shards - 1)` and returns the results in shard
/// order. With `threads <= 1` (or fewer than two shards) everything runs on
/// the calling thread; otherwise shards are distributed round-robin over
/// `min(threads, shards)` scoped workers. The result is identical either
/// way for any pure `f`.
///
/// # Panics
///
/// Panics if `f` panics (the panic is propagated from the worker).
pub fn run_shards<T, F>(shards: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || shards <= 1 {
        return (0..shards).map(f).collect();
    }
    let workers = threads.min(shards);
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(shards).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                scope.spawn(move || {
                    (w..shards)
                        .step_by(workers)
                        .map(|shard| (shard, f(shard)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (shard, result) in handle.join().expect("shard worker panicked") {
                slots[shard] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every shard produces a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_shard_order() {
        for threads in [1, 2, 5, 16] {
            let out = run_shards(11, threads, |s| s * s);
            assert_eq!(out, (0..11).map(|s| s * s).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_and_single_shard() {
        assert_eq!(run_shards(0, 4, |s| s), Vec::<usize>::new());
        assert_eq!(run_shards(1, 4, |s| s + 7), vec![7]);
    }

    #[test]
    fn threaded_matches_sequential() {
        let sequential = run_shards(23, 1, |s| (0..=s).sum::<usize>());
        let threaded = run_shards(23, 8, |s| (0..=s).sum::<usize>());
        assert_eq!(sequential, threaded);
    }
}
