//! Relational utility operations on tables: projection, row filtering and
//! vertical concatenation.
//!
//! Small by design — just the operations the privacy workflows need when
//! preparing data (dropping identifier columns before publication,
//! stacking partitions, filtering cohorts).

use crate::error::TableError;
use crate::predicate::Pattern;
use crate::schema::{AttrId, Schema};
use crate::table::{Column, Table};

/// Projects a table onto a subset of attributes (in the given order).
///
/// # Errors
///
/// Returns an error if `attrs` is empty, repeats an attribute, or contains
/// an out-of-range id.
pub fn project(table: &Table, attrs: &[AttrId]) -> Result<Table, TableError> {
    if attrs.is_empty() {
        return Err(TableError::ArityMismatch {
            got: 0,
            expected: 1,
        });
    }
    for (i, a) in attrs.iter().enumerate() {
        table.schema().get(*a)?;
        if attrs[i + 1..].contains(a) {
            return Err(TableError::UnknownAttribute(format!(
                "attribute {a} repeated in projection"
            )));
        }
    }
    let schema = Schema::new(
        attrs
            .iter()
            .map(|&a| table.schema().attribute(a).clone())
            .collect(),
    );
    let columns = attrs.iter().map(|&a| table.column(a).clone()).collect();
    Table::from_columns(schema, columns)
}

/// Keeps only the rows matching `pattern`.
///
/// # Errors
///
/// Returns an error if the pattern references attributes or codes outside
/// the schema.
pub fn filter(table: &Table, pattern: &Pattern) -> Result<Table, TableError> {
    pattern.validate(table.schema())?;
    let keep: Vec<usize> = pattern.select(table).iter().map(|&r| r as usize).collect();
    table.select_rows(&keep)
}

/// Stacks two tables with identical schemas.
///
/// # Errors
///
/// Returns an error if the schemas differ (names, domains or order).
pub fn vstack(a: &Table, b: &Table) -> Result<Table, TableError> {
    if a.schema() != b.schema() {
        return Err(TableError::ArityMismatch {
            got: b.schema().arity(),
            expected: a.schema().arity(),
        });
    }
    let columns = (0..a.schema().arity())
        .map(|attr| {
            let mut codes = a.column(attr).codes().to_vec();
            codes.extend_from_slice(b.column(attr).codes());
            Column::from_codes(codes)
        })
        .collect();
    Table::from_columns(a.schema().clone(), columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Term;
    use crate::schema::Attribute;
    use crate::table::TableBuilder;

    fn demo_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("G", ["a", "b"]),
            Attribute::new("J", ["x", "y"]),
            Attribute::new("S", ["s", "t", "u"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..12u32 {
            b.push_codes(&[i % 2, (i / 2) % 2, i % 3]).unwrap();
        }
        b.build()
    }

    #[test]
    fn project_reorders_and_subsets() {
        let t = demo_table();
        let p = project(&t, &[2, 0]).unwrap();
        assert_eq!(p.schema().names(), vec!["S", "G"]);
        assert_eq!(p.rows(), 12);
        for r in 0..12 {
            assert_eq!(p.code(r, 0), t.code(r, 2));
            assert_eq!(p.code(r, 1), t.code(r, 0));
        }
    }

    #[test]
    fn project_rejects_duplicates_and_empty() {
        let t = demo_table();
        assert!(project(&t, &[0, 0]).is_err());
        assert!(project(&t, &[]).is_err());
        assert!(project(&t, &[7]).is_err());
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let t = demo_table();
        let f = filter(&t, &Pattern::from_codes(&[0], &[1])).unwrap();
        assert_eq!(f.rows(), 6);
        assert!(f.column(0).codes().iter().all(|&c| c == 1));
        // Wildcards pass everything.
        let all = filter(&t, &Pattern::new(vec![(1, Term::Wildcard)])).unwrap();
        assert_eq!(all.rows(), 12);
    }

    #[test]
    fn filter_validates_pattern() {
        let t = demo_table();
        assert!(filter(&t, &Pattern::from_codes(&[0], &[9])).is_err());
    }

    #[test]
    fn vstack_concatenates() {
        let t = demo_table();
        let top = filter(&t, &Pattern::from_codes(&[0], &[0])).unwrap();
        let bottom = filter(&t, &Pattern::from_codes(&[0], &[1])).unwrap();
        let stacked = vstack(&top, &bottom).unwrap();
        assert_eq!(stacked.rows(), 12);
        assert_eq!(stacked.histogram(2).unwrap(), t.histogram(2).unwrap());
    }

    #[test]
    fn vstack_rejects_schema_mismatch() {
        let t = demo_table();
        let p = project(&t, &[0, 1]).unwrap();
        assert!(vstack(&t, &p).is_err());
    }

    #[test]
    fn operations_compose() {
        // project ∘ filter keeps consistency.
        let t = demo_table();
        let f = filter(&t, &Pattern::from_codes(&[2], &[0])).unwrap();
        let p = project(&f, &[0, 2]).unwrap();
        assert_eq!(p.rows(), f.rows());
        assert!(p.column(1).codes().iter().all(|&c| c == 0));
    }
}
