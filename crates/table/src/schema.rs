//! Table schemas: named categorical attributes with fixed domains.

use crate::dictionary::Dictionary;
use crate::error::TableError;

/// Index of an attribute within a [`Schema`].
pub type AttrId = usize;

/// A single categorical attribute: a name plus the dictionary of its domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    name: String,
    dictionary: Dictionary,
}

impl Attribute {
    /// Creates an attribute with the given name and domain values; codes are
    /// assigned in iteration order.
    pub fn new<S, I, V>(name: S, domain: I) -> Self
    where
        S: Into<String>,
        I: IntoIterator<Item = V>,
        V: Into<String>,
    {
        Self {
            name: name.into(),
            dictionary: Dictionary::from_values(domain),
        }
    }

    /// Creates an attribute whose domain is the anonymous values
    /// `"<name>_0" .. "<name>_{n-1}"` — convenient for synthetic data.
    pub fn with_anonymous_domain(name: impl Into<String>, n: usize) -> Self {
        let name = name.into();
        let dictionary = Dictionary::from_values((0..n).map(|i| format!("{name}_{i}")));
        Self { name, dictionary }
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The value dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// Domain size (number of distinct values).
    pub fn domain_size(&self) -> usize {
        self.dictionary.len()
    }
}

/// An ordered collection of attributes.
///
/// Attributes are shared behind an [`std::sync::Arc`], so cloning a schema
/// — which every table copy, builder and publication does — is a reference
/// count bump, never a re-allocation of the dictionaries. This matters on
/// the hot publication path: a schema deep-clone per SPS call costs dozens
/// of small allocations that fragment the allocator right next to the large
/// column buffers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: std::sync::Arc<Vec<Attribute>>,
}

impl Schema {
    /// Creates a schema from the given attributes.
    ///
    /// # Panics
    ///
    /// Panics if two attributes share a name (ambiguous lookups) or if the
    /// attribute list is empty.
    pub fn new(attributes: Vec<Attribute>) -> Self {
        assert!(
            !attributes.is_empty(),
            "schema must have at least one attribute"
        );
        for (i, a) in attributes.iter().enumerate() {
            for b in &attributes[i + 1..] {
                assert!(
                    a.name() != b.name(),
                    "duplicate attribute name `{}` in schema",
                    a.name()
                );
            }
        }
        Self {
            attributes: std::sync::Arc::new(attributes),
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// The attribute at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; use [`Schema::get`] for a fallible
    /// lookup.
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.attributes[id]
    }

    /// Fallible attribute lookup by index.
    pub fn get(&self, id: AttrId) -> Result<&Attribute, TableError> {
        self.attributes
            .get(id)
            .ok_or(TableError::AttributeIndexOutOfRange {
                index: id,
                arity: self.arity(),
            })
    }

    /// Looks up an attribute index by name.
    pub fn attr_id(&self, name: &str) -> Result<AttrId, TableError> {
        self.attributes
            .iter()
            .position(|a| a.name() == name)
            .ok_or_else(|| TableError::UnknownAttribute(name.to_string()))
    }

    /// Iterates over `(id, attribute)`.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attributes.iter().enumerate()
    }

    /// All attribute names in schema order.
    pub fn names(&self) -> Vec<&str> {
        self.attributes.iter().map(Attribute::name).collect()
    }

    /// Validates that `code` is within the domain of attribute `id`.
    pub fn check_code(&self, id: AttrId, code: u32) -> Result<(), TableError> {
        let attr = self.get(id)?;
        if (code as usize) < attr.domain_size() {
            Ok(())
        } else {
            Err(TableError::CodeOutOfRange {
                attribute: attr.name().to_string(),
                code,
                domain_size: attr.domain_size(),
            })
        }
    }

    /// Returns a copy of this schema with attribute `id` replaced.
    ///
    /// Used by the generalization pass, which rewrites an attribute's domain
    /// to merged values.
    pub fn with_attribute_replaced(&self, id: AttrId, attribute: Attribute) -> Self {
        let mut attributes = (*self.attributes).clone();
        attributes[id] = attribute;
        Self::new(attributes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> Schema {
        Schema::new(vec![
            Attribute::new("Gender", ["male", "female"]),
            Attribute::new("Job", ["eng", "doc", "law"]),
            Attribute::new("Disease", ["flu", "hiv", "bc"]),
        ])
    }

    #[test]
    fn arity_and_lookup() {
        let s = demo_schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr_id("Job").unwrap(), 1);
        assert_eq!(s.attribute(1).domain_size(), 3);
        assert!(matches!(
            s.attr_id("Age"),
            Err(TableError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn get_rejects_out_of_range() {
        let s = demo_schema();
        assert!(s.get(2).is_ok());
        assert!(matches!(
            s.get(3),
            Err(TableError::AttributeIndexOutOfRange { index: 3, arity: 3 })
        ));
    }

    #[test]
    fn check_code_respects_domain() {
        let s = demo_schema();
        assert!(s.check_code(0, 1).is_ok());
        assert!(matches!(
            s.check_code(0, 2),
            Err(TableError::CodeOutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate attribute name")]
    fn duplicate_names_rejected() {
        Schema::new(vec![Attribute::new("A", ["x"]), Attribute::new("A", ["y"])]);
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_schema_rejected() {
        Schema::new(vec![]);
    }

    #[test]
    fn anonymous_domain_names() {
        let a = Attribute::with_anonymous_domain("Age", 3);
        assert_eq!(a.domain_size(), 3);
        assert_eq!(a.dictionary().value(0), Some("Age_0"));
        assert_eq!(a.dictionary().value(2), Some("Age_2"));
    }

    #[test]
    fn with_attribute_replaced_swaps_domain() {
        let s = demo_schema();
        let merged = Attribute::new("Gender", ["any"]);
        let s2 = s.with_attribute_replaced(0, merged);
        assert_eq!(s2.attribute(0).domain_size(), 1);
        assert_eq!(s2.attribute(1).name(), "Job");
        // Original untouched.
        assert_eq!(s.attribute(0).domain_size(), 2);
    }

    #[test]
    fn names_in_order() {
        assert_eq!(demo_schema().names(), vec!["Gender", "Job", "Disease"]);
    }
}
