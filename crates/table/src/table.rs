//! The columnar table: dictionary-encoded categorical microdata.

use crate::error::TableError;
use crate::schema::{AttrId, Schema};

/// A dictionary-encoded categorical column.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Column {
    codes: Vec<u32>,
}

impl Column {
    /// Creates a column from raw codes. Domain validation happens at the
    /// table level, where the schema is known.
    pub fn from_codes(codes: Vec<u32>) -> Self {
        Self { codes }
    }

    /// The code at `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn code(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// All codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Mutable access to the codes (used by in-place perturbation).
    pub fn codes_mut(&mut self) -> &mut [u32] {
        &mut self.codes
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Histogram of code frequencies over a domain of `domain_size` values.
    ///
    /// # Panics
    ///
    /// Panics if any code is outside the domain.
    pub fn histogram(&self, domain_size: usize) -> Vec<u64> {
        let mut counts = vec![0u64; domain_size];
        for &c in &self.codes {
            counts[c as usize] += 1;
        }
        counts
    }
}

/// An immutable-schema, column-oriented table of categorical microdata.
///
/// Rows are addressed by index; values are `u32` dictionary codes. This is
/// the substrate every algorithm in the workspace operates on: the raw table
/// `D`, the perturbed table `D*` and the SPS output `D*₂` are all `Table`s
/// over the same [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Creates a table from parallel columns.
    ///
    /// # Errors
    ///
    /// Returns an error if the column count does not match the schema arity,
    /// if columns have unequal lengths, or if any code is outside its
    /// attribute's domain.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Self, TableError> {
        if columns.len() != schema.arity() {
            return Err(TableError::ArityMismatch {
                got: columns.len(),
                expected: schema.arity(),
            });
        }
        let rows = columns.first().map_or(0, Column::len);
        for c in &columns {
            if c.len() != rows {
                return Err(TableError::ArityMismatch {
                    got: c.len(),
                    expected: rows,
                });
            }
        }
        for (id, column) in columns.iter().enumerate() {
            for &code in column.codes() {
                schema.check_code(id, code)?;
            }
        }
        Ok(Self {
            schema,
            columns,
            rows,
        })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows, `|D|`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The column of attribute `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn column(&self, id: AttrId) -> &Column {
        &self.columns[id]
    }

    /// The code of attribute `id` at `row`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn code(&self, row: usize, id: AttrId) -> u32 {
        self.columns[id].code(row)
    }

    /// The full row of codes at `row`.
    ///
    /// # Errors
    ///
    /// Returns an error if `row` is out of range.
    pub fn row(&self, row: usize) -> Result<Vec<u32>, TableError> {
        if row >= self.rows {
            return Err(TableError::RowOutOfRange {
                row,
                rows: self.rows,
            });
        }
        Ok(self.columns.iter().map(|c| c.code(row)).collect())
    }

    /// Decodes a row back to its string values.
    ///
    /// # Errors
    ///
    /// Returns an error if `row` is out of range.
    pub fn decode_row(&self, row: usize) -> Result<Vec<&str>, TableError> {
        let codes = self.row(row)?;
        Ok(codes
            .iter()
            .enumerate()
            .map(|(id, &code)| {
                self.schema
                    .attribute(id)
                    .dictionary()
                    .value(code)
                    .expect("codes were validated at construction")
            })
            .collect())
    }

    /// Returns a copy of this table with one column replaced.
    ///
    /// # Errors
    ///
    /// Returns an error if the new column has the wrong length or codes
    /// outside the attribute's domain.
    pub fn with_column_replaced(&self, id: AttrId, column: Column) -> Result<Self, TableError> {
        if column.len() != self.rows {
            return Err(TableError::ArityMismatch {
                got: column.len(),
                expected: self.rows,
            });
        }
        for &code in column.codes() {
            self.schema.check_code(id, code)?;
        }
        let mut columns = self.columns.clone();
        columns[id] = column;
        Ok(Self {
            schema: self.schema.clone(),
            columns,
            rows: self.rows,
        })
    }

    /// Builds a new table containing only the rows in `keep`, in order.
    ///
    /// # Errors
    ///
    /// Returns an error if any index is out of range.
    pub fn select_rows(&self, keep: &[usize]) -> Result<Self, TableError> {
        for &r in keep {
            if r >= self.rows {
                return Err(TableError::RowOutOfRange {
                    row: r,
                    rows: self.rows,
                });
            }
        }
        let columns = self
            .columns
            .iter()
            .map(|c| Column::from_codes(keep.iter().map(|&r| c.code(r)).collect()))
            .collect();
        Ok(Self {
            schema: self.schema.clone(),
            columns,
            rows: keep.len(),
        })
    }

    /// Histogram of attribute `id` over the whole table.
    pub fn histogram(&self, id: AttrId) -> Vec<u64> {
        self.columns[id].histogram(self.schema.attribute(id).domain_size())
    }

    /// Histogram of attribute `id` restricted to the given rows.
    pub fn histogram_over(&self, id: AttrId, rows: &[u32]) -> Vec<u64> {
        let mut counts = vec![0u64; self.schema.attribute(id).domain_size()];
        let col = self.columns[id].codes();
        for &r in rows {
            counts[col[r as usize] as usize] += 1;
        }
        counts
    }
}

/// Row-at-a-time builder for [`Table`].
#[derive(Debug, Clone)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Vec<u32>>,
}

impl TableBuilder {
    /// Creates a builder for the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = vec![Vec::new(); schema.arity()];
        Self { schema, columns }
    }

    /// Creates a builder with per-column capacity reserved.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let columns = vec![Vec::with_capacity(rows); schema.arity()];
        Self { schema, columns }
    }

    /// Appends a row of codes.
    ///
    /// # Errors
    ///
    /// Returns an error on arity mismatch or out-of-domain codes.
    pub fn push_codes(&mut self, codes: &[u32]) -> Result<(), TableError> {
        if codes.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                got: codes.len(),
                expected: self.schema.arity(),
            });
        }
        for (id, &code) in codes.iter().enumerate() {
            self.schema.check_code(id, code)?;
        }
        for (col, &code) in self.columns.iter_mut().zip(codes) {
            col.push(code);
        }
        Ok(())
    }

    /// Appends `copies` identical rows of codes, validating the row once.
    ///
    /// This is the bulk-emission path for duplication-heavy producers (the
    /// SPS scaling step emits each perturbed record `⌊τ′⌋ + Bernoulli` times
    /// and every record of a personal-group cell shares one code template);
    /// it skips the per-row arity/domain re-validation and extends each
    /// column buffer in one call. `copies == 0` is a validated no-op.
    ///
    /// # Errors
    ///
    /// Returns an error on arity mismatch or out-of-domain codes.
    pub fn push_codes_batch(&mut self, codes: &[u32], copies: usize) -> Result<(), TableError> {
        if codes.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                got: codes.len(),
                expected: self.schema.arity(),
            });
        }
        for (id, &code) in codes.iter().enumerate() {
            self.schema.check_code(id, code)?;
        }
        for (col, &code) in self.columns.iter_mut().zip(codes) {
            col.extend(std::iter::repeat_n(code, copies));
        }
        Ok(())
    }

    /// Appends a row of string values, resolving them through the schema's
    /// dictionaries.
    ///
    /// # Errors
    ///
    /// Returns an error on arity mismatch or unknown values.
    pub fn push_values(&mut self, values: &[&str]) -> Result<(), TableError> {
        if values.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                got: values.len(),
                expected: self.schema.arity(),
            });
        }
        let mut codes = Vec::with_capacity(values.len());
        for (id, value) in values.iter().enumerate() {
            let attr = self.schema.attribute(id);
            let code = attr
                .dictionary()
                .code(value)
                .ok_or_else(|| TableError::UnknownValue {
                    attribute: attr.name().to_string(),
                    value: value.to_string(),
                })?;
            codes.push(code);
        }
        self.push_codes(&codes)
    }

    /// Number of rows appended so far.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Finishes the build.
    pub fn build(self) -> Table {
        let rows = self.rows();
        Table {
            schema: self.schema,
            columns: self.columns.into_iter().map(Column::from_codes).collect(),
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn demo_schema() -> Schema {
        Schema::new(vec![
            Attribute::new("Gender", ["male", "female"]),
            Attribute::new("Job", ["eng", "doc"]),
            Attribute::new("Disease", ["flu", "hiv", "bc"]),
        ])
    }

    fn demo_table() -> Table {
        let mut b = TableBuilder::new(demo_schema());
        b.push_values(&["male", "eng", "flu"]).unwrap();
        b.push_values(&["male", "eng", "hiv"]).unwrap();
        b.push_values(&["female", "doc", "bc"]).unwrap();
        b.push_values(&["female", "eng", "flu"]).unwrap();
        b.build()
    }

    #[test]
    fn builder_round_trip() {
        let t = demo_table();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.decode_row(0).unwrap(), vec!["male", "eng", "flu"]);
        assert_eq!(t.decode_row(2).unwrap(), vec!["female", "doc", "bc"]);
        assert_eq!(t.code(1, 2), 1); // hiv
    }

    #[test]
    fn builder_rejects_unknown_value() {
        let mut b = TableBuilder::new(demo_schema());
        let err = b.push_values(&["male", "pilot", "flu"]).unwrap_err();
        assert!(matches!(err, TableError::UnknownValue { .. }));
        assert_eq!(b.rows(), 0, "failed push must not partially append");
    }

    #[test]
    fn builder_rejects_arity_mismatch() {
        let mut b = TableBuilder::new(demo_schema());
        assert!(matches!(
            b.push_values(&["male", "eng"]),
            Err(TableError::ArityMismatch {
                got: 2,
                expected: 3
            })
        ));
    }

    #[test]
    fn push_codes_batch_duplicates_rows() {
        let mut b = TableBuilder::new(demo_schema());
        b.push_codes_batch(&[0, 0, 1], 3).unwrap();
        b.push_codes_batch(&[1, 1, 2], 0).unwrap(); // validated no-op
        b.push_codes_batch(&[1, 0, 0], 1).unwrap();
        let t = b.build();
        assert_eq!(t.rows(), 4);
        for r in 0..3 {
            assert_eq!(t.row(r).unwrap(), vec![0, 0, 1]);
        }
        assert_eq!(t.row(3).unwrap(), vec![1, 0, 0]);
    }

    #[test]
    fn push_codes_batch_validates_before_append() {
        let mut b = TableBuilder::new(demo_schema());
        assert!(matches!(
            b.push_codes_batch(&[0, 0], 2),
            Err(TableError::ArityMismatch {
                got: 2,
                expected: 3
            })
        ));
        assert!(matches!(
            b.push_codes_batch(&[0, 9, 0], 2),
            Err(TableError::CodeOutOfRange { .. })
        ));
        assert_eq!(b.rows(), 0, "failed batch must not partially append");
    }

    #[test]
    fn from_columns_validates_codes() {
        let schema = demo_schema();
        let bad = Table::from_columns(
            schema.clone(),
            vec![
                Column::from_codes(vec![0]),
                Column::from_codes(vec![0]),
                Column::from_codes(vec![9]), // out of domain
            ],
        );
        assert!(matches!(bad, Err(TableError::CodeOutOfRange { .. })));
        let ragged = Table::from_columns(
            schema,
            vec![
                Column::from_codes(vec![0, 1]),
                Column::from_codes(vec![0]),
                Column::from_codes(vec![0, 1]),
            ],
        );
        assert!(ragged.is_err());
    }

    #[test]
    fn histogram_counts_all_rows() {
        let t = demo_table();
        assert_eq!(t.histogram(0), vec![2, 2]);
        assert_eq!(t.histogram(2), vec![2, 1, 1]);
    }

    #[test]
    fn histogram_over_subset() {
        let t = demo_table();
        assert_eq!(t.histogram_over(2, &[0, 3]), vec![2, 0, 0]);
        assert_eq!(t.histogram_over(2, &[]), vec![0, 0, 0]);
    }

    #[test]
    fn select_rows_projects_and_validates() {
        let t = demo_table();
        let sub = t.select_rows(&[2, 0]).unwrap();
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.decode_row(0).unwrap(), vec!["female", "doc", "bc"]);
        assert_eq!(sub.decode_row(1).unwrap(), vec!["male", "eng", "flu"]);
        assert!(t.select_rows(&[4]).is_err());
    }

    #[test]
    fn with_column_replaced_validates() {
        let t = demo_table();
        let t2 = t
            .with_column_replaced(2, Column::from_codes(vec![0, 0, 0, 0]))
            .unwrap();
        assert_eq!(t2.histogram(2), vec![4, 0, 0]);
        assert!(t
            .with_column_replaced(2, Column::from_codes(vec![0, 0]))
            .is_err());
        assert!(t
            .with_column_replaced(2, Column::from_codes(vec![0, 0, 0, 7]))
            .is_err());
    }

    #[test]
    fn row_out_of_range_is_error() {
        let t = demo_table();
        assert!(matches!(
            t.row(10),
            Err(TableError::RowOutOfRange { row: 10, rows: 4 })
        ));
    }

    #[test]
    fn empty_table() {
        let t = TableBuilder::new(demo_schema()).build();
        assert!(t.is_empty());
        assert_eq!(t.histogram(0), vec![0, 0]);
    }
}
