//! The columnar table: dictionary-encoded categorical microdata.

use crate::error::TableError;
use crate::schema::{AttrId, Schema};

/// A dictionary-encoded categorical column.
///
/// Retired code buffers are recycled through a bounded thread-local pool
/// (see `crate::recycle`): publish-style workloads that build and drop
/// tables in a loop reuse warm buffers instead of re-faulting pages from
/// the kernel on every build. Purely an allocation cache — values never
/// survive recycling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Column {
    codes: Vec<u32>,
}

impl Drop for Column {
    fn drop(&mut self) {
        crate::recycle::recycle(std::mem::take(&mut self.codes));
    }
}

impl Column {
    /// Creates a column from raw codes. Domain validation happens at the
    /// table level, where the schema is known.
    pub fn from_codes(codes: Vec<u32>) -> Self {
        Self { codes }
    }

    /// The code at `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn code(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// All codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Mutable access to the codes (used by in-place perturbation).
    pub fn codes_mut(&mut self) -> &mut [u32] {
        &mut self.codes
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Histogram of code frequencies over a domain of `domain_size` values.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::CodeOutOfRange`] (with an empty attribute name
    /// — a standalone column does not know which attribute it backs) if any
    /// code is outside the domain.
    pub fn histogram(&self, domain_size: usize) -> Result<Vec<u64>, TableError> {
        let mut counts = vec![0u64; domain_size];
        for &c in &self.codes {
            match counts.get_mut(c as usize) {
                Some(slot) => *slot += 1,
                None => {
                    return Err(TableError::CodeOutOfRange {
                        attribute: String::new(),
                        code: c,
                        domain_size,
                    })
                }
            }
        }
        Ok(counts)
    }
}

/// An immutable-schema, column-oriented table of categorical microdata.
///
/// Rows are addressed by index; values are `u32` dictionary codes. This is
/// the substrate every algorithm in the workspace operates on: the raw table
/// `D`, the perturbed table `D*` and the SPS output `D*₂` are all `Table`s
/// over the same [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Creates a table from parallel columns.
    ///
    /// # Errors
    ///
    /// Returns an error if the column count does not match the schema arity,
    /// if columns have unequal lengths, or if any code is outside its
    /// attribute's domain.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Self, TableError> {
        if columns.len() != schema.arity() {
            return Err(TableError::ArityMismatch {
                got: columns.len(),
                expected: schema.arity(),
            });
        }
        let rows = columns.first().map_or(0, Column::len);
        for c in &columns {
            if c.len() != rows {
                return Err(TableError::ArityMismatch {
                    got: c.len(),
                    expected: rows,
                });
            }
        }
        for (id, column) in columns.iter().enumerate() {
            for &code in column.codes() {
                schema.check_code(id, code)?;
            }
        }
        Ok(Self {
            schema,
            columns,
            rows,
        })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows, `|D|`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The column of attribute `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn column(&self, id: AttrId) -> &Column {
        &self.columns[id]
    }

    /// The code of attribute `id` at `row`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn code(&self, row: usize, id: AttrId) -> u32 {
        self.columns[id].code(row)
    }

    /// The full row of codes at `row`.
    ///
    /// # Errors
    ///
    /// Returns an error if `row` is out of range.
    pub fn row(&self, row: usize) -> Result<Vec<u32>, TableError> {
        if row >= self.rows {
            return Err(TableError::RowOutOfRange {
                row,
                rows: self.rows,
            });
        }
        Ok(self.columns.iter().map(|c| c.code(row)).collect())
    }

    /// Decodes a row back to its string values.
    ///
    /// # Errors
    ///
    /// Returns an error if `row` is out of range.
    pub fn decode_row(&self, row: usize) -> Result<Vec<&str>, TableError> {
        let codes = self.row(row)?;
        Ok(codes
            .iter()
            .enumerate()
            .map(|(id, &code)| {
                self.schema
                    .attribute(id)
                    .dictionary()
                    .value(code)
                    .expect("codes were validated at construction")
            })
            .collect())
    }

    /// Returns a copy of this table with one column replaced.
    ///
    /// # Errors
    ///
    /// Returns an error if the new column has the wrong length or codes
    /// outside the attribute's domain.
    pub fn with_column_replaced(&self, id: AttrId, column: Column) -> Result<Self, TableError> {
        if column.len() != self.rows {
            return Err(TableError::ArityMismatch {
                got: column.len(),
                expected: self.rows,
            });
        }
        for &code in column.codes() {
            self.schema.check_code(id, code)?;
        }
        let mut columns = self.columns.clone();
        columns[id] = column;
        Ok(Self {
            schema: self.schema.clone(),
            columns,
            rows: self.rows,
        })
    }

    /// Builds a new table containing only the rows in `keep`, in order.
    ///
    /// # Errors
    ///
    /// Returns an error if any index is out of range.
    pub fn select_rows(&self, keep: &[usize]) -> Result<Self, TableError> {
        for &r in keep {
            if r >= self.rows {
                return Err(TableError::RowOutOfRange {
                    row: r,
                    rows: self.rows,
                });
            }
        }
        let columns = self
            .columns
            .iter()
            .map(|c| Column::from_codes(keep.iter().map(|&r| c.code(r)).collect()))
            .collect();
        Ok(Self {
            schema: self.schema.clone(),
            columns,
            rows: keep.len(),
        })
    }

    /// Histogram of attribute `id` over the whole table.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::CodeOutOfRange`] if a code exceeds the
    /// attribute's domain — impossible for tables built through the checked
    /// constructors, but surfaced as a typed error rather than a panic so
    /// callers holding externally produced columns can recover.
    pub fn histogram(&self, id: AttrId) -> Result<Vec<u64>, TableError> {
        let attr = self.schema.attribute(id);
        self.columns[id]
            .histogram(attr.domain_size())
            .map_err(|e| match e {
                TableError::CodeOutOfRange {
                    code, domain_size, ..
                } => TableError::CodeOutOfRange {
                    attribute: attr.name().to_string(),
                    code,
                    domain_size,
                },
                other => other,
            })
    }

    /// Histogram of attribute `id` restricted to the given rows.
    pub fn histogram_over(&self, id: AttrId, rows: &[u32]) -> Vec<u64> {
        let mut counts = vec![0u64; self.schema.attribute(id).domain_size()];
        let col = self.columns[id].codes();
        for &r in rows {
            counts[col[r as usize] as usize] += 1;
        }
        counts
    }
}

/// Row-at-a-time builder for [`Table`].
#[derive(Debug, Clone)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Vec<u32>>,
}

impl TableBuilder {
    /// Creates a builder for the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = vec![Vec::new(); schema.arity()];
        Self { schema, columns }
    }

    /// Creates a builder with per-column capacity reserved. Buffers come
    /// from the thread-local recycling pool when available, so repeated
    /// build/drop cycles (one publication per loop iteration) write into
    /// warm memory instead of freshly faulted pages.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let columns = (0..schema.arity())
            .map(|_| crate::recycle::take(rows))
            .collect();
        Self { schema, columns }
    }

    /// Appends a row of codes.
    ///
    /// # Errors
    ///
    /// Returns an error on arity mismatch or out-of-domain codes.
    pub fn push_codes(&mut self, codes: &[u32]) -> Result<(), TableError> {
        if codes.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                got: codes.len(),
                expected: self.schema.arity(),
            });
        }
        for (id, &code) in codes.iter().enumerate() {
            self.schema.check_code(id, code)?;
        }
        for (col, &code) in self.columns.iter_mut().zip(codes) {
            col.push(code);
        }
        Ok(())
    }

    /// Appends `copies` identical rows of codes, validating the row once.
    ///
    /// This is the bulk-emission path for duplication-heavy producers (the
    /// SPS scaling step emits each perturbed record `⌊τ′⌋ + Bernoulli` times
    /// and every record of a personal-group cell shares one code template);
    /// it skips the per-row arity/domain re-validation and extends each
    /// column buffer in one call. `copies == 0` is a validated no-op.
    ///
    /// # Errors
    ///
    /// Returns an error on arity mismatch or out-of-domain codes.
    pub fn push_codes_batch(&mut self, codes: &[u32], copies: usize) -> Result<(), TableError> {
        if codes.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                got: codes.len(),
                expected: self.schema.arity(),
            });
        }
        for (id, &code) in codes.iter().enumerate() {
            self.schema.check_code(id, code)?;
        }
        for (col, &code) in self.columns.iter_mut().zip(codes) {
            col.extend(std::iter::repeat_n(code, copies));
        }
        Ok(())
    }

    /// Appends a row of string values, resolving them through the schema's
    /// dictionaries.
    ///
    /// # Errors
    ///
    /// Returns an error on arity mismatch or unknown values.
    pub fn push_values(&mut self, values: &[&str]) -> Result<(), TableError> {
        if values.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                got: values.len(),
                expected: self.schema.arity(),
            });
        }
        let mut codes = Vec::with_capacity(values.len());
        for (id, value) in values.iter().enumerate() {
            let attr = self.schema.attribute(id);
            let code = attr
                .dictionary()
                .code(value)
                .ok_or_else(|| TableError::UnknownValue {
                    attribute: attr.name().to_string(),
                    value: value.to_string(),
                })?;
            codes.push(code);
        }
        self.push_codes(&codes)
    }

    /// Number of rows appended so far.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Begins a columnar run of `rows` rows: the returned [`RunWriter`]
    /// fills each column independently with `extend_from_slice`-style
    /// appends ([`RunWriter::fill`] for constant runs,
    /// [`RunWriter::copy_from_slice`] for precomputed codes), validating
    /// each run once instead of once per row. [`RunWriter::finish`] checks
    /// that every column received exactly `rows` codes; dropping the writer
    /// without finishing rolls the whole run back, so a failed run never
    /// leaves the builder ragged.
    ///
    /// This is the bulk-emission path the columnar SPS executor uses: a
    /// personal group's output is one run — each `NA` column a single
    /// constant fill, the `SA` column a handful of per-value fills or one
    /// slice copy.
    pub fn begin_run(&mut self, rows: usize) -> RunWriter<'_> {
        let base = self.rows();
        RunWriter {
            builder: self,
            rows,
            base,
            finished: false,
        }
    }

    /// Finishes the build.
    pub fn build(self) -> Table {
        let rows = self.rows();
        Table {
            schema: self.schema,
            columns: self.columns.into_iter().map(Column::from_codes).collect(),
            rows,
        }
    }
}

/// An in-progress columnar run on a [`TableBuilder`] — see
/// [`TableBuilder::begin_run`].
///
/// Columns may be filled in any order and in several appends each; the run
/// is committed by [`RunWriter::finish`] and rolled back (all columns
/// truncated to their pre-run length) if the writer is dropped first or any
/// step fails.
#[derive(Debug)]
pub struct RunWriter<'a> {
    builder: &'a mut TableBuilder,
    rows: usize,
    base: usize,
    finished: bool,
}

impl RunWriter<'_> {
    fn remaining(&self, attr: AttrId) -> usize {
        self.base + self.rows - self.builder.columns[attr].len()
    }

    /// Appends `copies` repetitions of `code` to column `attr`, validating
    /// the code once.
    ///
    /// # Errors
    ///
    /// Returns an error if `attr` is out of range, `code` outside the
    /// attribute's domain, or the append would overfill the run.
    pub fn fill(&mut self, attr: AttrId, code: u32, copies: usize) -> Result<(), TableError> {
        self.builder.schema.check_code(attr, code)?;
        if copies > self.remaining(attr) {
            return Err(TableError::ColumnRunMismatch {
                attribute: self.builder.schema.attribute(attr).name().to_string(),
                got: self.builder.columns[attr].len() - self.base + copies,
                expected: self.rows,
            });
        }
        self.builder.columns[attr].extend(std::iter::repeat_n(code, copies));
        Ok(())
    }

    /// Appends a precomputed slice of codes to column `attr`. The slice is
    /// validated in one pass over its maximum (domain checks are
    /// `code < domain_size`, so checking the maximum checks them all).
    ///
    /// # Errors
    ///
    /// Returns an error if `attr` is out of range, any code is outside the
    /// attribute's domain, or the append would overfill the run.
    pub fn copy_from_slice(&mut self, attr: AttrId, codes: &[u32]) -> Result<(), TableError> {
        self.builder.schema.get(attr)?;
        if let Some(&max) = codes.iter().max() {
            self.builder.schema.check_code(attr, max)?;
        }
        if codes.len() > self.remaining(attr) {
            return Err(TableError::ColumnRunMismatch {
                attribute: self.builder.schema.attribute(attr).name().to_string(),
                got: self.builder.columns[attr].len() - self.base + codes.len(),
                expected: self.rows,
            });
        }
        self.builder.columns[attr].extend_from_slice(codes);
        Ok(())
    }

    /// Commits the run after checking every column received exactly the
    /// declared number of rows.
    ///
    /// # Errors
    ///
    /// Returns an error (and rolls the run back) if any column was left
    /// underfilled.
    pub fn finish(mut self) -> Result<(), TableError> {
        let expected = self.base + self.rows;
        for (id, column) in self.builder.columns.iter().enumerate() {
            if column.len() != expected {
                let attribute = self.builder.schema.attribute(id).name().to_string();
                let got = column.len() - self.base;
                self.rollback();
                self.finished = true;
                return Err(TableError::ColumnRunMismatch {
                    attribute,
                    got,
                    expected: self.rows,
                });
            }
        }
        self.finished = true;
        Ok(())
    }

    fn rollback(&mut self) {
        for column in &mut self.builder.columns {
            column.truncate(self.base);
        }
    }
}

impl Drop for RunWriter<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.rollback();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn demo_schema() -> Schema {
        Schema::new(vec![
            Attribute::new("Gender", ["male", "female"]),
            Attribute::new("Job", ["eng", "doc"]),
            Attribute::new("Disease", ["flu", "hiv", "bc"]),
        ])
    }

    fn demo_table() -> Table {
        let mut b = TableBuilder::new(demo_schema());
        b.push_values(&["male", "eng", "flu"]).unwrap();
        b.push_values(&["male", "eng", "hiv"]).unwrap();
        b.push_values(&["female", "doc", "bc"]).unwrap();
        b.push_values(&["female", "eng", "flu"]).unwrap();
        b.build()
    }

    #[test]
    fn builder_round_trip() {
        let t = demo_table();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.decode_row(0).unwrap(), vec!["male", "eng", "flu"]);
        assert_eq!(t.decode_row(2).unwrap(), vec!["female", "doc", "bc"]);
        assert_eq!(t.code(1, 2), 1); // hiv
    }

    #[test]
    fn builder_rejects_unknown_value() {
        let mut b = TableBuilder::new(demo_schema());
        let err = b.push_values(&["male", "pilot", "flu"]).unwrap_err();
        assert!(matches!(err, TableError::UnknownValue { .. }));
        assert_eq!(b.rows(), 0, "failed push must not partially append");
    }

    #[test]
    fn builder_rejects_arity_mismatch() {
        let mut b = TableBuilder::new(demo_schema());
        assert!(matches!(
            b.push_values(&["male", "eng"]),
            Err(TableError::ArityMismatch {
                got: 2,
                expected: 3
            })
        ));
    }

    #[test]
    fn push_codes_batch_duplicates_rows() {
        let mut b = TableBuilder::new(demo_schema());
        b.push_codes_batch(&[0, 0, 1], 3).unwrap();
        b.push_codes_batch(&[1, 1, 2], 0).unwrap(); // validated no-op
        b.push_codes_batch(&[1, 0, 0], 1).unwrap();
        let t = b.build();
        assert_eq!(t.rows(), 4);
        for r in 0..3 {
            assert_eq!(t.row(r).unwrap(), vec![0, 0, 1]);
        }
        assert_eq!(t.row(3).unwrap(), vec![1, 0, 0]);
    }

    #[test]
    fn push_codes_batch_validates_before_append() {
        let mut b = TableBuilder::new(demo_schema());
        assert!(matches!(
            b.push_codes_batch(&[0, 0], 2),
            Err(TableError::ArityMismatch {
                got: 2,
                expected: 3
            })
        ));
        assert!(matches!(
            b.push_codes_batch(&[0, 9, 0], 2),
            Err(TableError::CodeOutOfRange { .. })
        ));
        assert_eq!(b.rows(), 0, "failed batch must not partially append");
    }

    #[test]
    fn run_writer_fills_columns_independently() {
        let mut b = TableBuilder::new(demo_schema());
        b.push_codes(&[1, 1, 2]).unwrap();
        let mut run = b.begin_run(5);
        run.fill(0, 0, 5).unwrap();
        run.fill(1, 1, 2).unwrap();
        run.fill(1, 0, 3).unwrap();
        run.copy_from_slice(2, &[0, 1, 2, 0, 1]).unwrap();
        run.finish().unwrap();
        let t = b.build();
        assert_eq!(t.rows(), 6);
        assert_eq!(t.row(0).unwrap(), vec![1, 1, 2]);
        assert_eq!(t.row(1).unwrap(), vec![0, 1, 0]);
        assert_eq!(t.row(3).unwrap(), vec![0, 0, 2]);
        assert_eq!(t.histogram(1).unwrap(), vec![3, 3]);
    }

    #[test]
    fn run_writer_rejects_bad_codes_and_overflow() {
        let mut b = TableBuilder::new(demo_schema());
        {
            let mut run = b.begin_run(2);
            assert!(matches!(
                run.fill(0, 9, 2),
                Err(TableError::CodeOutOfRange { .. })
            ));
            assert!(matches!(
                run.copy_from_slice(2, &[0, 9]),
                Err(TableError::CodeOutOfRange { .. })
            ));
            assert!(matches!(
                run.fill(1, 0, 3),
                Err(TableError::ColumnRunMismatch {
                    got: 3,
                    expected: 2,
                    ..
                })
            ));
            run.fill(2, 0, 2).unwrap();
            assert!(matches!(
                run.copy_from_slice(2, &[0]),
                Err(TableError::ColumnRunMismatch { .. })
            ));
        }
        // The unfinished run rolled back entirely.
        assert_eq!(b.rows(), 0);
        assert!(b.build().is_empty());
    }

    #[test]
    fn run_writer_finish_detects_underfill_and_rolls_back() {
        let mut b = TableBuilder::new(demo_schema());
        b.push_codes(&[0, 0, 0]).unwrap();
        let mut run = b.begin_run(3);
        run.fill(0, 1, 3).unwrap();
        run.fill(1, 1, 3).unwrap();
        run.fill(2, 2, 1).unwrap(); // SA column short by 2
        let err = run.finish().unwrap_err();
        assert!(matches!(
            err,
            TableError::ColumnRunMismatch {
                got: 1,
                expected: 3,
                ..
            }
        ));
        assert_eq!(b.rows(), 1, "failed run must not partially append");
        let t = b.build();
        assert_eq!(t.row(0).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn empty_run_is_a_no_op() {
        let mut b = TableBuilder::new(demo_schema());
        let run = b.begin_run(0);
        run.finish().unwrap();
        assert_eq!(b.rows(), 0);
    }

    #[test]
    fn run_matches_row_pushes() {
        let mut by_rows = TableBuilder::new(demo_schema());
        by_rows.push_codes(&[0, 1, 2]).unwrap();
        by_rows.push_codes(&[0, 1, 0]).unwrap();
        by_rows.push_codes(&[0, 1, 1]).unwrap();
        let mut by_run = TableBuilder::new(demo_schema());
        let mut run = by_run.begin_run(3);
        run.fill(0, 0, 3).unwrap();
        run.fill(1, 1, 3).unwrap();
        run.copy_from_slice(2, &[2, 0, 1]).unwrap();
        run.finish().unwrap();
        assert_eq!(by_rows.build(), by_run.build());
    }

    #[test]
    fn from_columns_validates_codes() {
        let schema = demo_schema();
        let bad = Table::from_columns(
            schema.clone(),
            vec![
                Column::from_codes(vec![0]),
                Column::from_codes(vec![0]),
                Column::from_codes(vec![9]), // out of domain
            ],
        );
        assert!(matches!(bad, Err(TableError::CodeOutOfRange { .. })));
        let ragged = Table::from_columns(
            schema,
            vec![
                Column::from_codes(vec![0, 1]),
                Column::from_codes(vec![0]),
                Column::from_codes(vec![0, 1]),
            ],
        );
        assert!(ragged.is_err());
    }

    #[test]
    fn histogram_counts_all_rows() {
        let t = demo_table();
        assert_eq!(t.histogram(0).unwrap(), vec![2, 2]);
        assert_eq!(t.histogram(2).unwrap(), vec![2, 1, 1]);
    }

    #[test]
    fn histogram_over_subset() {
        let t = demo_table();
        assert_eq!(t.histogram_over(2, &[0, 3]), vec![2, 0, 0]);
        assert_eq!(t.histogram_over(2, &[]), vec![0, 0, 0]);
    }

    #[test]
    fn select_rows_projects_and_validates() {
        let t = demo_table();
        let sub = t.select_rows(&[2, 0]).unwrap();
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.decode_row(0).unwrap(), vec!["female", "doc", "bc"]);
        assert_eq!(sub.decode_row(1).unwrap(), vec!["male", "eng", "flu"]);
        assert!(t.select_rows(&[4]).is_err());
    }

    #[test]
    fn with_column_replaced_validates() {
        let t = demo_table();
        let t2 = t
            .with_column_replaced(2, Column::from_codes(vec![0, 0, 0, 0]))
            .unwrap();
        assert_eq!(t2.histogram(2).unwrap(), vec![4, 0, 0]);
        assert!(t
            .with_column_replaced(2, Column::from_codes(vec![0, 0]))
            .is_err());
        assert!(t
            .with_column_replaced(2, Column::from_codes(vec![0, 0, 0, 7]))
            .is_err());
    }

    #[test]
    fn row_out_of_range_is_error() {
        let t = demo_table();
        assert!(matches!(
            t.row(10),
            Err(TableError::RowOutOfRange { row: 10, rows: 4 })
        ));
    }

    #[test]
    fn empty_table() {
        let t = TableBuilder::new(demo_schema()).build();
        assert!(t.is_empty());
        assert_eq!(t.histogram(0).unwrap(), vec![0, 0]);
    }
}
