//! CSV import/export for categorical tables.
//!
//! Lets users run the library on real microdata (e.g. the actual UCI ADULT
//! extract) instead of the synthetic substitutes. The dialect is
//! deliberately small — comma-separated, one header line, values trimmed,
//! no quoting — which covers the UCI-style files the paper uses.

use std::io::{BufRead, Write};

use crate::dictionary::Dictionary;
use crate::schema::{Attribute, Schema};
use crate::table::{Table, TableBuilder};

/// Errors raised by CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input had no header line.
    MissingHeader,
    /// A data line had the wrong number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        got: usize,
        /// Fields expected (header arity).
        expected: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::MissingHeader => write!(f, "CSV input has no header line"),
            CsvError::FieldCount {
                line,
                got,
                expected,
            } => write!(f, "line {line}: {got} fields, expected {expected}"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Reads a table from CSV: the first line names the attributes, every
/// other line is one record. Attribute domains are discovered from the
/// data (dictionary codes in first-appearance order).
///
/// # Errors
///
/// Returns [`CsvError`] on I/O failure, a missing header, or ragged rows.
pub fn read_csv<R: BufRead>(reader: R) -> Result<Table, CsvError> {
    let mut lines = reader.lines();
    let header = match lines.next() {
        Some(line) => line?,
        None => return Err(CsvError::MissingHeader),
    };
    let names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    if names.is_empty() || names.iter().all(String::is_empty) {
        return Err(CsvError::MissingHeader);
    }
    let arity = names.len();
    // First pass happens streaming: collect rows as strings, build
    // dictionaries as values appear.
    let mut dictionaries: Vec<Dictionary> = vec![Dictionary::new(); arity];
    let mut rows: Vec<Vec<u32>> = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != arity {
            return Err(CsvError::FieldCount {
                line: i + 2,
                got: fields.len(),
                expected: arity,
            });
        }
        rows.push(
            fields
                .iter()
                .zip(dictionaries.iter_mut())
                .map(|(value, dict)| dict.intern(*value))
                .collect(),
        );
    }
    let attributes = names
        .into_iter()
        .zip(&dictionaries)
        .map(|(name, dict)| Attribute::new(name, dict.values().iter().map(String::as_str)))
        .collect();
    let schema = Schema::new(attributes);
    let mut builder = TableBuilder::with_capacity(schema, rows.len());
    for row in &rows {
        builder
            .push_codes(row)
            .expect("codes came from the dictionaries just built");
    }
    Ok(builder.build())
}

/// Writes a table as CSV (header + one line per record).
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_csv<W: Write>(table: &Table, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "{}", table.schema().names().join(","))?;
    for row in 0..table.rows() {
        let values = table
            .decode_row(row)
            .expect("row index is in range")
            .join(",");
        writeln!(writer, "{values}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "\
Gender,Job,Disease
male, eng ,flu
female,doc,hiv
male,eng,flu
";

    #[test]
    fn read_parses_header_and_rows() {
        let t = read_csv(Cursor::new(SAMPLE)).unwrap();
        assert_eq!(t.schema().names(), vec!["Gender", "Job", "Disease"]);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.decode_row(1).unwrap(), vec!["female", "doc", "hiv"]);
        // Whitespace around fields is trimmed.
        assert_eq!(t.decode_row(0).unwrap()[1], "eng");
    }

    #[test]
    fn domains_discovered_in_first_appearance_order() {
        let t = read_csv(Cursor::new(SAMPLE)).unwrap();
        let dict = t.schema().attribute(0).dictionary();
        assert_eq!(dict.value(0), Some("male"));
        assert_eq!(dict.value(1), Some("female"));
    }

    #[test]
    fn round_trip_preserves_table() {
        let t = read_csv(Cursor::new(SAMPLE)).unwrap();
        let mut out = Vec::new();
        write_csv(&t, &mut out).unwrap();
        let t2 = read_csv(Cursor::new(out)).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn blank_lines_skipped() {
        let t = read_csv(Cursor::new("A,B\n1,2\n\n3,4\n")).unwrap();
        assert_eq!(t.rows(), 2);
    }

    #[test]
    fn ragged_row_rejected_with_line_number() {
        let err = read_csv(Cursor::new("A,B\n1,2\n1,2,3\n")).unwrap_err();
        match err {
            CsvError::FieldCount {
                line,
                got,
                expected,
            } => {
                assert_eq!(line, 3);
                assert_eq!(got, 3);
                assert_eq!(expected, 2);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn empty_input_is_missing_header() {
        assert!(matches!(
            read_csv(Cursor::new("")),
            Err(CsvError::MissingHeader)
        ));
    }

    #[test]
    fn header_only_gives_empty_table() {
        let t = read_csv(Cursor::new("A,B\n")).unwrap();
        assert_eq!(t.rows(), 0);
        assert_eq!(t.schema().arity(), 2);
    }

    #[test]
    fn error_display_is_informative() {
        let e = CsvError::FieldCount {
            line: 7,
            got: 2,
            expected: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains('7') && msg.contains('2') && msg.contains('5'));
    }
}
