//! Error type for the columnar table substrate.

use std::fmt;

/// Errors raised by table construction and access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// An attribute index was out of range for the schema.
    AttributeIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of attributes in the schema.
        arity: usize,
    },
    /// A categorical value was not found in an attribute's dictionary.
    UnknownValue {
        /// The attribute whose dictionary was consulted.
        attribute: String,
        /// The value that was looked up.
        value: String,
    },
    /// A value code was out of range for an attribute's domain.
    CodeOutOfRange {
        /// The attribute whose domain was violated.
        attribute: String,
        /// The offending code.
        code: u32,
        /// The domain size.
        domain_size: usize,
    },
    /// A row had the wrong number of values for the schema.
    ArityMismatch {
        /// Values supplied.
        got: usize,
        /// Values expected (schema arity).
        expected: usize,
    },
    /// A row index was out of range.
    RowOutOfRange {
        /// The offending row index.
        row: usize,
        /// Number of rows in the table.
        rows: usize,
    },
    /// A query listed its sensitive attribute among the public (`NA`)
    /// conditions, which would double-count the SA condition.
    SaAmongConditions {
        /// The sensitive attribute that also appeared as an NA condition.
        sa_attr: usize,
    },
    /// A columnar run filled a column with the wrong number of codes
    /// (overfilled mid-run, or left underfilled at finish).
    ColumnRunMismatch {
        /// The column whose fill count went wrong.
        attribute: String,
        /// Codes the column would hold for this run.
        got: usize,
        /// Codes the run declared per column.
        expected: usize,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            TableError::AttributeIndexOutOfRange { index, arity } => {
                write!(f, "attribute index {index} out of range for arity {arity}")
            }
            TableError::UnknownValue { attribute, value } => {
                write!(
                    f,
                    "value `{value}` not in the dictionary of attribute `{attribute}`"
                )
            }
            TableError::CodeOutOfRange {
                attribute,
                code,
                domain_size,
            } => write!(
                f,
                "code {code} out of range for attribute `{attribute}` (domain size {domain_size})"
            ),
            TableError::ArityMismatch { got, expected } => {
                write!(
                    f,
                    "row has {got} values but the schema has {expected} attributes"
                )
            }
            TableError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range for table with {rows} rows")
            }
            TableError::SaAmongConditions { sa_attr } => {
                write!(
                    f,
                    "SA attribute {sa_attr} must not appear among the NA conditions"
                )
            }
            TableError::ColumnRunMismatch {
                attribute,
                got,
                expected,
            } => write!(
                f,
                "columnar run filled column `{attribute}` with {got} codes, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TableError::UnknownAttribute("Age".into());
        assert!(e.to_string().contains("Age"));
        let e = TableError::UnknownValue {
            attribute: "Job".into(),
            value: "astronaut".into(),
        };
        assert!(e.to_string().contains("astronaut") && e.to_string().contains("Job"));
        let e = TableError::ArityMismatch {
            got: 3,
            expected: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&TableError::RowOutOfRange { row: 9, rows: 3 });
    }
}
