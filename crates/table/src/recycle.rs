//! Thread-local recycling of column code buffers.
//!
//! Publish-style workloads build and drop whole tables in a tight loop
//! (every SPS run materializes a fresh `D*₂`). With a plain allocator the
//! column buffers — a few hundred KB per table — coalesce at the top of the
//! heap on every drop, get trimmed back to the kernel, and are re-faulted
//! page by page on the next build: on a 12K-row × 5-column table that is
//! ~70 minor faults (≈70 µs) per publication, dwarfing the actual emission
//! work. This module keeps a small per-thread stack of retired code
//! buffers; [`crate::table::TableBuilder`] draws from it and
//! [`crate::table::Column`] returns to it on drop, so steady-state
//! publication touches only warm memory.
//!
//! The pool is bounded (at most [`MAX_POOLED`] buffers, each capped at
//! [`MAX_CAPACITY`] codes) and purely an allocation cache: recycled buffers
//! are cleared before reuse, so observable behavior — including bit-level
//! output — is identical with or without it.

use std::cell::RefCell;

/// Buffers retained per thread.
const MAX_POOLED: usize = 8;
/// Buffers below this capacity (in codes) are not worth pooling.
const MIN_CAPACITY: usize = 1024;
/// Buffers above this capacity (in codes) are released to the allocator so
/// one giant table cannot pin memory forever.
const MAX_CAPACITY: usize = 1 << 22;
/// Upper bound on the pool's total retained capacity (in codes, 32 MB of
/// `u32`s): the steady-state footprint is bounded by this, not by the
/// largest table a long-lived thread ever built.
const MAX_TOTAL_CAPACITY: usize = 1 << 23;

thread_local! {
    static POOL: RefCell<Vec<Vec<u32>>> = const { RefCell::new(Vec::new()) };
}

/// A pooled buffer is only handed out for a request it does not exceed by
/// more than this factor — a tiny table must not pin a multi-MB recycled
/// buffer for its whole lifetime.
const MAX_OVERSIZE_FACTOR: usize = 8;

/// Takes a cleared buffer with at least `capacity` spare codes, reusing the
/// smallest fitting pooled one when it is not grossly oversized for the
/// request; otherwise allocates fresh (the pooled buffers stay for callers
/// they actually fit).
pub(crate) fn take(capacity: usize) -> Vec<u32> {
    // `try_with`: during thread-local destruction the pool may already be
    // gone (a consumer can hold tables in its own `thread_local!`); fall
    // back to a plain allocation instead of panicking.
    POOL.try_with(|pool| {
        let mut pool = pool.borrow_mut();
        let mut best: Option<(usize, usize)> = None;
        for (i, v) in pool.iter().enumerate() {
            let c = v.capacity();
            if c >= capacity && best.is_none_or(|(_, b)| c < b) {
                best = Some((i, c));
            }
        }
        if let Some((i, c)) = best {
            if c <= capacity.max(MIN_CAPACITY) * MAX_OVERSIZE_FACTOR {
                let mut v = pool.swap_remove(i);
                v.clear();
                return v;
            }
        }
        Vec::with_capacity(capacity)
    })
    .unwrap_or_else(|_| Vec::with_capacity(capacity))
}

/// Returns a retired buffer to the pool (or drops it if the pool is full or
/// the buffer is outside the pooling bounds).
pub(crate) fn recycle(v: Vec<u32>) {
    if v.capacity() < MIN_CAPACITY || v.capacity() > MAX_CAPACITY {
        return;
    }
    // `try_with`, not `with`: this runs from `Column::drop`, and a panic
    // while the thread-local is being destroyed (TLS destructor order is
    // unspecified) would abort the process. If the pool is gone, the
    // buffer just frees normally.
    let _ = POOL.try_with(|pool| {
        let mut pool = pool.borrow_mut();
        let retained: usize = pool.iter().map(Vec::capacity).sum();
        if pool.len() < MAX_POOLED && retained + v.capacity() <= MAX_TOTAL_CAPACITY {
            pool.push(v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains buffers earlier tests on this thread left behind — the pool
    /// is thread-local, and tests may share harness threads.
    fn drain_pool() {
        POOL.with(|p| p.borrow_mut().clear());
    }

    #[test]
    fn round_trip_reuses_capacity() {
        drain_pool();
        let mut v = take(MIN_CAPACITY);
        v.extend(0..MIN_CAPACITY as u32);
        let cap = v.capacity();
        recycle(v);
        let v2 = take(MIN_CAPACITY / 2);
        assert!(v2.is_empty(), "recycled buffers come back cleared");
        assert_eq!(v2.capacity(), cap, "the pooled buffer was reused");
    }

    #[test]
    fn tiny_and_giant_buffers_are_not_pooled() {
        drain_pool();
        recycle(Vec::with_capacity(8));
        let v = take(0);
        assert!(v.capacity() < MIN_CAPACITY, "tiny buffer was not pooled");
    }

    #[test]
    fn pool_is_bounded() {
        drain_pool();
        for _ in 0..4 * MAX_POOLED {
            recycle(Vec::with_capacity(MIN_CAPACITY));
        }
        POOL.with(|p| assert!(p.borrow().len() <= MAX_POOLED));
    }

    #[test]
    fn small_requests_do_not_pin_giant_buffers() {
        drain_pool();
        recycle(Vec::with_capacity(MAX_CAPACITY));
        let v = take(MIN_CAPACITY);
        assert!(
            v.capacity() < MAX_CAPACITY,
            "a {}-code request must not be served a {}-code buffer",
            MIN_CAPACITY,
            MAX_CAPACITY
        );
        // The giant buffer stays pooled for a caller it actually fits.
        let big = take(MAX_CAPACITY / 2);
        assert_eq!(big.capacity(), MAX_CAPACITY);
        drain_pool();
    }

    #[test]
    fn total_retained_capacity_is_bounded() {
        drain_pool();
        for _ in 0..MAX_POOLED {
            recycle(Vec::with_capacity(MAX_CAPACITY));
        }
        POOL.with(|p| {
            let retained: usize = p.borrow().iter().map(Vec::capacity).sum();
            assert!(retained <= MAX_TOTAL_CAPACITY);
        });
        drain_pool();
    }
}
